//! # websift
//!
//! An end-to-end system for domain-specific information extraction at web
//! scale, reproducing Rheinländer et al., *Potential and Pitfalls of
//! Domain-Specific Information Extraction at Web Scale* (SIGMOD 2016).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`corpus`] — biomedical lexicons and generative corpus models (the
//!   Medline / PMC / web-document substitutes);
//! - [`web`] — the synthetic web substrate: graph, simulated fetching,
//!   PageRank, MIME sniffing;
//! - [`crawler`] — the Nutch-style focused crawler with its filter chain,
//!   boilerplate detector, Naive-Bayes focus classifier and seed generator;
//! - [`text`] — NLP substrate: tokenization, sentence splitting, language
//!   identification, regex engine, HMM part-of-speech tagger;
//! - [`ner`] — dictionary- and CRF-based named-entity taggers for genes,
//!   drugs, and diseases;
//! - [`flow`] — the Stratosphere-style parallel data-flow engine with its
//!   operator packages, optimizer, and simulated cluster;
//! - [`pipeline`] — the consolidated analysis flows and the cross-corpus
//!   comparison / experiment harness;
//! - [`resilience`] — deterministic fault injection, retry/backoff with
//!   circuit breakers, and the checkpoint codec behind crawl and flow
//!   kill-and-resume recovery;
//! - [`serve`] — the serving layer: the sharded, provenance-carrying
//!   extraction store fed by flow store-sinks, its snapshot codec, and
//!   the admission-controlled query engine;
//! - [`live`] — incremental crawl-to-query execution: stepped crawl
//!   rounds feeding delta flow passes into the serving store, with
//!   per-round watermarks and deterministic kill-and-resume replay;
//! - [`observe`] — the observability substrate: metrics registry,
//!   logical-clock tracing with JSONL export, cost profiler with
//!   folded-stack (flamegraph) output;
//! - [`stats`] — statistics used throughout (Mann-Whitney U,
//!   Jensen-Shannon divergence, evaluation metrics, samplers);
//! - [`analyze`] — the static-analysis diagnostics core (structured
//!   diagnostics, deterministic JSON export) and the workspace
//!   determinism lints behind `repo_lint`; the plan analyzer itself is
//!   [`flow::analyze`].
//!
//! ## Quick start
//!
//! ```
//! use websift::corpus::{CorpusKind, Generator};
//! use websift::pipeline::flows;
//!
//! // Generate a tiny Medline-like corpus and run the linguistic analysis
//! // flow over it.
//! let docs = Generator::new(CorpusKind::Medline, 42).documents(10);
//! let report = flows::linguistic_report(&docs);
//! assert_eq!(report.documents, 10);
//! ```

pub use websift_analyze as analyze;
pub use websift_corpus as corpus;
pub use websift_crawler as crawler;
pub use websift_flow as flow;
pub use websift_live as live;
pub use websift_ner as ner;
pub use websift_observe as observe;
pub use websift_pipeline as pipeline;
pub use websift_resilience as resilience;
pub use websift_serve as serve;
pub use websift_stats as stats;
pub use websift_text as text;
pub use websift_web as web;
