//! Regex-lite string generation.
//!
//! Supports the pattern subset the workspace's properties use:
//!
//! - character classes `[a-z0-9/._-]` with ranges, literals, and the
//!   escapes `\n`, `\t`, `\\`, `\.`;
//! - `\PC` — "any printable character" (proptest's non-control class),
//!   drawn from a palette that includes multi-byte UTF-8 so byte-index
//!   invariants get exercised;
//! - counts `{n}` and `{m,n}` (absent count means exactly one);
//! - plain literal characters between atoms.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// Explicit set of candidate characters.
    Class(Vec<char>),
    /// Any printable char (`\PC`).
    Printable,
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Printable palette for `\PC`: ASCII plus a few multi-byte characters.
const EXTRA_PRINTABLE: &[char] = &['é', 'ß', 'λ', 'Ω', '中', '界', '–', '€'];

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // range a-z (a trailing '-' is a literal)
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for v in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                if i < chars.len() && chars[i] == 'P' {
                    // \PC — "not in Unicode category C (control/other)"
                    i += 2; // consume 'P' and the category letter
                    Atom::Printable
                } else {
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Literal(c)
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // optional {n} / {m,n}
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut lo = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                lo.push(chars[i]);
                i += 1;
            }
            let lo: usize = lo.parse().unwrap_or(1);
            let hi = if i < chars.len() && chars[i] == ',' {
                i += 1;
                let mut hi = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    hi.push(chars[i]);
                    i += 1;
                }
                hi.parse().unwrap_or(lo)
            } else {
                lo
            };
            i += 1; // consume '}'
            (lo, hi)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Class(set) => {
            assert!(!set.is_empty(), "empty character class");
            set[rng.random_range(0..set.len())]
        }
        Atom::Printable => {
            // mostly ASCII printable, occasionally multi-byte
            if rng.random_bool(0.1) {
                EXTRA_PRINTABLE[rng.random_range(0..EXTRA_PRINTABLE.len())]
            } else {
                char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap_or('x')
            }
        }
        Atom::Literal(c) => *c,
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            rng.random_range(piece.min..=piece.max)
        };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z0-9/._-]{0,30}", &mut r);
            assert!(s.len() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/._-".contains(c)));
        }
    }

    #[test]
    fn printable_class_lengths() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC{0,200}", &mut r);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn escaped_newline_in_class() {
        let mut r = rng();
        let mut saw_newline = false;
        for _ in 0..500 {
            let s = generate("[a-zA-Z .!?()0-9\\n]{0,300}", &mut r);
            saw_newline |= s.contains('\n');
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .!?()\n".contains(c)));
        }
        assert!(saw_newline, "\\n escape should be generatable");
    }

    #[test]
    fn exact_count_single_char() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-e]", &mut r);
            assert_eq!(s.chars().count(), 1);
        }
    }
}
