//! Collection strategies: `vec` and `hash_map`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// `prop::collection::vec(elem, m..n)` — a vector of `m..n` elements.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = sample_size(&self.size, rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// `prop::collection::hash_map(k, v, m..n)` — up to `n-1` entries
/// (duplicate generated keys may land below `m`, as in a sparse domain).
pub fn hash_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> HashMapStrategy<K, V>
where
    K::Value: Eq + Hash,
{
    HashMapStrategy { key, value, size }
}

impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
where
    K::Value: Eq + Hash,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut StdRng) -> HashMap<K::Value, V::Value> {
        let n = sample_size(&self.size, rng);
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

fn sample_size(range: &Range<usize>, rng: &mut StdRng) -> usize {
    if range.start >= range.end {
        range.start
    } else {
        rng.random_range(range.clone())
    }
}
