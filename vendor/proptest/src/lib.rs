//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! - the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`arg in strategy`), with an optional
//!   `#![proptest_config(...)]` header; the `PROPTEST_CASES` environment
//!   variable overrides the configured case count, as upstream does;
//! - string strategies written as regex-lite patterns (`"[a-z]{1,6}"`,
//!   `"\\PC{0,200}"`) — character classes, escapes, and `{m,n}` counts;
//! - numeric `Range`/`RangeInclusive` strategies;
//! - `prop::collection::{vec, hash_map}`;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Generation is fully deterministic: each test's stream is seeded from a
//! hash of the test-function name, so failures reproduce on every run.
//! There is no shrinking — the macro prints the offending case's inputs
//! via the assertion message instead.

pub mod collection;
pub mod strategy;
pub mod string;

#[doc(hidden)]
pub use rand as __rand;

/// Runtime configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Mirror of upstream proptest's environment override: `PROPTEST_CASES`
/// beats the per-block `#![proptest_config(...)]` count when set, so CI
/// can pin (or a developer can crank) the explored case count without
/// editing test sources.
pub fn cases_from_env() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __config: $crate::ProptestConfig = $cfg;
                if let Some(__cases) = $crate::cases_from_env() {
                    __config.cases = __cases;
                }
                let __seed = $crate::fnv1a(stringify!($name).as_bytes());
                for __case in 0..__config.cases as u64 {
                    let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __seed ^ __case.wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // bind clones for the failure report before the body
                    // may move the values
                    let __report = format!(
                        concat!("proptest case ", "{}", $(" ", stringify!($arg), "={:?}",)+),
                        __case $(, &$arg)+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = __result {
                        eprintln!("{}", __report);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn strings_match_class_and_counts(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn ranges_in_bounds(n in 10u64..20, x in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn collections_sized(
            v in prop::collection::vec("[a-z]{1,3}", 1..6),
            m in prop::collection::hash_map("[a-e]", 1u64..50, 0..6),
        ) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(m.len() < 6);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let pat = "[a-z0-9/._-]{0,30}";
        for _ in 0..50 {
            assert_eq!(pat.generate(&mut a), pat.generate(&mut b));
        }
    }
}
