//! The `Strategy` trait and numeric range strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// String patterns ("regex-lite") act as strategies, as in proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! numeric_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
numeric_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `Just`-style constant strategy (handy for composing in-tree tests).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
