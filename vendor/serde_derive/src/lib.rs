//! Inert `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The workspace marks many types `#[derive(Serialize)]` to document
//! wire-visibility, but nothing actually serializes through serde (the
//! resilience layer uses its own deterministic codec). The vendored
//! `serde` crate provides blanket impls of both traits, so these derives
//! only need to (a) exist, and (b) register `serde` as a helper attribute
//! so `#[serde(skip)]`-style annotations stay legal.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
