//! Offline stand-in for `serde`.
//!
//! `Serialize`/`Deserialize` are marker traits with blanket impls; the
//! derive macros (re-exported from the vendored `serde_derive`) expand to
//! nothing but accept `#[serde(...)]` helper attributes. This keeps the
//! workspace's `#[derive(Serialize)]` annotations compiling unchanged
//! while the build environment has no registry access. Actual snapshot
//! serialization lives in `websift-resilience::codec`, which is explicit
//! and byte-deterministic — a property derive-based serde would not
//! guarantee across versions anyway.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
