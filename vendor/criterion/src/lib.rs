//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock timer. Good enough to keep benches
//! compiling, runnable, and comparable run-to-run on one machine; not a
//! statistics engine.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Accepted by `bench_function`: a plain name or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

/// Timer handle passed to bench closures.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, collecting one sample per outer round.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(started.elapsed().as_secs_f64() / self.iters_per_sample as f64);
    }
}

fn run_bench(group: &str, name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    // warmup round, also calibrates iters so fast routines get batched
    f(&mut b);
    let per_iter = b.samples.first().copied().unwrap_or(0.0);
    b.iters_per_sample = if per_iter > 0.0 {
        ((0.005 / per_iter).ceil() as u32).clamp(1, 10_000)
    } else {
        1000
    };
    b.samples.clear();
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    b.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = b.samples[b.samples.len() / 2];
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!("bench {label:<50} {:>12} /iter ({} samples)", fmt_time(median), b.samples.len());
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &id.into_id(), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized>(
        &mut self,
        id: I,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) -> &mut Self {
        run_bench(&self.name, &id.into_id(), self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench("", &id.into_id(), 10, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2) * 3));
    }
}
