//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: `Mutex` and `RwLock`
//! whose lock methods return guards directly. Poisoned std locks are
//! recovered rather than propagated — the data is still there, and the
//! resilience layer (which deliberately injects worker panics) relies on
//! lock acquisition never amplifying a panic into a deadlock or abort.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // a parking_lot-style lock just hands the data back
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
