//! Offline stand-in for the `rand` crate (0.9 API surface used by websift).
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, deterministic implementation of the `rand` APIs it actually
//! calls: `SeedableRng::seed_from_u64`, `rngs::StdRng`, and the `Rng`
//! methods `random`, `random_range`, and `random_bool`. The generator is
//! xoshiro256** seeded via splitmix64 — high quality, fast, and fully
//! reproducible across platforms. The streams differ from upstream
//! `StdRng` (ChaCha12), which is fine here: every consumer in the
//! workspace is seeded and compared only against itself.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "from the whole type" by
/// [`Rng::random`] (the rand 0.9 `StandardUniform` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform in-range sampler — the anchor that lets type
/// inference flow from the use site back into range literals (mirrors
/// rand's `SampleUniform`; the blanket `SampleRange` impls below are
/// what make `slice[rng.random_range(0..5)]` infer `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128
                };
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <f64 as Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample over the whole type (`StandardUniform` in rand 0.9).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // all-zero state would be a fixed point; splitmix64 never
            // yields four zeros from any seed, but keep the guard cheap
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let n = rng.random_range(5..10);
            assert!((5..10).contains(&n));
            let m = rng.random_range(2..=4u8);
            assert!((2..=4).contains(&m));
            let x = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn bool_bias_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
