//! Whole-system live-session determinism: an incremental session must be
//! indistinguishable — on every deterministic surface — from a batch
//! recompute over the cumulative crawl, and a session killed and resumed
//! from a watermark must replay byte-identically to one that never
//! stopped. These are the acceptance invariants of the live subsystem:
//!
//! - store `content_digest` after round k: incremental ≡ per-round batch
//!   recompute, across DoP;
//! - retained reduce output: incremental fold ≡ batch Reduce over the
//!   cumulative corpus, across DoP;
//! - watermark frames, metrics, trace JSONL: kill + resume ≡
//!   uninterrupted, including under injected crawl faults.

use std::sync::Arc;

use websift::corpus::{CorpusKind, Document, LexiconScale};
use websift::crawler::{train_focus_classifier, CrawlConfig, ResilienceOptions};
use websift::flow::{IeResources, LogicalPlan, Operator, Package, Record};
use websift::live::{IncrementalFlow, LiveError, LiveOptions, LiveSession, Watermark};
use websift::ner::EntityType;
use websift::observe::Observer;
use websift::pipeline::{documents_to_records, live_extraction_flow, run_over_documents_into};
use websift::serve::{parse_query, ExtractionStore, QueryEngine};
use websift::web::{PageId, SimulatedWeb, Url, WebGraph, WebGraphConfig};

fn tiny_web() -> SimulatedWeb {
    SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()))
}

fn seeds_for(web: &SimulatedWeb) -> Vec<Url> {
    (0..web.graph().num_pages() as u32)
        .map(PageId)
        .filter(|&p| web.graph().page(p).relevant)
        .take(10)
        .map(|p| web.graph().url_of(p))
        .collect()
}

fn crawl_config() -> CrawlConfig {
    CrawlConfig { max_pages: 60, threads: 4, ..CrawlConfig::default() }
}

fn resources() -> IeResources {
    IeResources::quick_for_tests(LexiconScale::tiny())
}

const STORE: &str = "live";

fn start_session<'w>(
    web: &'w SimulatedWeb,
    plan: &LogicalPlan,
    options: &ResilienceOptions,
    dop: usize,
) -> LiveSession<'w> {
    LiveSession::start(
        web,
        train_focus_classifier(60, 2.0, 4),
        crawl_config(),
        seeds_for(web),
        options,
        plan,
        ExtractionStore::new(STORE, 4),
        LiveOptions { dop, ..LiveOptions::default() },
        Arc::new(Observer::new()),
    )
    .expect("live session starts")
}

/// The same document construction the live session applies to its
/// per-round deltas, over the cumulative crawl — the batch oracle input.
fn docs_from_pages(pages: &[websift::crawler::CrawledPage]) -> Vec<Document> {
    pages
        .iter()
        .enumerate()
        .map(|(i, p)| Document {
            id: i as u64,
            kind: CorpusKind::RelevantWeb,
            url: Some(p.url.to_string()),
            title: String::new(),
            body: p.net_text.clone(),
            html: None,
            gold: Default::default(),
        })
        .collect()
}

/// Batch full-recompute oracle for the store: a fresh store fed the
/// cumulative corpus through the *original* plan (Reduce and all), round
/// slices replayed with their round stamps.
fn batch_store(plan: &LogicalPlan, docs: &[Document], rounds: &[(u32, usize)], dop: usize) -> ExtractionStore {
    let mut store = ExtractionStore::new(STORE, 4);
    let mut cursor = 0usize;
    for &(round, count) in rounds {
        store.set_round(round);
        run_over_documents_into(plan, &docs[cursor..cursor + count], dop, &mut store)
            .expect("batch oracle flow");
        cursor += count;
    }
    assert_eq!(cursor, docs.len(), "round slices must cover the corpus");
    store
}

#[test]
fn incremental_session_matches_batch_recompute_on_every_round() {
    let web = tiny_web();
    let plan = live_extraction_flow(&resources(), EntityType::Gene, STORE);
    let options = ResilienceOptions::default();
    let mut session = start_session(&web, &plan, &options, 2);

    let mut rounds: Vec<(u32, usize)> = Vec::new();
    let mut total_docs = 0usize;
    while let Some(round) = session.advance().expect("round advances") {
        rounds.push((round.round, round.new_documents));
        total_docs += round.new_documents;

        // (a) incremental store vs (b) batch full recompute over the
        // cumulative corpus, at every round boundary
        let cumulative = docs_from_pages(&session.crawl().report().relevant);
        assert_eq!(cumulative.len(), total_docs);
        let oracle = batch_store(&plan, &cumulative, &rounds, 2);
        assert_eq!(
            session.store().content_digest(),
            oracle.content_digest(),
            "store diverged from batch recompute after round {}",
            round.round
        );
        assert_eq!(round.watermark.parts().store_digest, oracle.content_digest());
    }
    assert!(rounds.len() >= 2, "crawl ended after {} rounds; need several", rounds.len());
    assert!(session.store().posting_count() > 0, "live session ingested nothing");

    // the retained reduce equals a batch Reduce over the cumulative corpus
    let cumulative = docs_from_pages(&session.crawl().report().relevant);
    let batch = websift::pipeline::run_over_documents(&plan, &cumulative, 2)
        .expect("batch oracle flow");
    assert_eq!(
        session.finished("token_frequencies").expect("retained sink"),
        batch.sinks["token_frequencies"],
        "retained fold diverged from the batch reduce"
    );
}

#[test]
fn live_surfaces_are_dop_invariant() {
    let web = tiny_web();
    let plan = live_extraction_flow(&resources(), EntityType::Gene, STORE);
    let options = ResilienceOptions::default();

    let run = |dop: usize| {
        let mut session = start_session(&web, &plan, &options, dop);
        while session.advance().expect("round advances").is_some() {}
        (
            session.store().content_digest(),
            session.state_bytes(),
            session.finished("token_frequencies").expect("retained sink"),
        )
    };
    let (digest_1, state_1, finished_1) = run(1);
    for dop in [2usize, 4] {
        let (digest_n, state_n, finished_n) = run(dop);
        assert_eq!(digest_1, digest_n, "store digest varies with DoP {dop}");
        assert_eq!(state_1, state_n, "retained state bytes vary with DoP {dop}");
        assert_eq!(finished_1, finished_n, "reduce output varies with DoP {dop}");
    }
}

/// Kill-and-resume differential, parameterized over fault seeds: run an
/// uninterrupted session, then replay the same session but serialize the
/// round-k watermark across a simulated kill, and compare every
/// subsequent deterministic surface byte-for-byte.
fn assert_resume_replays_identically(options: &ResilienceOptions, kill_after: u32) {
    let web = tiny_web();
    let plan = live_extraction_flow(&resources(), EntityType::Gene, STORE);

    // Uninterrupted reference run.
    let mut straight = start_session(&web, &plan, options, 2);
    let mut straight_marks: Vec<Watermark> = Vec::new();
    while let Some(round) = straight.advance().expect("round advances") {
        straight_marks.push(round.watermark);
    }
    assert!(
        straight_marks.len() > kill_after as usize,
        "crawl too short to kill after round {kill_after}"
    );

    // Same session, killed after `kill_after` rounds: only the sealed
    // watermark bytes survive the kill.
    let mut doomed = start_session(&web, &plan, options, 2);
    let mut frame: Vec<u8> = Vec::new();
    for _ in 0..kill_after {
        frame = doomed.advance().expect("round advances").expect("round exists").watermark
            .as_bytes()
            .to_vec();
    }
    drop(doomed);

    let watermark = Watermark::from_bytes(frame).expect("watermark decodes");
    let resumed_obs = Arc::new(Observer::new());
    let mut resumed = LiveSession::resume_from(
        &web,
        crawl_config(),
        options,
        &plan,
        LiveOptions { dop: 2, ..LiveOptions::default() },
        resumed_obs.clone(),
        &watermark,
    )
    .expect("session resumes from watermark");
    assert_eq!(resumed.round(), kill_after);

    let mut resumed_marks: Vec<Watermark> = Vec::new();
    while let Some(round) = resumed.advance().expect("round advances") {
        resumed_marks.push(round.watermark);
    }

    // every post-kill watermark is byte-identical
    assert_eq!(resumed_marks.len(), straight_marks.len() - kill_after as usize);
    for (a, b) in straight_marks[kill_after as usize..].iter().zip(&resumed_marks) {
        assert_eq!(a.as_bytes(), b.as_bytes(), "watermark diverged after resume");
    }
    // final state agrees on every surface
    assert_eq!(straight.store().content_digest(), resumed.store().content_digest());
    assert_eq!(straight.state_bytes(), resumed.state_bytes());
    assert_eq!(straight.metrics(), resumed.metrics());
    assert_eq!(
        straight.finished("token_frequencies").expect("retained sink"),
        resumed.finished("token_frequencies").expect("retained sink"),
    );
    // the resumed trace is exactly the tail of the uninterrupted trace
    // (modulo `seq`, which restarts with the fresh tracer: it counts
    // ring-buffer slots, not simulated time)
    let strip_seq = |events: Vec<websift::observe::TraceEvent>| -> Vec<String> {
        events
            .into_iter()
            .map(|mut e| {
                e.seq = 0;
                e.to_json()
            })
            .collect()
    };
    let straight_events = strip_seq(straight.observer().tracer().events());
    let resumed_events = strip_seq(resumed_obs.tracer().events());
    assert!(!resumed_events.is_empty());
    assert_eq!(
        straight_events[straight_events.len() - resumed_events.len()..],
        resumed_events[..],
        "resumed trace is not a suffix of the uninterrupted trace"
    );
}

#[test]
fn killed_session_resumes_byte_identically() {
    assert_resume_replays_identically(&ResilienceOptions::default(), 2);
}

#[test]
fn fault_injected_sessions_replay_identically_across_seeds() {
    for seed in [0x11u64, 0x77] {
        let options = ResilienceOptions::injected(seed, 0.05, 2);
        assert_resume_replays_identically(&options, 1);
    }
}

#[test]
fn live_store_answers_freshness_queries() {
    let web = tiny_web();
    let plan = live_extraction_flow(&resources(), EntityType::Gene, STORE);
    let options = ResilienceOptions::default();
    let mut session = start_session(&web, &plan, &options, 2);
    let mut last_round = 0;
    while let Some(round) = session.advance().expect("round advances") {
        assert!(round.freshness_secs > 0.0, "round has no simulated latency");
        last_round = round.round;
    }
    assert!(last_round >= 2);

    // `since` sees exactly the postings `round`-pinned queries see,
    // summed over the fresh rounds.
    let entity = session
        .store()
        .iter()
        .map(|(k, _)| k.entity.clone())
        .find(|e| !e.contains(char::is_whitespace))
        .expect("store has entities");
    let obs = Observer::new();
    let engine = QueryEngine::new(session.store(), &obs);
    let run = |text: &str| {
        engine.execute(&parse_query(text).expect("query parses"), 0.0).rows.len()
    };
    let since_2 = run(&format!("lookup {entity} since 2"));
    let total = run(&format!("lookup {entity}"));
    let round_1 = run(&format!("lookup {entity} round 1"));
    assert_eq!(since_2, total - round_1, "since must complement the round-1 slice");

    // per-round session metrics made it into the registry
    let snap = session.observer().registry().snapshot();
    let labels = websift::observe::Labels::empty();
    assert!(snap.get("live.rounds", &labels).is_some());
    assert!(snap.get("live.freshness_secs", &labels).is_some());
}

#[test]
fn custom_reduces_are_rejected_unless_opted_in() {
    fn tally() -> Operator {
        Operator::reduce(
            "tally",
            Package::Base,
            |r: &Record| format!("{:?}", r.get("corpus")),
            |key, group: Vec<Record>| {
                let mut out = Record::new();
                out.set("key", key).set("count", group.len() as i64);
                vec![out]
            },
        )
    }
    let mut plan = LogicalPlan::new();
    let src = plan.source("docs");
    let r = plan.add(src, tally()).expect("static plan");
    plan.sink(r, "tallies").expect("static plan");

    // rejected by default with a typed error
    match IncrementalFlow::compile(&plan, false).map(|_| ()) {
        Err(LiveError::NonCombinableReduce { name }) => assert_eq!(name, "tally"),
        other => panic!("expected NonCombinableReduce, got {other:?}"),
    }

    // opted in: the cumulative-recompute path still equals the batch
    // reduce over the concatenated stream
    let mut flow = IncrementalFlow::compile(&plan, true).expect("opt-in compiles");
    let mk = |corpus: &str, n: usize| -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut rec = Record::new();
                rec.set("corpus", corpus).set("id", i as i64);
                rec
            })
            .collect()
    };
    let (batch_1, batch_2) = (mk("web", 3), mk("medline", 2));
    flow.absorb("tallies", batch_1.clone()).expect("absorbs");
    flow.absorb("tallies", batch_2.clone()).expect("absorbs");
    let mut all = batch_1;
    all.extend(batch_2);
    assert_eq!(
        flow.finished("tallies").expect("finished"),
        tally().apply(all),
        "recompute path diverged from the batch reduce"
    );

    // a reduce feeding another operator (not a sink) is structurally
    // unusable in live mode
    let mut plan = LogicalPlan::new();
    let src = plan.source("docs");
    let r = plan.add(src, tally()).expect("static plan");
    let downstream = plan
        .add(r, Operator::map("after", Package::Base, |rec| rec))
        .expect("static plan");
    plan.sink(downstream, "out").expect("static plan");
    match IncrementalFlow::compile(&plan, true).map(|_| ()) {
        Err(LiveError::ReduceNotTerminal { name }) => assert_eq!(name, "tally"),
        other => panic!("expected ReduceNotTerminal, got {other:?}"),
    }
}

#[test]
fn incremental_flow_handles_combinable_reduces_exactly() {
    // the delta plan drops the reduce but keeps everything else
    let plan = live_extraction_flow(&resources(), EntityType::Gene, STORE);
    let flow = IncrementalFlow::compile(&plan, false).expect("compiles");
    assert_eq!(flow.retained_sinks(), vec!["token_frequencies"]);
    assert_eq!(flow.source(), "docs");
    assert_eq!(
        flow.delta_plan().operator_count(),
        plan.operator_count() - 1,
        "delta plan should drop exactly the terminal reduce"
    );

    // folding in two slices equals folding in one, byte-for-byte
    let docs = {
        use websift::corpus::{Generator, Lexicon};
        Generator::with_lexicon(
            CorpusKind::RelevantWeb,
            9,
            Arc::new(Lexicon::generate(LexiconScale::tiny())),
        )
        .documents(6)
    };
    let records = documents_to_records(&docs);
    let (left, right) = records.split_at(records.len() / 2);

    let mut split = IncrementalFlow::compile(&plan, false).expect("compiles");
    split.absorb("token_frequencies", left.to_vec()).expect("absorbs");
    split.absorb("token_frequencies", right.to_vec()).expect("absorbs");
    let mut whole = IncrementalFlow::compile(&plan, false).expect("compiles");
    whole.absorb("token_frequencies", records.clone()).expect("absorbs");
    assert_eq!(split.state_bytes(), whole.state_bytes());
    assert_eq!(
        split.finished("token_frequencies").expect("finished"),
        whole.finished("token_frequencies").expect("finished"),
    );

    // state round-trips through the watermark codec path
    let mut restored = IncrementalFlow::compile(&plan, false).expect("compiles");
    restored.restore_state(&whole.state_bytes()).expect("restores");
    assert_eq!(restored.state_bytes(), whole.state_bytes());
}
