//! Integration tests spanning the whole system: crawl → corpora →
//! analysis flows → cross-corpus comparison, plus determinism and the
//! declarative front end.

use std::collections::HashMap;
use std::sync::Arc;
use websift::corpus::{CorpusKind, Generator, Lexicon, LexiconScale};
use websift::crawler::{train_focus_classifier, CrawlConfig, FocusedCrawler};
use websift::flow::{compile, ExecutionConfig, Executor};
use websift::ner::{EntityType, Method};
use websift::pipeline::{
    aggregate, aggregate_entities, documents_to_records, full_analysis_plan, run_over_documents,
    Corpora, CorpusScale, ExperimentContext,
};
use websift::web::{PageId, SimulatedWeb, WebGraph, WebGraphConfig};

fn tiny_web() -> SimulatedWeb {
    SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()))
}

#[test]
fn crawl_feeds_the_analysis_pipeline() {
    // Crawl the simulated web, adopt the result as the web corpora, and run
    // the full analysis flow over the crawled relevant corpus.
    let web = tiny_web();
    let classifier = train_focus_classifier(100, 2.0, 9);
    let seeds: Vec<_> = (0..web.graph().num_pages() as u32)
        .map(PageId)
        .filter(|&p| web.graph().page(p).relevant)
        .take(15)
        .map(|p| web.graph().url_of(p))
        .collect();
    let mut crawler = FocusedCrawler::new(
        &web,
        classifier,
        CrawlConfig {
            max_pages: 120,
            threads: 4,
            ..CrawlConfig::default()
        },
    );
    let report = crawler.crawl(seeds);
    assert!(!report.relevant.is_empty(), "crawl harvested nothing");

    let ctx = ExperimentContext::tiny(1);
    let mut corpora = Corpora::generate(
        CorpusScale::tiny(),
        Arc::new(Lexicon::generate(LexiconScale::tiny())),
        3,
    );
    corpora.adopt_crawl(&report);
    let docs = corpora.get(CorpusKind::RelevantWeb);
    assert_eq!(docs.len(), report.relevant.len());

    let plan = full_analysis_plan(&ctx.resources);
    let out = run_over_documents(&plan, docs, 4).unwrap();
    let ling = aggregate(&out.sinks["linguistic"]);
    assert!(ling.documents > 0);
    assert!(ling.doc_length.is_some());
}

#[test]
fn four_corpora_compare_in_the_paper_direction() {
    let ctx = ExperimentContext::tiny(5);
    let plan = full_analysis_plan(&ctx.resources);
    let mut density = HashMap::new();
    for kind in [CorpusKind::RelevantWeb, CorpusKind::IrrelevantWeb, CorpusKind::Medline] {
        let out = run_over_documents(&plan, ctx.corpora.get(kind), 4).unwrap();
        let ents = aggregate_entities(&out.sinks["entities"]);
        let per_1000: f64 = EntityType::all()
            .iter()
            .map(|&e| ents.mentions_per_1000_sentences(e))
            .sum();
        density.insert(kind, per_1000);
    }
    assert!(
        density[&CorpusKind::RelevantWeb] > 5.0 * density[&CorpusKind::IrrelevantWeb],
        "relevant {} vs irrelevant {}",
        density[&CorpusKind::RelevantWeb],
        density[&CorpusKind::IrrelevantWeb]
    );
    assert!(
        density[&CorpusKind::Medline] > density[&CorpusKind::IrrelevantWeb],
        "medline must outrank irrelevant"
    );
}

#[test]
fn table4_shape_ml_exceeds_dictionary_on_relevant_web() {
    let ctx = ExperimentContext::tiny(8);
    let plan = full_analysis_plan(&ctx.resources);
    let out = run_over_documents(&plan, ctx.corpora.get(CorpusKind::RelevantWeb), 4).unwrap();
    let ents = aggregate_entities(&out.sinks["entities"]);
    let dict = ents.distinct_names(EntityType::Gene, Method::Dictionary);
    let ml = ents.distinct_names(EntityType::Gene, Method::Ml);
    assert!(dict > 0, "dictionary found nothing");
    assert!(ml > dict / 2, "ML gene inventory unexpectedly tiny: {ml} vs dict {dict}");
}

#[test]
fn meteor_script_runs_against_the_standard_registry() {
    let ctx = ExperimentContext::tiny(2);
    let script = "
        $docs  = read 'in';
        $net   = apply wa.extract_net_text $docs;
        $clean = apply dc.filter_empty_text $net;
        $sents = apply ie.annotate_sentences $clean;
        $neg   = apply ie.annotate_negation $sents;
        write $neg 'out';
    ";
    let plan = compile(script, &ctx.registry).unwrap();
    let docs = Generator::with_lexicon(CorpusKind::RelevantWeb, 4, ctx.lexicon.clone()).documents(4);
    let mut inputs = HashMap::new();
    inputs.insert("in".to_string(), documents_to_records(&docs));
    let out = Executor::new(ExecutionConfig::local(2)).run(&plan, inputs).unwrap();
    assert!(!out.sinks["out"].is_empty());
}

#[test]
fn pipeline_results_are_deterministic_across_runs_and_dops() {
    let ctx = ExperimentContext::tiny(6);
    let plan = full_analysis_plan(&ctx.resources);
    let docs = ctx.corpora.get(CorpusKind::Medline);
    let a = run_over_documents(&plan, docs, 1).unwrap();
    let b = run_over_documents(&plan, docs, 8).unwrap();
    assert_eq!(a.sinks["entities"], b.sinks["entities"]);
    assert_eq!(a.sinks["linguistic"], b.sinks["linguistic"]);
}

#[test]
fn simulated_web_and_crawl_are_reproducible() {
    let run = || {
        let web = tiny_web();
        let classifier = train_focus_classifier(60, 2.0, 4);
        let seeds: Vec<_> = (0..web.graph().num_pages() as u32)
            .map(PageId)
            .filter(|&p| web.graph().page(p).relevant)
            .take(10)
            .map(|p| web.graph().url_of(p))
            .collect();
        let mut crawler = FocusedCrawler::new(
            &web,
            classifier,
            CrawlConfig {
                max_pages: 60,
                threads: 4,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        let urls: Vec<String> = report.relevant.iter().map(|p| p.url.to_string()).collect();
        (urls, report.harvest_rate())
    };
    let (urls_a, hr_a) = run();
    let (urls_b, hr_b) = run();
    assert_eq!(urls_a, urls_b);
    assert!((hr_a - hr_b).abs() < 1e-12);
}

#[test]
fn full_flow_admission_fails_but_split_flows_pass() {
    use websift::flow::cluster::{admit, ClusterSpec};
    let ctx = ExperimentContext::tiny(7);
    let full = full_analysis_plan(&ctx.resources);
    assert!(admit(&full, 28, &ClusterSpec::paper_cluster()).is_err());
    let ling = websift::pipeline::linguistic_flow("docs");
    assert!(admit(&ling, 28, &ClusterSpec::paper_cluster()).is_ok());
}
