//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use std::collections::HashMap;
use websift::crawler::parser::{repair_markup, strip_markup, HtmlToken};
use websift::ner::AhoCorasick;
use websift::stats::{jensen_shannon, mann_whitney_u, Histogram, Summary};
use websift::text::{tokenize, Regex, SentenceSplitter};
use websift::web::Url;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tokens partition the non-whitespace text: in-bounds, ordered,
    /// non-overlapping, never containing whitespace.
    #[test]
    fn tokens_are_ordered_and_in_bounds(text in "\\PC{0,200}") {
        let tokens = tokenize::tokenize(&text);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end);
            prop_assert!(t.end <= text.len());
            prop_assert!(t.start < t.end);
            prop_assert!(!t.text(&text).chars().any(char::is_whitespace));
            prev_end = t.end;
        }
    }

    /// Sentences are ordered, in bounds, and cover all alphanumeric text.
    #[test]
    fn sentences_cover_word_characters(text in "[a-zA-Z .!?()0-9\\n]{0,300}") {
        let sents = SentenceSplitter::new().split(&text);
        let mut prev_end = 0usize;
        for s in &sents {
            prop_assert!(s.start >= prev_end);
            prop_assert!(s.end <= text.len());
            prev_end = s.end;
        }
        let covered: usize = sents.iter().map(|s| s.text(&text).chars().filter(|c| c.is_alphanumeric()).count()).sum();
        let total: usize = text.chars().filter(|c| c.is_alphanumeric()).count();
        prop_assert_eq!(covered, total, "sentence spans must not drop text");
    }

    /// The regex engine agrees with plain substring search on literals.
    #[test]
    fn regex_literal_matches_substring_search(
        needle in "[a-z]{1,6}",
        haystack in "[a-z ]{0,80}",
    ) {
        let re = Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&haystack), haystack.contains(&needle));
        if let Some(m) = re.find(&haystack) {
            prop_assert_eq!(m.start, haystack.find(&needle).unwrap());
            prop_assert_eq!(m.text(&haystack), needle);
        }
    }

    /// Aho-Corasick finds exactly the matches naive scanning finds.
    #[test]
    fn aho_corasick_matches_naive_scan(
        patterns in prop::collection::vec("[a-c]{1,4}", 1..6),
        haystack in "[a-c]{0,60}",
    ) {
        let ac = AhoCorasick::new(&patterns, false);
        let mut expected = 0usize;
        let mut seen_patterns = std::collections::HashSet::new();
        for p in &patterns {
            if !seen_patterns.insert(p.clone()) {
                continue; // duplicate patterns get separate ids; count once
            }
            let mut at = 0usize;
            while let Some(pos) = haystack[at..].find(p.as_str()) {
                expected += 1;
                at += pos + 1;
            }
        }
        // count AC matches of distinct patterns only
        let distinct: Vec<String> = seen_patterns.into_iter().collect();
        let ac2 = AhoCorasick::new(&distinct, false);
        prop_assert_eq!(ac2.find_all(&haystack).len(), expected);
        // the duplicated automaton never reports fewer matches
        prop_assert!(ac.find_all(&haystack).len() >= expected);
    }

    /// Markup repair always yields balanced tag streams.
    #[test]
    fn repair_always_balances(html in "[a-z<>/ ]{0,120}") {
        if let Ok(tokens) = repair_markup(&html, 1.0) {
            let mut depth = 0i64;
            for t in &tokens {
                match t {
                    HtmlToken::Open { name, .. }
                        if !["br", "hr", "img", "input", "meta", "link"].contains(&name.as_str()) =>
                    {
                        depth += 1
                    }
                    HtmlToken::Close { .. } => depth -= 1,
                    _ => {}
                }
                prop_assert!(depth >= 0, "close before open");
            }
            prop_assert_eq!(depth, 0, "unbalanced after repair");
        }
    }

    /// Stripping markup never leaves tag characters behind (for inputs
    /// whose tags are well-delimited).
    #[test]
    fn strip_markup_removes_tags(words in prop::collection::vec("[a-z]{1,8}", 0..10)) {
        let html: String = words.iter().map(|w| format!("<p>{w}</p>")).collect();
        let text = strip_markup(&html);
        prop_assert!(!text.contains('<') && !text.contains('>'));
        for w in &words {
            prop_assert!(text.contains(w.as_str()));
        }
    }

    /// JSD is symmetric and bounded in [0, 1].
    #[test]
    fn jsd_symmetric_bounded(
        a in prop::collection::hash_map("[a-e]", 1u64..50, 0..6),
        b in prop::collection::hash_map("[a-e]", 1u64..50, 0..6),
    ) {
        let a: HashMap<String, u64> = a.into_iter().collect();
        let b: HashMap<String, u64> = b.into_iter().collect();
        let d1 = jensen_shannon(&a, &b);
        let d2 = jensen_shannon(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&d1));
        prop_assert!(jensen_shannon(&a, &a) < 1e-9);
    }

    /// Mann-Whitney P-values stay in [0, 1] and the test is symmetric.
    #[test]
    fn mann_whitney_sane(
        a in prop::collection::vec(-100.0f64..100.0, 1..30),
        b in prop::collection::vec(-100.0f64..100.0, 1..30),
    ) {
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        prop_assert!((r1.u + r2.u - (a.len() * b.len()) as f64).abs() < 1e-9);
    }

    /// Summary invariants: min <= q1 <= median <= q3 <= max, mean within.
    #[test]
    fn summary_order_invariants(data in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, data.len());
    }

    /// Histograms never lose observations.
    #[test]
    fn histogram_conserves_counts(data in prop::collection::vec(-50.0f64..150.0, 0..100)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record_all(data.iter().copied());
        prop_assert_eq!(h.total(), data.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), data.len() as u64);
    }

    /// URL parse/display round-trips and join never panics.
    #[test]
    fn url_roundtrip_and_join(host in "[a-z]{1,10}", path in "[a-z0-9/._-]{0,30}", link in "[a-z0-9/._-]{0,20}") {
        let url = Url::new(&format!("{host}.example"), &path);
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(&reparsed, &url);
        let joined = url.join(&link);
        if let Ok(j) = joined {
            prop_assert!(j.path().starts_with('/'));
        }
    }
}

// The corpus generator respects its determinism contract under proptest-
// chosen seeds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn generator_deterministic_for_any_seed(seed in 0u64..1_000_000) {
        use websift::corpus::{CorpusKind, Generator};
        let g1 = Generator::new(CorpusKind::Medline, seed);
        let g2 = Generator::new(CorpusKind::Medline, seed);
        let a = g1.document(seed % 17);
        let b = g2.document(seed % 17);
        prop_assert_eq!(a.body, b.body);
        prop_assert_eq!(a.gold.sentences, b.gold.sentences);
    }
}
