//! Whole-system serving determinism: a store fed by the real extraction
//! pipeline must be byte-deterministic — same seed, same snapshot bytes,
//! same query responses — and a store killed mid-ingest and resumed from
//! a snapshot must be indistinguishable from one that never stopped.

use std::sync::Arc;
use websift::corpus::{CorpusKind, Document, Generator, Lexicon, LexiconScale};
use websift::flow::IeResources;
use websift::ner::EntityType;
use websift::observe::Observer;
use websift::pipeline::{entity_store_flow, run_over_documents_into};
use websift::serve::{parse_query, ExtractionStore, QueryEngine, StoreSnapshot};

fn resources() -> IeResources {
    IeResources::quick_for_tests(LexiconScale::tiny())
}

fn docs(seed: u64, n: usize) -> Vec<Document> {
    Generator::with_lexicon(
        CorpusKind::Medline,
        seed,
        Arc::new(Lexicon::generate(LexiconScale::tiny())),
    )
    .documents(n)
}

/// Ingests `batches` of documents into `store` through the entity
/// pipeline, one crawl round per batch.
fn ingest(store: &mut ExtractionStore, resources: &IeResources, batches: &[&[Document]]) {
    let plan = entity_store_flow(resources, EntityType::Gene, store.name());
    for (round, batch) in batches.iter().enumerate() {
        store.set_round(round as u32);
        run_over_documents_into(&plan, batch, 2, store).expect("ingest flow");
    }
}

fn built_store(seed: u64) -> ExtractionStore {
    let res = resources();
    let documents = docs(seed, 8);
    let mut store = ExtractionStore::new("t", 4);
    let (a, b) = documents.split_at(documents.len() / 2);
    ingest(&mut store, &res, &[a, b]);
    store
}

#[test]
fn same_seed_pipelines_serve_byte_identical_responses() {
    let (sa, sb) = (built_store(7), built_store(7));
    assert!(sa.posting_count() > 0, "pipeline ingested nothing");
    assert_eq!(sa.content_digest(), sb.content_digest());

    // Query a few entities actually present in the store (single-token
    // names only; the grammar takes one token per entity).
    let entities: Vec<String> = sa
        .iter()
        .map(|(k, _)| k.entity.clone())
        .filter(|e| !e.contains(char::is_whitespace))
        .take(3)
        .collect();
    assert!(!entities.is_empty());
    let mut texts: Vec<String> = Vec::new();
    for e in &entities {
        texts.push(format!("lookup {e}"));
        texts.push(format!("stats {e} top 2"));
        texts.push(format!("lookup {e} round 1"));
    }
    texts.push(format!("cooccur {} {}", entities[0], entities[entities.len() - 1]));

    let (oa, ob) = (Observer::new(), Observer::new());
    let (ea, eb) = (QueryEngine::new(&sa, &oa), QueryEngine::new(&sb, &ob));
    let mut any_rows = false;
    for (i, text) in texts.iter().enumerate() {
        let q = parse_query(text).expect("test query parses");
        let (ra, rb) = (ea.execute(&q, i as f64), eb.execute(&q, i as f64));
        assert_eq!(ra.bytes(), rb.bytes(), "responses diverged for `{text}`");
        any_rows |= !ra.rows.is_empty();
    }
    assert!(any_rows, "every query came back empty");
    // identical query streams observe identically
    assert_eq!(oa.tracer().to_jsonl(), ob.tracer().to_jsonl());
}

#[test]
fn snapshot_frame_roundtrips_at_the_facade() {
    let store = built_store(11);
    let snap = StoreSnapshot::capture(&store);

    // bytes -> frame -> store -> bytes is the identity
    let reread = StoreSnapshot::from_bytes(snap.as_bytes()).expect("frame verifies");
    let restored = reread.restore().expect("snapshot restores");
    assert_eq!(restored.content_digest(), store.content_digest());
    assert_eq!(StoreSnapshot::capture(&restored).as_bytes(), snap.as_bytes());

    // a flipped payload byte must fail closed, not decode garbage
    let mut corrupt = snap.as_bytes().to_vec();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert!(StoreSnapshot::from_bytes(&corrupt).is_err(), "corruption went unnoticed");
}

#[test]
fn kill_and_resume_mid_ingest_matches_uninterrupted_run() {
    let res = resources();
    let documents = docs(23, 8);
    let (first, second) = documents.split_at(documents.len() / 2);

    // Uninterrupted: both rounds into one store.
    let mut straight = ExtractionStore::new("t", 4);
    ingest(&mut straight, &res, &[first, second]);

    // Interrupted: round 0, snapshot, "kill", restore from the bytes,
    // then round 1 into the restored store.
    let mut victim = ExtractionStore::new("t", 4);
    ingest(&mut victim, &res, &[first]);
    let frame = StoreSnapshot::capture(&victim).as_bytes().to_vec();
    drop(victim);
    let mut resumed = StoreSnapshot::from_bytes(&frame)
        .expect("mid-ingest frame verifies")
        .restore()
        .expect("mid-ingest snapshot restores");
    let plan = entity_store_flow(&res, EntityType::Gene, resumed.name());
    resumed.set_round(1);
    run_over_documents_into(&plan, second, 2, &mut resumed).expect("resumed ingest");

    assert_eq!(resumed.ingested_records(), straight.ingested_records());
    assert_eq!(resumed.content_digest(), straight.content_digest());
    assert_eq!(
        StoreSnapshot::capture(&resumed).as_bytes(),
        StoreSnapshot::capture(&straight).as_bytes(),
        "kill-and-resume store is not byte-identical to the uninterrupted one"
    );
}
