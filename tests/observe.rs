//! Whole-system observability determinism: under a fixed seed, repeated
//! runs must *observe* byte-identically — same JSONL event streams, same
//! registry snapshots, same merged histograms — because every timestamp
//! comes from the simulated clock, never from wall time.

use std::collections::HashMap;
use std::sync::Arc;
use websift::crawler::{train_focus_classifier, CrawlConfig, FocusedCrawler};
use websift::flow::{Executor, ExecutionConfig, FlowResilience};
use websift::observe::{HistogramState, MetricValue, Observer};
use websift::pipeline::{documents_to_records, full_analysis_plan, ExperimentContext};
use websift::resilience::checkpoint::encode_to_vec;
use websift::web::{PageId, SimulatedWeb, WebGraph, WebGraphConfig};

fn observed_crawl() -> Arc<Observer> {
    let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
    let classifier = train_focus_classifier(100, 2.0, 9);
    let seeds: Vec<_> = (0..web.graph().num_pages() as u32)
        .map(PageId)
        .filter(|&p| web.graph().page(p).relevant)
        .take(12)
        .map(|p| web.graph().url_of(p))
        .collect();
    let obs = Arc::new(Observer::new());
    let mut crawler = FocusedCrawler::new(
        &web,
        classifier,
        CrawlConfig { max_pages: 90, threads: 4, ..CrawlConfig::default() },
    )
    .with_observer(obs.clone());
    let _ = crawler.crawl(seeds);
    obs
}

#[test]
fn same_seed_crawls_trace_byte_identically() {
    let (a, b) = (observed_crawl(), observed_crawl());
    let (ja, jb) = (a.tracer().to_jsonl(), b.tracer().to_jsonl());
    assert!(!ja.is_empty());
    assert!(ja.contains("crawl.fetch"), "round spans present: {ja}");
    assert_eq!(ja.as_bytes(), jb.as_bytes(), "JSONL event streams diverged");
    assert_eq!(
        encode_to_vec(&a.registry().snapshot()),
        encode_to_vec(&b.registry().snapshot()),
        "registry snapshots diverged"
    );
}

fn observed_flow(ctx: &ExperimentContext) -> Observer {
    let docs = websift::corpus::Generator::with_lexicon(
        websift::corpus::CorpusKind::Medline,
        5,
        Arc::new(ctx.lexicon.as_ref().clone()),
    )
    .documents(6);
    let plan = full_analysis_plan(&ctx.resources);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), documents_to_records(&docs));
    let obs = Observer::new();
    Executor::new(ExecutionConfig::local(2))
        .run_observed(&plan, inputs, &FlowResilience::default(), &obs)
        .expect("flow runs");
    obs
}

/// Merges every histogram in the observer's registry into one state —
/// exercising the mergeable-state design across a whole run's metrics.
fn merged_histograms(obs: &Observer) -> HistogramState {
    let mut merged = HistogramState::default();
    for (_, _, value) in &obs.registry().snapshot().entries {
        if let MetricValue::Histogram(h) = value {
            merged.merge(h);
        }
    }
    merged
}

#[test]
fn same_seed_flows_observe_identically() {
    let ctx = ExperimentContext::tiny(21);
    let (a, b) = (observed_flow(&ctx), observed_flow(&ctx));

    let (ja, jb) = (a.tracer().to_jsonl(), b.tracer().to_jsonl());
    assert!(ja.contains("flow.op"), "per-node spans present: {ja}");
    assert_eq!(ja.as_bytes(), jb.as_bytes(), "JSONL event streams diverged");

    let (ha, hb) = (merged_histograms(&a), merged_histograms(&b));
    assert!(ha.count > 0, "histogram observations recorded");
    assert_eq!(encode_to_vec(&ha), encode_to_vec(&hb), "merged histograms diverged");

    // the profiler's folded-stack export is part of the deterministic surface
    assert_eq!(a.profiler().folded(), b.profiler().folded());
    assert_eq!(a.summary(), b.summary());
}
