//! Linear-chain Conditional Random Field sequence taggers.
// The forward-backward and Viterbi loops index several DP lattices by the
// same label position; `for y in 0..NLABELS` reads better than zipped
// iterators there.
#![allow(clippy::needless_range_loop)]
//!
//! This is the from-scratch analogue of the paper's ML-based entity taggers
//! (BANNER for genes, ChemSpot for drugs, a Mallet-based disease tagger —
//! all of which are linear-chain CRFs under the hood). The implementation
//! is a real CRF: BIO label chains, hashed lexical/orthographic features,
//! exact forward-backward marginals in log space, stochastic gradient
//! training of the conditional log-likelihood with L2 regularization, and
//! Viterbi decoding.
//!
//! Two properties of the original tools matter for the paper's evaluation
//! and are reproduced here:
//!
//! - **runtime**: with [`CrfConfig::context_features`] enabled (the
//!   default, mirroring the rich feature sets of BANNER/ChemSpot), feature
//!   extraction scans the whole sentence for every token, so per-sentence
//!   cost grows quadratically with sentence length — the ML curves of
//!   Fig. 3b that sit 2–3 orders of magnitude above dictionary matching;
//! - **domain brittleness**: a model trained on abstract-like text where
//!   short upper-case tokens are overwhelmingly genes will tag arbitrary
//!   three-letter acronyms as genes on web text (see `websift-ner::tla`).

use crate::entity::{EntityType, Mention, Method};
use crate::dictionary::TaggerCostModel;
use serde::Serialize;
use websift_text::tokenize::{tokenize, Token};

/// BIO labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[repr(u8)]
pub enum Label {
    Outside = 0,
    Begin = 1,
    Inside = 2,
}

pub const NLABELS: usize = 3;

impl Label {
    pub fn from_index(i: usize) -> Label {
        match i {
            1 => Label::Begin,
            2 => Label::Inside,
            _ => Label::Outside,
        }
    }
}

/// A training example: a tokenized sentence with gold BIO labels.
#[derive(Debug, Clone)]
pub struct TrainExample {
    pub tokens: Vec<String>,
    pub labels: Vec<Label>,
}

impl TrainExample {
    /// Builds an example from a sentence and gold mention spans (token
    /// index ranges, end-exclusive).
    pub fn from_spans(tokens: Vec<String>, spans: &[(usize, usize)]) -> TrainExample {
        let mut labels = vec![Label::Outside; tokens.len()];
        for &(s, e) in spans {
            assert!(s < e && e <= tokens.len(), "bad span ({s},{e})");
            labels[s] = Label::Begin;
            for l in labels.iter_mut().take(e).skip(s + 1) {
                *l = Label::Inside;
            }
        }
        TrainExample { tokens, labels }
    }
}

/// Training/featurization configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrfConfig {
    /// Hashed feature space size (per label).
    pub dim: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decayed 1/(1+t) per epoch).
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// Enable sentence-wide context features (quadratic cost).
    pub context_features: bool,
    /// RNG-free deterministic training (examples in given order).
    pub shuffle_seed: Option<u64>,
}

impl Default for CrfConfig {
    fn default() -> CrfConfig {
        CrfConfig {
            dim: 1 << 18,
            epochs: 8,
            learning_rate: 0.2,
            l2: 1e-6,
            context_features: true,
            shuffle_seed: Some(0x5eed),
        }
    }
}

/// The trained model.
#[derive(Debug, Clone)]
pub struct LinearChainCrf {
    /// Unary weights, indexed `hash(feature) % dim * NLABELS + label`.
    weights: Vec<f32>,
    /// Transition weights `trans[from][to]`.
    trans: [[f32; NLABELS]; NLABELS],
    dim: usize,
    context_features: bool,
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv::new().upd(bytes).finish()
}

/// Streaming FNV-1a over byte pieces: `Fnv::new().upd(a).upd(b).finish()`
/// equals `fnv1a` of the concatenation. This is what lets the feature
/// extractor hash `"w=" + lowercase(token)` for ASCII tokens without
/// materializing the string — the hash stays bit-identical to the
/// `format!`-based extraction it replaced.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    #[inline]
    fn upd(mut self, bytes: &[u8]) -> Fnv {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    /// Hashes `bytes` as if each had been ASCII-lowercased first.
    #[inline]
    fn upd_lower(mut self, bytes: &[u8]) -> Fnv {
        for &b in bytes {
            self.0 ^= b.to_ascii_lowercase() as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Extracts hashed unary feature ids for position `i`.
///
/// All-ASCII tokens (the overwhelmingly common case on web text) take an
/// allocation-free path: lowercasing folds into the hash loop and window
/// features hash the prefix and token bytes in sequence. Tokens with
/// multi-byte chars fall back to materializing `to_lowercase()` — which
/// can change char counts (İ lowers to two chars), so the fallback also
/// preserves the original length-feature semantics exactly.
fn features(tokens: &[&str], i: usize, dim: usize, context: bool, out: &mut Vec<usize>) {
    // lint:hot_loop(begin): CRF per-token feature extraction
    out.clear();
    let w = tokens[i];
    let d = dim as u64;
    let mut push_h = |h: u64| out.push((h % d) as usize);

    // `prefix` + lowercased token, e.g. "w-1=brca1".
    let word_h = |prefix: &[u8], t: &str| -> u64 {
        let h = Fnv::new().upd(prefix);
        if t.is_ascii() {
            h.upd_lower(t.as_bytes()).finish()
        } else {
            h.upd(t.to_lowercase().as_bytes()).finish()
        }
    };

    push_h(word_h(b"w=", w));
    if i > 0 {
        push_h(word_h(b"w-1=", tokens[i - 1]));
    } else {
        push_h(fnv1a(b"w-1=<bos>"));
    }
    if i + 1 < tokens.len() {
        push_h(word_h(b"w+1=", tokens[i + 1]));
    } else {
        push_h(fnv1a(b"w+1=<eos>"));
    }

    // Affix features over the lowercased form; `n` is its char count.
    let n;
    if w.is_ascii() {
        let wb = w.as_bytes();
        n = wb.len();
        if n >= 2 {
            push_h(Fnv::new().upd(b"suf2=").upd_lower(&wb[n - 2..]).finish());
        }
        if n >= 3 {
            push_h(Fnv::new().upd(b"suf3=").upd_lower(&wb[n - 3..]).finish());
            push_h(Fnv::new().upd(b"pre3=").upd_lower(&wb[..3]).finish());
        }
    } else {
        let lower = w.to_lowercase();
        let chars: Vec<char> = lower.chars().collect();
        n = chars.len();
        if n >= 2 {
            let s2: String = chars[n - 2..].iter().collect();
            // lint:allow(hot_loop_alloc): non-ASCII fallback, rare on web text
            push_h(fnv1a(format!("suf2={s2}").as_bytes()));
        }
        if n >= 3 {
            let s3: String = chars[n - 3..].iter().collect();
            // lint:allow(hot_loop_alloc): non-ASCII fallback, rare on web text
            push_h(fnv1a(format!("suf3={s3}").as_bytes()));
            let p3: String = chars[..3].iter().collect();
            // lint:allow(hot_loop_alloc): non-ASCII fallback, rare on web text
            push_h(fnv1a(format!("pre3={p3}").as_bytes()));
        }
    }

    // orthographic shape
    let has_digit = w.chars().any(|c| c.is_ascii_digit());
    let has_alpha = w.chars().any(char::is_alphabetic);
    let all_upper = has_alpha && w.chars().all(|c| !c.is_lowercase());
    let init_upper = w.chars().next().map(char::is_uppercase).unwrap_or(false);
    if has_digit {
        push_h(fnv1a(b"shape=digit"));
    }
    if all_upper {
        push_h(fnv1a(b"shape=allcaps"));
        // `n.min(6)` is a single digit, so the formatted byte is exact.
        push_h(Fnv::new().upd(b"capslen=").upd(&[b'0' + n.min(6) as u8]).finish());
    } else if init_upper {
        push_h(fnv1a(b"shape=initcap"));
    }
    if has_digit && has_alpha {
        push_h(fnv1a(b"shape=alnum-mix"));
    }
    if w.contains('-') {
        push_h(fnv1a(b"shape=hyphen"));
    }
    if !has_alpha && !has_digit {
        push_h(fnv1a(b"shape=punct"));
    }
    push_h(Fnv::new().upd(b"len=").upd(&[b'0' + n.min(8) as u8]).finish());

    if context {
        // Sentence-wide bag-of-words context: one feature per other token.
        // Deliberately O(sentence length) per position — this is what makes
        // the rich ML taggers quadratic per sentence (Fig. 3b).
        for (j, t) in tokens.iter().enumerate() {
            if j != i {
                push_h(word_h(b"ctx=", t));
            }
        }
    }
    // lint:hot_loop(end)
}

#[inline]
fn logsumexp(values: &[f64; NLABELS]) -> f64 {
    let m = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return m;
    }
    m + values.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

impl LinearChainCrf {
    /// Trains a CRF by SGD on the conditional log-likelihood.
    pub fn train(examples: &[TrainExample], config: CrfConfig) -> LinearChainCrf {
        assert!(config.dim.is_power_of_two(), "dim must be a power of two");
        let mut model = LinearChainCrf {
            weights: vec![0.0; config.dim * NLABELS],
            trans: [[0.0; NLABELS]; NLABELS],
            dim: config.dim,
            context_features: config.context_features,
        };
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng_state = config.shuffle_seed.unwrap_or(0);
        let mut feats: Vec<usize> = Vec::new();

        for epoch in 0..config.epochs {
            let lr = config.learning_rate / (1.0 + epoch as f32);
            if config.shuffle_seed.is_some() {
                // xorshift Fisher-Yates for deterministic shuffling
                for i in (1..order.len()).rev() {
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    let j = (rng_state % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
            }
            for &ei in &order {
                let ex = &examples[ei];
                if ex.tokens.is_empty() {
                    continue;
                }
                model.sgd_step(ex, lr, config.l2, &mut feats);
            }
        }
        model
    }

    /// One SGD step on one example: forward-backward for expectations, then
    /// `w += lr * (observed - expected) - lr * l2 * w` on touched weights.
    fn sgd_step(&mut self, ex: &TrainExample, lr: f32, l2: f32, feats: &mut Vec<usize>) {
        let tokens: Vec<&str> = ex.tokens.iter().map(String::as_str).collect();
        let n = tokens.len();

        // Unary scores and cached feature ids.
        let mut unary = vec![[0f64; NLABELS]; n];
        let mut all_feats: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            features(&tokens, i, self.dim, self.context_features, feats);
            for y in 0..NLABELS {
                let mut s = 0f64;
                for &f in feats.iter() {
                    s += self.weights[f * NLABELS + y] as f64;
                }
                unary[i][y] = s;
            }
            all_feats.push(feats.clone());
        }

        // Forward.
        let mut alpha = vec![[f64::NEG_INFINITY; NLABELS]; n];
        alpha[0] = unary[0];
        for i in 1..n {
            for y in 0..NLABELS {
                let mut acc = [f64::NEG_INFINITY; NLABELS];
                for (yp, acc_slot) in acc.iter_mut().enumerate() {
                    *acc_slot = alpha[i - 1][yp] + self.trans[yp][y] as f64;
                }
                alpha[i][y] = logsumexp(&acc) + unary[i][y];
            }
        }
        let log_z = logsumexp(&alpha[n - 1]);

        // Backward.
        let mut beta = vec![[0f64; NLABELS]; n];
        for i in (0..n - 1).rev() {
            for y in 0..NLABELS {
                let mut acc = [f64::NEG_INFINITY; NLABELS];
                for (yn, acc_slot) in acc.iter_mut().enumerate() {
                    *acc_slot = self.trans[y][yn] as f64 + unary[i + 1][yn] + beta[i + 1][yn];
                }
                beta[i][y] = logsumexp(&acc);
            }
        }

        // Gradient updates.
        for i in 0..n {
            let gold = ex.labels[i] as usize;
            // marginals P(y_i = y)
            let mut marg = [0f64; NLABELS];
            for y in 0..NLABELS {
                marg[y] = (alpha[i][y] + beta[i][y] - log_z).exp();
            }
            for &f in &all_feats[i] {
                for (y, &m) in marg.iter().enumerate() {
                    let idx = f * NLABELS + y;
                    let obs = if y == gold { 1.0 } else { 0.0 };
                    let w = &mut self.weights[idx];
                    *w += lr * ((obs - m) as f32) - lr * l2 * *w;
                }
            }
        }
        // Transition gradient via pairwise marginals.
        for i in 1..n {
            let gold_prev = ex.labels[i - 1] as usize;
            let gold = ex.labels[i] as usize;
            for yp in 0..NLABELS {
                for y in 0..NLABELS {
                    let lp = alpha[i - 1][yp] + self.trans[yp][y] as f64 + unary[i][y]
                        + beta[i][y]
                        - log_z;
                    let m = lp.exp();
                    let obs = if yp == gold_prev && y == gold { 1.0 } else { 0.0 };
                    self.trans[yp][y] += lr * ((obs - m) as f32);
                }
            }
        }
    }

    /// Viterbi-decodes BIO labels for a tokenized sentence.
    pub fn decode(&self, tokens: &[&str]) -> Vec<Label> {
        let n = tokens.len();
        if n == 0 {
            return Vec::new();
        }
        let mut feats = Vec::new();
        let mut delta = vec![[f64::NEG_INFINITY; NLABELS]; n];
        let mut back = vec![[0u8; NLABELS]; n];
        for i in 0..n {
            features(tokens, i, self.dim, self.context_features, &mut feats);
            let mut unary = [0f64; NLABELS];
            for y in 0..NLABELS {
                for &f in &feats {
                    unary[y] += self.weights[f * NLABELS + y] as f64;
                }
            }
            if i == 0 {
                delta[0] = unary;
            } else {
                for y in 0..NLABELS {
                    let mut best = (f64::NEG_INFINITY, 0usize);
                    for yp in 0..NLABELS {
                        let s = delta[i - 1][yp] + self.trans[yp][y] as f64;
                        if s > best.0 {
                            best = (s, yp);
                        }
                    }
                    delta[i][y] = best.0 + unary[y];
                    back[i][y] = best.1 as u8;
                }
            }
        }
        let mut y = (0..NLABELS)
            .max_by(|&a, &b| delta[n - 1][a].partial_cmp(&delta[n - 1][b]).unwrap())
            .unwrap();
        let mut labels = vec![Label::Outside; n];
        labels[n - 1] = Label::from_index(y);
        for i in (1..n).rev() {
            y = back[i][y] as usize;
            labels[i - 1] = Label::from_index(y);
        }
        labels
    }
}

/// A complete ML entity tagger: CRF + tokenizer + BIO-to-span conversion.
#[derive(Debug, Clone)]
pub struct CrfTagger {
    entity: EntityType,
    model: LinearChainCrf,
    context_features: bool,
}

impl CrfTagger {
    /// Trains a tagger for `entity` from examples.
    pub fn train(entity: EntityType, examples: &[TrainExample], config: CrfConfig) -> CrfTagger {
        CrfTagger {
            entity,
            model: LinearChainCrf::train(examples, config),
            context_features: config.context_features,
        }
    }

    pub fn entity(&self) -> EntityType {
        self.entity
    }

    /// Tags one sentence of raw text.
    pub fn tag(&self, text: &str) -> Vec<Mention> {
        let tokens: Vec<Token> = tokenize(text);
        if tokens.is_empty() {
            return Vec::new();
        }
        let strs: Vec<&str> = tokens.iter().map(|t| t.text(text)).collect();
        let labels = self.model.decode(&strs);
        let mut mentions = Vec::new();
        let mut i = 0usize;
        while i < labels.len() {
            if labels[i] == Label::Begin {
                let start_tok = i;
                let mut end_tok = i + 1;
                while end_tok < labels.len() && labels[end_tok] == Label::Inside {
                    end_tok += 1;
                }
                let (s, e) = (tokens[start_tok].start, tokens[end_tok - 1].end);
                mentions.push(Mention::new(s, e, &text[s..e], self.entity, Method::Ml));
                i = end_tok;
            } else {
                i += 1;
            }
        }
        mentions
    }

    /// Paper-scale cost model: CRF taggers have modest memory but heavy
    /// per-character cost — 2–3 orders of magnitude above dictionary
    /// matching, quadratic when context features are on.
    pub fn cost_model(&self) -> TaggerCostModel {
        TaggerCostModel {
            startup_secs: 15.0,
            memory_bytes: 2_500_000_000,
            us_per_char: if self.context_features { 50.0 } else { 20.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// A tiny gene-ish training set: upper-case alnum symbols are genes.
    fn gene_examples() -> Vec<TrainExample> {
        let mut ex = Vec::new();
        let genes = ["BRCA1", "TP53", "KRAS", "EGFR", "MYC2", "AKT1", "TNF", "JAK2"];
        let carriers = [
            ("mutations in {} cause cancer", 2),
            ("the {} gene regulates growth", 1),
            ("expression of {} increased", 2),
            ("{} encodes a kinase", 0),
            ("we analyzed {} in samples", 2),
            ("loss of {} was observed", 2),
        ];
        for g in genes {
            for (tpl, idx) in carriers {
                let sent = tpl.replace("{}", g);
                let tokens = toks(&sent);
                ex.push(TrainExample::from_spans(tokens, &[(idx, idx + 1)]));
            }
        }
        // negatives: plain sentences without genes
        for s in [
            "the patients received standard care",
            "results were published last year",
            "this study was small and short",
            "we thank the reviewers for comments",
        ] {
            ex.push(TrainExample::from_spans(toks(s), &[]));
        }
        ex
    }

    fn quick_config() -> CrfConfig {
        CrfConfig {
            dim: 1 << 14,
            epochs: 6,
            learning_rate: 0.3,
            context_features: false,
            ..CrfConfig::default()
        }
    }

    #[test]
    fn from_spans_builds_bio() {
        let ex = TrainExample::from_spans(toks("a b c d"), &[(1, 3)]);
        assert_eq!(
            ex.labels,
            vec![Label::Outside, Label::Begin, Label::Inside, Label::Outside]
        );
    }

    #[test]
    #[should_panic(expected = "bad span")]
    fn from_spans_rejects_bad_span() {
        TrainExample::from_spans(toks("a b"), &[(1, 5)]);
    }

    #[test]
    fn learns_simple_gene_pattern() {
        let tagger = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        let ms = tagger.tag("mutations in JAK2 cause cancer");
        assert_eq!(ms.len(), 1, "{ms:?}");
        assert_eq!(ms[0].name, "jak2");
        assert_eq!(ms[0].method, Method::Ml);
    }

    #[test]
    fn generalizes_to_unseen_symbol() {
        // The orthographic features should let it tag an unseen all-caps
        // symbol in a gene-ish context.
        let tagger = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        let ms = tagger.tag("the STAT3 gene regulates growth");
        assert_eq!(ms.len(), 1, "{ms:?}");
        assert_eq!(ms[0].name, "stat3");
    }

    #[test]
    fn tla_false_positive_behaviour() {
        // Trained on abstracts where short all-caps tokens are genes, the
        // model should (incorrectly, per the paper) tag an arbitrary TLA.
        let tagger = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        let ms = tagger.tag("expression of USA increased");
        assert_eq!(ms.len(), 1, "expected TLA false positive, got {ms:?}");
    }

    #[test]
    fn plain_text_mostly_untagged() {
        let tagger = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        let ms = tagger.tag("the patients received standard care");
        assert!(ms.is_empty(), "{ms:?}");
    }

    #[test]
    fn empty_input() {
        let tagger = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        assert!(tagger.tag("").is_empty());
    }

    #[test]
    fn multi_token_spans_decode() {
        let mut ex = Vec::new();
        for _ in 0..10 {
            ex.push(TrainExample::from_spans(
                toks("patients with breast cancer improved"),
                &[(2, 4)],
            ));
            ex.push(TrainExample::from_spans(
                toks("patients with lung cancer improved"),
                &[(2, 4)],
            ));
            ex.push(TrainExample::from_spans(toks("patients improved a lot"), &[]));
        }
        let tagger = CrfTagger::train(EntityType::Disease, &ex, quick_config());
        let ms = tagger.tag("patients with breast cancer improved");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "breast cancer");
    }

    #[test]
    fn cost_model_reflects_context_features() {
        let quick = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        let heavy_cfg = CrfConfig {
            context_features: true,
            dim: 1 << 14,
            epochs: 2,
            ..CrfConfig::default()
        };
        let heavy = CrfTagger::train(EntityType::Gene, &gene_examples(), heavy_cfg);
        assert!(heavy.cost_model().us_per_char > quick.cost_model().us_per_char);
        // Both are far above the dictionary tagger's 0.05 us/char.
        assert!(quick.cost_model().us_per_char > 100.0 * 0.05);
    }

    #[test]
    fn decode_label_count_matches_tokens() {
        let tagger = CrfTagger::train(EntityType::Gene, &gene_examples(), quick_config());
        let labels = tagger.model.decode(&["a", "b", "c"]);
        assert_eq!(labels.len(), 3);
    }

    /// The pre-fast-path feature extractor, kept verbatim as the
    /// reference: every hashed id must match, or trained-model outputs
    /// (and the deterministic surfaces built on them) would drift.
    fn reference_features(tokens: &[&str], i: usize, dim: usize, context: bool) -> Vec<usize> {
        let mut out = Vec::new();
        let w = tokens[i];
        let lower = w.to_lowercase();
        let mut push = |s: &str| out.push((fnv1a(s.as_bytes()) % dim as u64) as usize);
        push(&format!("w={lower}"));
        if i > 0 {
            push(&format!("w-1={}", tokens[i - 1].to_lowercase()));
        } else {
            push("w-1=<bos>");
        }
        if i + 1 < tokens.len() {
            push(&format!("w+1={}", tokens[i + 1].to_lowercase()));
        } else {
            push("w+1=<eos>");
        }
        let chars: Vec<char> = lower.chars().collect();
        let n = chars.len();
        if n >= 2 {
            let s2: String = chars[n - 2..].iter().collect();
            push(&format!("suf2={s2}"));
        }
        if n >= 3 {
            let s3: String = chars[n - 3..].iter().collect();
            push(&format!("suf3={s3}"));
            let p3: String = chars[..3].iter().collect();
            push(&format!("pre3={p3}"));
        }
        let has_digit = w.chars().any(|c| c.is_ascii_digit());
        let has_alpha = w.chars().any(char::is_alphabetic);
        let all_upper = has_alpha && w.chars().all(|c| !c.is_lowercase());
        let init_upper = w.chars().next().map(char::is_uppercase).unwrap_or(false);
        if has_digit {
            push("shape=digit");
        }
        if all_upper {
            push("shape=allcaps");
            push(&format!("capslen={}", n.min(6)));
        } else if init_upper {
            push("shape=initcap");
        }
        if has_digit && has_alpha {
            push("shape=alnum-mix");
        }
        if w.contains('-') {
            push("shape=hyphen");
        }
        if !has_alpha && !has_digit {
            push("shape=punct");
        }
        push(&format!("len={}", n.min(8)));
        if context {
            for (j, t) in tokens.iter().enumerate() {
                if j != i {
                    push(&format!("ctx={}", t.to_lowercase()));
                }
            }
        }
        out
    }

    #[test]
    fn ascii_fast_path_features_match_reference() {
        // Sentences mixing the ASCII fast path with fallback tokens:
        // all-caps, digits, hyphens, empty-adjacent shapes, and multi-byte
        // chars including \u{130} whose lowercase has a different char
        // count than the raw token.
        let sentences: Vec<Vec<&str>> = vec![
            vec!["BRCA1", "and", "GAD-67", "interact", "."],
            vec!["\u{130}stanbul", "na\u{ef}ve", "\u{212A}elvin", "ok"],
            vec!["x"],
            vec!["TP53", "3.5", "a-b-c", "ALLCAPSLONGWORD", ",", "\u{df}"],
        ];
        for toks in &sentences {
            for context in [false, true] {
                for i in 0..toks.len() {
                    let mut got = Vec::new();
                    features(toks, i, 1 << 14, context, &mut got);
                    assert_eq!(
                        got,
                        reference_features(toks, i, 1 << 14, context),
                        "feature ids diverge at {i} in {toks:?} (context={context})"
                    );
                }
            }
        }
    }
}
