//! Dictionary-based ("fuzzy dictionary-matching") entity taggers.
//!
//! The paper's dictionary taggers compile each term into a regular
//! expression to tolerate small surface variations — "the regular
//! expression transformations almost only affect very short word suffixes"
//! — and match with an automaton. At paper scale this design has two
//! painful properties the evaluation leans on heavily:
//!
//! - **startup cost**: "the dictionary-based gene name recognition
//!   algorithm needs approximately 20 minutes (!) to load the dictionary
//!   and to create the internal data structures";
//! - **memory footprint**: "between 6 and 20 GB of main memory per worker
//!   thread", because every term becomes a non-deterministic automaton.
//!
//! [`DictionaryTagger`] reproduces the architecture (variant expansion →
//! Aho-Corasick automaton → word-boundary-checked matches) and exposes a
//! *cost model* ([`DictionaryTagger::cost_model`]) that reports the
//! startup time and per-worker memory the equivalent paper-scale tool
//! would need; the simulated cluster scheduler in `websift-flow` consumes
//! those figures.

use crate::ahocorasick::AhoCorasick;
use crate::entity::{EntityType, Mention, Method};
use serde::Serialize;

/// A named dictionary: an entity type plus its term list.
#[derive(Debug, Clone)]
pub struct Dictionary {
    pub entity: EntityType,
    terms: Vec<String>,
}

impl Dictionary {
    /// Builds a dictionary, dropping terms shorter than 2 characters
    /// (single letters produce absurd match rates, as the original tools'
    /// stop lists also enforce).
    pub fn new<I, S>(entity: EntityType, terms: I) -> Dictionary
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        for t in terms {
            let t = t.as_ref().trim().to_string();
            if t.chars().count() < 2 {
                continue;
            }
            if seen.insert(t.to_lowercase()) {
                kept.push(t);
            }
        }
        Dictionary {
            entity,
            terms: kept,
        }
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn terms(&self) -> &[String] {
        &self.terms
    }
}

/// Expands a term into its match variants — the "regular expression"
/// treatment of the paper, materialized as explicit automaton patterns:
///
/// - the term itself;
/// - hyphen/space toggles (`GAD-67` ⇔ `GAD 67` ⇔ `GAD67`);
/// - a plural `s` for purely alphabetic multi-char terms.
pub fn expand_variants(term: &str) -> Vec<String> {
    let mut variants = vec![term.to_string()];
    if term.contains('-') {
        variants.push(term.replace('-', " "));
        variants.push(term.replace('-', ""));
    } else if term.contains(' ') {
        variants.push(term.replace(' ', "-"));
    } else {
        // letter-digit boundary toggles: BRCA1 -> BRCA-1, BRCA 1
        let chars: Vec<char> = term.chars().collect();
        for w in 1..chars.len() {
            if chars[w - 1].is_alphabetic() && chars[w].is_ascii_digit() {
                let (a, b): (String, String) =
                    (chars[..w].iter().collect(), chars[w..].iter().collect());
                variants.push(format!("{a}-{b}"));
                variants.push(format!("{a} {b}"));
                break;
            }
        }
    }
    if term.len() > 3 && term.chars().all(char::is_alphabetic) && !term.ends_with('s') {
        variants.push(format!("{term}s"));
    }
    variants
}

/// Cost model of a paper-scale instance of this tagger, consumed by the
/// simulated cluster scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TaggerCostModel {
    /// Startup (dictionary load + automaton construction) in simulated
    /// seconds at paper scale.
    pub startup_secs: f64,
    /// Resident memory per worker thread in bytes at paper scale.
    pub memory_bytes: u64,
    /// Approximate per-character processing cost in simulated
    /// microseconds (linear scan).
    pub us_per_char: f64,
}

/// The dictionary tagger: automaton over expanded variants, matches
/// filtered to word boundaries.
#[derive(Debug, Clone)]
pub struct DictionaryTagger {
    entity: EntityType,
    automaton: AhoCorasick,
    /// Term count used by the cost model. Defaults to the actual count;
    /// experiments running scaled-down dictionaries override it with the
    /// paper-scale count so the simulated cluster sees paper-scale
    /// footprints (e.g. the 700 K-entry gene dictionary's ≈20 GB / ≈20 min).
    cost_reference_terms: usize,
}

impl DictionaryTagger {
    /// Compiles the dictionary into an automaton (case-insensitive, as
    /// biomedical surface forms vary wildly in case).
    pub fn new(dictionary: &Dictionary) -> DictionaryTagger {
        let patterns: Vec<String> = dictionary
            .terms()
            .iter()
            .flat_map(|t| expand_variants(t))
            .collect();
        DictionaryTagger {
            entity: dictionary.entity,
            automaton: AhoCorasick::new(&patterns, true),
            cost_reference_terms: dictionary.len(),
        }
    }

    pub fn entity(&self) -> EntityType {
        self.entity
    }

    /// Overrides the term count the cost model is evaluated at (see
    /// `cost_reference_terms`).
    pub fn with_cost_reference(mut self, terms: usize) -> DictionaryTagger {
        self.cost_reference_terms = terms;
        self
    }

    /// Paper-scale cost model. Calibrated so that a 700 K-term gene
    /// dictionary yields ≈ 20 minutes startup and ≈ 20 GB per worker, and
    /// the ~50–60 K-term drug/disease dictionaries land in the 6–8 GB
    /// range — the figures of Section 4.2.
    pub fn cost_model(&self) -> TaggerCostModel {
        let n = self.cost_reference_terms as f64;
        TaggerCostModel {
            startup_secs: 10.0 + n * (1200.0 - 10.0) / 700_000.0,
            memory_bytes: (6.0e9 + n * 14.0e9 / 700_000.0) as u64,
            us_per_char: 0.05,
        }
    }

    /// Real (in-process) automaton memory, for diagnostics.
    pub fn automaton_memory(&self) -> usize {
        self.automaton.memory_estimate()
    }

    /// Tags `text`, returning word-boundary-respecting, longest-match
    /// mentions. Overlapping shorter matches inside a longer accepted match
    /// are suppressed (leftmost-longest per position).
    pub fn tag(&self, text: &str) -> Vec<Mention> {
        let bytes = text.as_bytes();
        let is_word = |i: usize| -> bool {
            if i >= bytes.len() {
                return false;
            }
            // ASCII fast path; multi-byte chars are all "word" for boundary purposes
            let b = bytes[i];
            if b < 128 {
                (b as char).is_alphanumeric()
            } else {
                true
            }
        };
        let mut raw: Vec<(usize, usize)> = self
            .automaton
            .find_all(text)
            .into_iter()
            .filter(|m| {
                let before_ok = m.start == 0 || !is_word(prev_char_start(text, m.start));
                let after_ok = m.end >= text.len() || !is_word(m.end);
                before_ok && after_ok
            })
            .map(|m| (m.start, m.end))
            .collect();
        // leftmost-longest: sort by start asc, end desc; drop spans contained
        // in an already-accepted span.
        raw.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut out: Vec<Mention> = Vec::new();
        let mut covered_until = 0usize;
        for (s, e) in raw {
            if s < covered_until {
                continue;
            }
            out.push(Mention::new(s, e, &text[s..e], self.entity, Method::Dictionary));
            covered_until = e;
        }
        out
    }
}

fn prev_char_start(text: &str, pos: usize) -> usize {
    let mut p = pos - 1;
    while p > 0 && !text.is_char_boundary(p) {
        p -= 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gene_tagger(terms: &[&str]) -> DictionaryTagger {
        DictionaryTagger::new(&Dictionary::new(EntityType::Gene, terms))
    }

    #[test]
    fn dictionary_dedups_and_drops_short() {
        let d = Dictionary::new(EntityType::Drug, ["aspirin", "Aspirin", "x", "ibuprofen"]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn tags_simple_mention() {
        let t = gene_tagger(&["BRCA1", "TP53"]);
        let ms = t.tag("Mutations in BRCA1 and TP53 were found.");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "brca1");
        assert_eq!(ms[1].name, "tp53");
        assert_eq!(ms[0].method, Method::Dictionary);
    }

    #[test]
    fn respects_word_boundaries() {
        let t = gene_tagger(&["RAS"]);
        let ms = t.tag("KRAS is not RAS per se, nor eRASer.");
        assert_eq!(ms.len(), 1);
        assert_eq!(&"KRAS is not RAS per se, nor eRASer."[ms[0].start..ms[0].end], "RAS");
    }

    #[test]
    fn variant_expansion_matches_hyphen_and_space_forms() {
        let t = gene_tagger(&["GAD-67"]);
        assert_eq!(t.tag("GAD-67 level").len(), 1);
        assert_eq!(t.tag("GAD 67 level").len(), 1);
        assert_eq!(t.tag("GAD67 level").len(), 1);
    }

    #[test]
    fn letter_digit_boundary_variants() {
        let t = gene_tagger(&["BRCA1"]);
        assert_eq!(t.tag("the BRCA-1 gene").len(), 1);
        assert_eq!(t.tag("the BRCA 1 gene").len(), 1);
    }

    #[test]
    fn plural_variant() {
        let t = DictionaryTagger::new(&Dictionary::new(EntityType::Disease, ["thymoma"]));
        assert_eq!(t.tag("multiple thymomas were observed").len(), 1);
    }

    #[test]
    fn case_insensitive_matching() {
        let t = DictionaryTagger::new(&Dictionary::new(EntityType::Drug, ["Aspirin"]));
        assert_eq!(t.tag("aspirin or ASPIRIN").len(), 2);
    }

    #[test]
    fn longest_match_wins() {
        let t = DictionaryTagger::new(&Dictionary::new(
            EntityType::Disease,
            ["breast cancer", "cancer"],
        ));
        let ms = t.tag("breast cancer patients");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "breast cancer");
    }

    #[test]
    fn cost_model_scales_with_dictionary_size() {
        let terms: Vec<String> = (0..1000).map(|i| format!("GENE{i}")).collect();
        let small = DictionaryTagger::new(&Dictionary::new(
            EntityType::Gene,
            terms.iter().take(10).map(String::as_str),
        ));
        let large = DictionaryTagger::new(&Dictionary::new(
            EntityType::Gene,
            terms.iter().map(String::as_str),
        ));
        assert!(large.cost_model().startup_secs > small.cost_model().startup_secs);
        assert!(large.cost_model().memory_bytes > small.cost_model().memory_bytes);
        // paper calibration: cost reference of 700k terms => ~20 min, ~20 GB
        let paper_scale = small.clone().with_cost_reference(700_000);
        assert!((paper_scale.cost_model().startup_secs - 1200.0).abs() < 1.0);
        assert!((paper_scale.cost_model().memory_bytes as f64 - 20.0e9).abs() < 0.1e9);
    }

    #[test]
    fn empty_text_and_empty_dictionary() {
        let t = gene_tagger(&[]);
        assert!(t.tag("BRCA1").is_empty());
        let t = gene_tagger(&["BRCA1"]);
        assert!(t.tag("").is_empty());
    }

    #[test]
    fn mentions_at_text_edges() {
        let t = gene_tagger(&["BRCA1"]);
        let ms = t.tag("BRCA1");
        assert_eq!(ms.len(), 1);
        assert_eq!((ms[0].start, ms[0].end), (0, 5));
    }
}
