//! Three-letter acronym (TLA) handling.
//!
//! The paper's most striking quality failure: the ML-based gene tagger,
//! trained on Medline abstracts, tags three-letter acronyms as genes
//! "almost always", which "leads to catastrophic performance" on web text —
//! 5.5 million distinct "gene names" in the relevant crawl, versus roughly
//! 900 K real gene names in public databases. The authors' mitigation was a
//! post-hoc filter: "we filtered all TLAs from the list of ML-tagged gene
//! names prior to further analysis, reducing ... from 5.5 million to 2.3
//! million". This module provides that detector and filter.

/// Is this (surface or normalized) name a three-letter acronym?
///
/// A TLA here is exactly three alphanumeric characters with at least two
/// letters — `FBI`, `LOL`, `AK4` qualify; `3.5`, `a b`, `BRCA1` do not.
pub fn is_tla(name: &str) -> bool {
    let chars: Vec<char> = name.chars().collect();
    chars.len() == 3
        && chars.iter().all(|c| c.is_alphanumeric())
        && chars.iter().filter(|c| c.is_alphabetic()).count() >= 2
}

/// Removes TLA names from an iterator of distinct names, returning the
/// survivors — the paper's gene-name cleanup step.
pub fn filter_tla_names<I, S>(names: I) -> Vec<String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    names
        .into_iter()
        .map(Into::into)
        .filter(|n| !is_tla(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_classic_tlas() {
        assert!(is_tla("FBI"));
        assert!(is_tla("fbi"));
        assert!(is_tla("AK4"));
        assert!(is_tla("ak4"));
    }

    #[test]
    fn rejects_non_tlas() {
        assert!(!is_tla("BRCA1")); // 5 chars
        assert!(!is_tla("ab")); // 2 chars
        assert!(!is_tla("3.5")); // punctuation
        assert!(!is_tla("a b")); // space
        assert!(!is_tla("123")); // fewer than 2 letters
        assert!(!is_tla("1a2")); // fewer than 2 letters
        assert!(!is_tla(""));
    }

    #[test]
    fn filter_keeps_only_non_tlas() {
        let names = ["tnf", "brca1", "egfr", "ras"];
        let kept = filter_tla_names(names);
        assert_eq!(kept, vec!["brca1".to_string(), "egfr".to_string()]);
    }

    #[test]
    fn filter_reduces_large_sets_substantially() {
        // shape check mirroring the 5.5M -> 2.3M reduction: a set rich in
        // TLAs shrinks a lot, a clean set does not.
        let mut names: Vec<String> = Vec::new();
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                names.push(format!("{}{}x", a as char, b as char)); // TLAs
                names.push(format!("gene{}{}", a as char, b as char)); // real-ish
            }
        }
        let kept = filter_tla_names(names.clone());
        assert_eq!(kept.len(), names.len() / 2);
    }
}
