//! Shared entity model: types, extraction methods, and mention spans.

use serde::Serialize;
use std::fmt;

/// The three biomedical entity classes the study extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum EntityType {
    Gene,
    Drug,
    Disease,
}

impl EntityType {
    pub fn all() -> [EntityType; 3] {
        [EntityType::Gene, EntityType::Drug, EntityType::Disease]
    }

    pub fn name(self) -> &'static str {
        match self {
            EntityType::Gene => "gene",
            EntityType::Drug => "drug",
            EntityType::Disease => "disease",
        }
    }
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which extraction family produced an annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Method {
    /// Automaton-based fuzzy dictionary matching.
    Dictionary,
    /// CRF-based machine-learned tagging.
    Ml,
}

impl Method {
    pub fn all() -> [Method; 2] {
        [Method::Dictionary, Method::Ml]
    }

    pub fn name(self) -> &'static str {
        match self {
            Method::Dictionary => "Dict.",
            Method::Ml => "ML",
        }
    }
}

/// One entity mention: a byte span in the source text with its normalized
/// surface form, entity type, and producing method — the unit the paper's
/// result set stores "together with information on document ID, sentence
/// ID, and start/end positions".
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Mention {
    pub start: usize,
    pub end: usize,
    /// Normalized (lower-cased, whitespace-collapsed) surface form, used as
    /// the "distinct entity name" key in Table 4 / Fig. 8.
    pub name: String,
    pub entity: EntityType,
    pub method: Method,
}

impl Mention {
    pub fn new(
        start: usize,
        end: usize,
        surface: &str,
        entity: EntityType,
        method: Method,
    ) -> Mention {
        Mention {
            start,
            end,
            name: normalize_name(surface),
            entity,
            method,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Normalizes a surface form into a distinct-name key: lower-case,
/// single-space separated.
pub fn normalize_name(surface: &str) -> String {
    surface
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_and_case() {
        assert_eq!(normalize_name("  Breast\n Cancer "), "breast cancer");
        assert_eq!(normalize_name("BRCA1"), "brca1");
    }

    #[test]
    fn mention_stores_span_and_normalized_name() {
        let m = Mention::new(4, 9, "BRCA1", EntityType::Gene, Method::Dictionary);
        assert_eq!(m.len(), 5);
        assert_eq!(m.name, "brca1");
        assert!(!m.is_empty());
    }

    #[test]
    fn entity_names() {
        assert_eq!(EntityType::Gene.to_string(), "gene");
        assert_eq!(EntityType::all().len(), 3);
        assert_eq!(Method::all().len(), 2);
    }
}
