//! Aho-Corasick multi-pattern string matching, built from scratch.
//!
//! This is the core of the dictionary-based entity taggers: "an
//! automaton-based matching algorithm that quickly retrieves mentions of
//! entities even for large dictionaries" (the paper cites LINNAEUS). The
//! automaton is constructed over lower-cased characters when
//! case-insensitive matching is requested, uses BFS-computed failure links,
//! and reports all (possibly overlapping) pattern occurrences in a single
//! left-to-right scan — `O(text + matches)` after construction.

use std::collections::{HashMap, VecDeque};

/// A match: pattern index plus byte span in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcMatch {
    pub pattern: usize,
    pub start: usize,
    pub end: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    /// Child transitions (by possibly-folded char).
    next: HashMap<char, u32>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this node (dictionary links resolved at build).
    outputs: Vec<u32>,
    /// Depth in chars (for match-start computation we instead track pattern
    /// lengths; depth kept for diagnostics).
    depth: u32,
}

/// The automaton.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    /// Char length of each pattern (to compute match starts).
    pattern_char_lens: Vec<u32>,
    case_insensitive: bool,
    pattern_count: usize,
    /// Bytes at which a scan sitting in the root state must stop skipping:
    /// ASCII bytes that can begin a pattern (including upper-case variants
    /// under folding) plus every byte ≥ 0x80. Non-ASCII text always takes
    /// the per-char path because a non-ASCII char can *fold to* an ASCII
    /// pattern char (Kelvin sign → 'k'), so only ASCII bytes outside the
    /// set are provably unable to start a match.
    start_table: Box<[bool; 256]>,
    /// Longest pattern length in chars — the ring-buffer depth needed to
    /// recover match starts.
    max_pattern_chars: u32,
}

impl AhoCorasick {
    /// Builds the automaton over `patterns`. Empty patterns are ignored.
    pub fn new<I, S>(patterns: I, case_insensitive: bool) -> AhoCorasick
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut nodes = vec![Node::default()];
        let mut pattern_char_lens = Vec::new();
        let mut count = 0usize;

        for pat in patterns {
            let pat = pat.as_ref();
            let id = pattern_char_lens.len() as u32;
            let mut chars = 0u32;
            let mut cur = 0u32;
            for c in pat.chars() {
                let c = fold(c, case_insensitive);
                chars += 1;
                let nodes_len = nodes.len() as u32;
                let child = *nodes[cur as usize].next.entry(c).or_insert(nodes_len);
                if child == nodes_len {
                    let depth = nodes[cur as usize].depth + 1;
                    nodes.push(Node {
                        depth,
                        ..Node::default()
                    });
                }
                cur = child;
            }
            if chars == 0 {
                continue; // skip empty pattern but keep ids aligned
            }
            nodes[cur as usize].outputs.push(id);
            pattern_char_lens.push(chars);
            count += 1;
        }

        // BFS to set failure links and merge outputs.
        let mut queue = VecDeque::new();
        let root_children: Vec<u32> = nodes[0].next.values().copied().collect();
        for child in root_children {
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(u) = queue.pop_front() {
            let transitions: Vec<(char, u32)> =
                nodes[u as usize].next.iter().map(|(&c, &v)| (c, v)).collect();
            for (c, v) in transitions {
                // find fail target for v
                let mut f = nodes[u as usize].fail;
                loop {
                    if let Some(&t) = nodes[f as usize].next.get(&c) {
                        if t != v {
                            nodes[v as usize].fail = t;
                            break;
                        }
                    }
                    if f == 0 {
                        nodes[v as usize].fail = 0;
                        break;
                    }
                    f = nodes[f as usize].fail;
                }
                let fail_of_v = nodes[v as usize].fail;
                let merged: Vec<u32> = nodes[fail_of_v as usize].outputs.clone();
                nodes[v as usize].outputs.extend(merged);
                queue.push_back(v);
            }
        }

        let mut start_table = Box::new([false; 256]);
        for b in 0x80..=0xFFusize {
            start_table[b] = true;
        }
        for &c in nodes[0].next.keys() {
            if c.is_ascii() {
                let b = c as u8;
                start_table[b as usize] = true;
                if case_insensitive {
                    // Children are stored folded (lower-case); the raw
                    // haystack byte may be the upper-case form.
                    start_table[b.to_ascii_uppercase() as usize] = true;
                }
            }
        }
        let max_pattern_chars = pattern_char_lens.iter().copied().max().unwrap_or(0);

        AhoCorasick {
            nodes,
            pattern_char_lens,
            case_insensitive,
            pattern_count: count,
            start_table,
            max_pattern_chars,
        }
    }

    /// Number of non-empty patterns in the automaton.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Number of automaton states — the basis of the taggers' memory model.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rough memory footprint estimate in bytes: per-state fixed overhead
    /// plus per-transition hash-map cost. (The *simulated* footprint used by
    /// the cluster scheduler is a separate, paper-calibrated figure; this is
    /// the real in-process cost.)
    pub fn memory_estimate(&self) -> usize {
        let transitions: usize = self.nodes.iter().map(|n| n.next.len()).sum();
        self.nodes.len() * 64 + transitions * 48
    }

    /// Finds all pattern occurrences in `text`, including overlapping ones.
    ///
    /// While the automaton sits in the root state, the scan skips ahead
    /// with a byte-table prefilter (ASCII bytes that cannot begin any
    /// pattern are provably dead — see `start_table`). Match starts are
    /// recovered from a ring buffer of the last `max_pattern_chars` char
    /// boundaries instead of materializing a boundary index for the whole
    /// haystack: every char of a match is consumed with a non-root state,
    /// so a match's chars are always the most recently processed ones.
    pub fn find_all(&self, text: &str) -> Vec<AcMatch> {
        let mut out = Vec::new();
        if self.pattern_count == 0 {
            return out;
        }
        let bytes = text.as_bytes();
        let n = bytes.len();
        let depth = self.max_pattern_chars as usize;
        let mut ring = vec![0usize; depth];
        let mut pos = 0usize; // processed-char counter
        let mut state = 0u32;
        let mut i = 0usize;
        // lint:hot_loop(begin): Aho-Corasick prefiltered scan loop
        while i < n {
            if state == 0 {
                // Skips only whole ASCII chars: every byte ≥ 0x80 is in
                // the table, so a multi-byte char's lead byte stops the
                // scan and `i` stays on a char boundary.
                i = websift_text::swar::find_in_table(bytes, i, &self.start_table);
                if i >= n {
                    break;
                }
            }
            let c = text[i..].chars().next().expect("i is on a char boundary");
            let clen = c.len_utf8();
            state = self.step(state, fold(c, self.case_insensitive));
            ring[pos % depth] = i;
            let node = &self.nodes[state as usize];
            for &pid in &node.outputs {
                let plen = self.pattern_char_lens[pid as usize] as usize;
                out.push(AcMatch {
                    pattern: pid as usize,
                    start: ring[(pos + 1 - plen) % depth],
                    end: i + clen,
                });
            }
            pos += 1;
            i += clen;
        }
        // lint:hot_loop(end)
        out
    }

    #[inline]
    fn step(&self, mut state: u32, c: char) -> u32 {
        loop {
            if let Some(&next) = self.nodes[state as usize].next.get(&c) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }
}

#[inline]
fn fold(c: char, ci: bool) -> char {
    if !ci {
        c
    } else if c.is_ascii() {
        // Same result as `to_lowercase` for ASCII, without the case-table
        // iterator machinery on the hot scan path.
        c.to_ascii_lowercase()
    } else {
        c.to_lowercase().next().unwrap_or(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_pattern() {
        let ac = AhoCorasick::new(["cancer"], false);
        let ms = ac.find_all("breast cancer and lung cancer");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].start, 7);
        assert_eq!(ms[0].end, 13);
    }

    #[test]
    fn finds_overlapping_patterns() {
        let ac = AhoCorasick::new(["he", "she", "hers", "his"], false);
        let ms = ac.find_all("ushers");
        // "she" at 1..4, "he" at 2..4, "hers" at 2..6
        let spans: Vec<(usize, usize)> = ms.iter().map(|m| (m.start, m.end)).collect();
        assert!(spans.contains(&(1, 4)));
        assert!(spans.contains(&(2, 4)));
        assert!(spans.contains(&(2, 6)));
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn substring_patterns_both_reported() {
        let ac = AhoCorasick::new(["brca", "brca1"], false);
        let ms = ac.find_all("brca1");
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn case_insensitive_matching() {
        let ac = AhoCorasick::new(["aspirin"], true);
        let ms = ac.find_all("Aspirin ASPIRIN aspirin");
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn case_sensitive_by_default() {
        let ac = AhoCorasick::new(["TP53"], false);
        assert_eq!(ac.find_all("tp53").len(), 0);
        assert_eq!(ac.find_all("TP53").len(), 1);
    }

    #[test]
    fn no_patterns_no_matches() {
        let ac = AhoCorasick::new(Vec::<String>::new(), false);
        assert!(ac.find_all("anything").is_empty());
        assert_eq!(ac.pattern_count(), 0);
    }

    #[test]
    fn empty_patterns_ignored() {
        let ac = AhoCorasick::new(["", "x"], false);
        assert_eq!(ac.pattern_count(), 1);
        let ms = ac.find_all("xx");
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn unicode_patterns_and_text() {
        let ac = AhoCorasick::new(["naïve"], true);
        let ms = ac.find_all("a Naïve approach");
        assert_eq!(ms.len(), 1);
        let m = ms[0];
        assert_eq!(&"a Naïve approach"[m.start..m.end], "Naïve");
    }

    #[test]
    fn memory_estimate_grows_with_patterns() {
        let small = AhoCorasick::new(["abc"], false);
        let patterns: Vec<String> = (0..1000).map(|i| format!("term{i:04}")).collect();
        let large = AhoCorasick::new(&patterns, false);
        assert!(large.memory_estimate() > small.memory_estimate() * 10);
        assert!(large.state_count() > 1000);
    }

    /// The pre-prefilter scan, kept verbatim as the semantic reference:
    /// a plain char loop over a full boundary index. `find_all` must
    /// report the identical match list on every input.
    fn reference_find_all(ac: &AhoCorasick, text: &str) -> Vec<AcMatch> {
        let mut out = Vec::new();
        let boundaries: Vec<usize> = text
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(text.len()))
            .collect();
        let mut state = 0u32;
        for (ci, c) in text.chars().enumerate() {
            let c = fold(c, ac.case_insensitive);
            state = ac.step(state, c);
            for &pid in &ac.nodes[state as usize].outputs {
                let plen = ac.pattern_char_lens[pid as usize] as usize;
                out.push(AcMatch {
                    pattern: pid as usize,
                    start: boundaries[ci + 1 - plen],
                    end: boundaries[ci + 1],
                });
            }
        }
        out
    }

    #[test]
    fn prefiltered_scan_agrees_with_reference() {
        // Deterministic LCG; the palette mixes ASCII pattern bytes,
        // upper-case variants, chars that case-fold to ASCII (Kelvin sign
        // → 'k', 'İ' → 'i̇'), multi-byte non-pattern chars, and
        // whitespace. Dictionaries include overlapping and empty entries.
        let mut state = 0x0d15_ea5e_dead_beefu64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let palette: Vec<char> = "kheris KHERIS\u{212A}\u{130}ü中 .()".chars().collect();
        let dicts: Vec<Vec<&str>> = vec![
            vec!["he", "she", "hers", "his"],
            vec!["kelvin", "k", ""],
            vec!["\u{212A}elvin", "İstanbul"],
            vec!["er", "her", "here", "e"],
        ];
        for ci in [false, true] {
            for dict in &dicts {
                let ac = AhoCorasick::new(dict, ci);
                for _ in 0..150 {
                    let len = next(40);
                    let text: String = (0..len).map(|_| palette[next(palette.len())]).collect();
                    assert_eq!(
                        ac.find_all(&text),
                        reference_find_all(&ac, &text),
                        "prefiltered scan diverges on {text:?} dict {dict:?} ci={ci}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefilter_skips_do_not_drop_folding_matches() {
        // A Kelvin sign is a non-ASCII byte that folds to 'k'; skipping
        // high bytes would lose this match.
        let ac = AhoCorasick::new(["kelvin"], true);
        let ms = ac.find_all("the \u{212A}elvin scale");
        assert_eq!(ms.len(), 1);
        assert_eq!(&"the \u{212A}elvin scale"[ms[0].start..ms[0].end], "\u{212A}elvin");
        // Case-sensitive: no fold, no match.
        assert!(AhoCorasick::new(["kelvin"], false).find_all("\u{212A}elvin").is_empty());
    }

    #[test]
    fn long_haystack_scan() {
        let ac = AhoCorasick::new(["needle"], false);
        let hay = format!("{}needle{}", "x".repeat(10_000), "y".repeat(10_000));
        let ms = ac.find_all(&hay);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].start, 10_000);
    }
}
