//! Named-entity recognition for the biomedical domain.
//!
//! The paper runs **two** extraction methods per entity type (gene, drug,
//! disease) over every corpus:
//!
//! 1. "A classical fuzzy dictionary-matching tool" — an automaton-based
//!    matcher (LINNAEUS-style) where "each dictionary term [is transformed]
//!    into a regular expression" to absorb surface variation. Dictionary
//!    matching is essentially linear in text length but the automata are
//!    memory-hungry (6–20 GB per worker at paper scale) and slow to start
//!    (~20 minutes for the 700 K-entry gene dictionary).
//! 2. "ML-based entity taggers using Conditional Random Fields" (BANNER,
//!    ChemSpot, a Mallet-based disease tagger) — much better recall, but
//!    orders of magnitude slower, and prone to catastrophic false-positive
//!    rates on web text (three-letter acronyms tagged as genes).
//!
//! This crate implements both families from scratch:
//!
//! - [`ahocorasick`] — the multi-pattern automaton;
//! - [`dictionary`] — term lists, variant expansion, and the
//!   [`dictionary::DictionaryTagger`] with its startup/memory cost model;
//! - [`crf`] — a linear-chain CRF (forward-backward training, Viterbi
//!   decoding, feature hashing) and the [`crf::CrfTagger`] with optional
//!   long-range context features that reproduce the quadratic runtime of
//!   Fig. 3b;
//! - [`tla`] — three-letter-acronym detection and the post-hoc filter the
//!   paper applies to the ML gene annotations (5.5 M → 2.3 M names);
//! - [`entity`] — the shared `EntityType` / `Mention` model.

pub mod ahocorasick;
pub mod crf;
pub mod dictionary;
pub mod entity;
pub mod tla;

pub use ahocorasick::AhoCorasick;
pub use crf::{CrfTagger, LinearChainCrf};
pub use dictionary::{Dictionary, DictionaryTagger};
pub use entity::{EntityType, Mention, Method};
pub use tla::{filter_tla_names, is_tla};
