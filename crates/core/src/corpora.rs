//! Assembling the four study corpora and converting them to flow records.

use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use websift_corpus::{CorpusKind, Document, Generator, Lexicon};
use websift_crawler::CrawlReport;
use websift_flow::{Record, Value};

/// Document counts per corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CorpusScale {
    pub relevant: usize,
    pub irrelevant: usize,
    pub medline: usize,
    pub pmc: usize,
}

impl CorpusScale {
    /// The paper's Table-3 counts.
    pub fn paper() -> CorpusScale {
        CorpusScale {
            relevant: 4_233_523,
            irrelevant: 17_704_365,
            medline: 21_686_397,
            pmc: 250_440,
        }
    }

    /// Paper counts divided by `factor` (at least 1 document each).
    pub fn paper_scaled(factor: usize) -> CorpusScale {
        let p = CorpusScale::paper();
        CorpusScale {
            relevant: (p.relevant / factor).max(1),
            irrelevant: (p.irrelevant / factor).max(1),
            medline: (p.medline / factor).max(1),
            pmc: (p.pmc / factor).max(1),
        }
    }

    /// A small scale for tests.
    pub fn tiny() -> CorpusScale {
        CorpusScale {
            relevant: 12,
            irrelevant: 20,
            medline: 25,
            pmc: 4,
        }
    }

    pub fn for_kind(&self, kind: CorpusKind) -> usize {
        match kind {
            CorpusKind::RelevantWeb => self.relevant,
            CorpusKind::IrrelevantWeb => self.irrelevant,
            CorpusKind::Medline => self.medline,
            CorpusKind::Pmc => self.pmc,
        }
    }
}

/// The four corpora.
pub struct Corpora {
    pub by_kind: HashMap<CorpusKind, Vec<Document>>,
}

impl Corpora {
    /// Generates all four corpora over a shared lexicon.
    pub fn generate(scale: CorpusScale, lexicon: Arc<Lexicon>, seed: u64) -> Corpora {
        let mut by_kind = HashMap::new();
        for kind in CorpusKind::all() {
            let generator = Generator::with_lexicon(kind, seed ^ kind as u64, lexicon.clone());
            by_kind.insert(kind, generator.documents(scale.for_kind(kind)));
        }
        Corpora { by_kind }
    }

    pub fn get(&self, kind: CorpusKind) -> &[Document] {
        &self.by_kind[&kind]
    }

    /// Total documents.
    pub fn len(&self) -> usize {
        self.by_kind.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replaces the two web corpora with the output of an actual focused
    /// crawl (the end-to-end path: crawl → corpora → analysis).
    pub fn adopt_crawl(&mut self, report: &CrawlReport) {
        let convert = |pages: &[websift_crawler::CrawledPage], kind: CorpusKind| -> Vec<Document> {
            pages
                .iter()
                .enumerate()
                .map(|(i, p)| Document {
                    id: i as u64,
                    kind,
                    url: Some(p.url.to_string()),
                    title: String::new(),
                    body: p.net_text.clone(),
                    html: None,
                    gold: Default::default(),
                })
                .collect()
        };
        self.by_kind.insert(
            CorpusKind::RelevantWeb,
            convert(&report.relevant, CorpusKind::RelevantWeb),
        );
        self.by_kind.insert(
            CorpusKind::IrrelevantWeb,
            convert(&report.irrelevant, CorpusKind::IrrelevantWeb),
        );
    }
}

/// Converts documents into flow records. Web documents carry their raw
/// HTML in `text` (the pipeline's web stages clean it); Medline/PMC carry
/// plain text, matching "running the same pipeline (without the
/// web-related tasks)".
pub fn documents_to_records(docs: &[Document]) -> Vec<Record> {
    docs.iter()
        .map(|d| {
            let mut r = Record::new();
            r.set("id", d.id as i64);
            r.set("corpus", d.kind.name());
            r.set("text", d.raw_text());
            if let Some(url) = &d.url {
                r.set("url", url.as_str());
            }
            r
        })
        .collect()
}

/// Extracts the corpus name a record belongs to.
pub fn record_corpus(r: &Record) -> Option<&str> {
    r.get("corpus").and_then(Value::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_corpus::LexiconScale;

    fn corpora() -> Corpora {
        Corpora::generate(
            CorpusScale::tiny(),
            Arc::new(Lexicon::generate(LexiconScale::tiny())),
            5,
        )
    }

    #[test]
    fn generates_all_four() {
        let c = corpora();
        assert_eq!(c.get(CorpusKind::Medline).len(), 25);
        assert_eq!(c.get(CorpusKind::Pmc).len(), 4);
        assert_eq!(c.len(), 12 + 20 + 25 + 4);
    }

    #[test]
    fn paper_scale_counts() {
        let s = CorpusScale::paper();
        assert_eq!(s.medline, 21_686_397);
        let scaled = CorpusScale::paper_scaled(1000);
        assert_eq!(scaled.pmc, 250);
        assert!(CorpusScale::paper_scaled(usize::MAX).relevant >= 1);
    }

    #[test]
    fn records_carry_corpus_and_text() {
        let c = corpora();
        let recs = documents_to_records(c.get(CorpusKind::RelevantWeb));
        assert_eq!(recs.len(), 12);
        assert_eq!(record_corpus(&recs[0]), Some("Relevant crawl"));
        assert!(recs[0].text().unwrap().contains('<'), "web records carry HTML");
        let recs = documents_to_records(c.get(CorpusKind::Medline));
        assert!(!recs[0].text().unwrap().contains('<'));
    }

    #[test]
    fn adopt_crawl_replaces_web_corpora() {
        use websift_crawler::{CrawlReport, CrawledPage};
        use websift_web::Url;
        let mut c = corpora();
        let mut report = CrawlReport::default();
        report.relevant.push(CrawledPage {
            url: Url::new("x.example", "/1"),
            net_text: "net text".into(),
            raw_bytes: 100,
            classified_relevant: true,
            log_odds: 1.0,
            gold_relevant: Some(true),
        });
        c.adopt_crawl(&report);
        assert_eq!(c.get(CorpusKind::RelevantWeb).len(), 1);
        assert!(c.get(CorpusKind::IrrelevantWeb).is_empty());
        assert_eq!(c.get(CorpusKind::RelevantWeb)[0].body, "net text");
    }
}
