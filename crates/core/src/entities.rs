//! Biomedical-entity analysis: distinct-name inventories (Table 4),
//! per-document incidence (Fig. 7), TLA filtering, annotation overlap
//! (Fig. 8), and Jensen-Shannon divergences (§4.3.2).

use serde::Serialize;
use std::collections::{HashMap, HashSet};
use websift_flow::{Record, Value};
use websift_ner::{is_tla, EntityType, Method};
use websift_stats::jensen_shannon;

/// One extracted annotation pulled back out of a flow record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExtractedEntity {
    pub name: String,
    pub entity: EntityType,
    pub method: Method,
}

/// Pulls all entity annotations out of a record.
pub fn entities_of(r: &Record) -> Vec<ExtractedEntity> {
    let Some(arr) = r.get("entities").and_then(Value::as_array) else {
        return Vec::new();
    };
    arr.iter()
        .filter_map(|v| {
            let o = v.as_object()?;
            let name = o.get("name")?.as_str()?.to_string();
            let entity = match o.get("type")?.as_str()? {
                "gene" => EntityType::Gene,
                "drug" => EntityType::Drug,
                "disease" => EntityType::Disease,
                _ => return None,
            };
            let method = match o.get("method")?.as_str()? {
                "dict" => Method::Dictionary,
                _ => Method::Ml,
            };
            Some(ExtractedEntity { name, entity, method })
        })
        .collect()
}

/// Entity statistics of one corpus.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CorpusEntities {
    pub documents: usize,
    pub sentences: usize,
    /// distinct names per (type, method)
    pub distinct: HashMap<String, usize>,
    /// total mentions per (type, method)
    pub mentions: HashMap<String, u64>,
    /// name -> frequency, per entity type (dictionary method, the Fig.-8
    /// basis), used for overlap/JSD
    #[serde(skip)]
    pub dict_name_counts: HashMap<EntityType, HashMap<String, u64>>,
    #[serde(skip)]
    pub ml_name_counts: HashMap<EntityType, HashMap<String, u64>>,
    /// mentions per document samples, per entity type (both methods)
    #[serde(skip)]
    pub per_doc_samples: HashMap<EntityType, Vec<f64>>,
}

fn key(entity: EntityType, method: Method) -> String {
    format!("{}/{}", entity.name(), method.name())
}

/// Aggregates entity annotations over a corpus's records.
pub fn aggregate_entities(records: &[Record]) -> CorpusEntities {
    let mut out = CorpusEntities {
        documents: records.len(),
        ..Default::default()
    };
    let mut distinct_sets: HashMap<String, HashSet<String>> = HashMap::new();
    for r in records {
        out.sentences += r
            .get("sentences")
            .and_then(Value::as_array)
            .map(<[Value]>::len)
            .unwrap_or(0);
        let entities = entities_of(r);
        let mut per_doc: HashMap<EntityType, usize> = HashMap::new();
        for e in entities {
            let k = key(e.entity, e.method);
            *out.mentions.entry(k.clone()).or_insert(0) += 1;
            distinct_sets.entry(k).or_default().insert(e.name.clone());
            *per_doc.entry(e.entity).or_insert(0) += 1;
            let counts = match e.method {
                Method::Dictionary => out.dict_name_counts.entry(e.entity).or_default(),
                Method::Ml => out.ml_name_counts.entry(e.entity).or_default(),
            };
            *counts.entry(e.name).or_insert(0) += 1;
        }
        for entity in EntityType::all() {
            out.per_doc_samples
                .entry(entity)
                .or_default()
                .push(*per_doc.get(&entity).unwrap_or(&0) as f64);
        }
    }
    out.distinct = distinct_sets.into_iter().map(|(k, s)| (k, s.len())).collect();
    out
}

impl CorpusEntities {
    /// Distinct names for (type, method) — a Table-4 cell.
    pub fn distinct_names(&self, entity: EntityType, method: Method) -> usize {
        *self.distinct.get(&key(entity, method)).unwrap_or(&0)
    }

    /// Mean mentions per 1000 sentences for an entity type (both methods
    /// combined) — the Fig.-7 normalization.
    pub fn mentions_per_1000_sentences(&self, entity: EntityType) -> f64 {
        if self.sentences == 0 {
            return 0.0;
        }
        let total: u64 = Method::all()
            .iter()
            .map(|&m| *self.mentions.get(&key(entity, m)).unwrap_or(&0))
            .sum();
        total as f64 * 1000.0 / self.sentences as f64
    }

    /// Applies the paper's TLA cleanup to the ML name inventory of one
    /// entity type, returning (before, after) distinct counts.
    pub fn tla_filter_ml(&mut self, entity: EntityType) -> (usize, usize) {
        let counts = self.ml_name_counts.entry(entity).or_default();
        let before = counts.len();
        counts.retain(|name, _| !is_tla(name));
        let after = counts.len();
        self.distinct.insert(key(entity, Method::Ml), after);
        (before, after)
    }
}

/// The 15-region overlap partition of four name sets (Fig. 8). Region
/// membership is a 4-bit mask over corpora in the order given; index 0
/// (empty mask) is unused.
#[derive(Debug, Clone, Serialize)]
pub struct OverlapPartition {
    pub corpus_names: Vec<String>,
    /// `regions[mask]` = number of distinct names in exactly that corpus
    /// combination.
    pub regions: [usize; 16],
    pub union_size: usize,
}

impl OverlapPartition {
    /// Percentage of the union in region `mask`.
    pub fn percent(&self, mask: usize) -> f64 {
        if self.union_size == 0 {
            0.0
        } else {
            self.regions[mask] as f64 * 100.0 / self.union_size as f64
        }
    }

    /// Names shared between two corpora as a fraction of their union
    /// (Jaccard — the "overlap ... approximately 15 %" style numbers).
    pub fn pairwise_overlap(&self, a: usize, b: usize) -> f64 {
        let mut shared = 0usize;
        let mut in_either = 0usize;
        for (mask, &n) in self.regions.iter().enumerate() {
            let in_a = mask & (1 << a) != 0;
            let in_b = mask & (1 << b) != 0;
            if in_a || in_b {
                in_either += n;
            }
            if in_a && in_b {
                shared += n;
            }
        }
        if in_either == 0 {
            0.0
        } else {
            shared as f64 / in_either as f64
        }
    }
}

/// Computes the overlap partition of up to 4 name sets.
pub fn overlap_partition(sets: &[(&str, &HashSet<String>)]) -> OverlapPartition {
    assert!(sets.len() <= 4 && !sets.is_empty());
    let mut membership: HashMap<&String, usize> = HashMap::new();
    for (i, (_, set)) in sets.iter().enumerate() {
        for name in set.iter() {
            *membership.entry(name).or_insert(0) |= 1 << i;
        }
    }
    let mut regions = [0usize; 16];
    for mask in membership.values() {
        regions[*mask] += 1;
    }
    OverlapPartition {
        corpus_names: sets.iter().map(|(n, _)| n.to_string()).collect(),
        regions,
        union_size: membership.len(),
    }
}

/// JSD between two corpora's name-frequency distributions for one entity
/// type and method.
pub fn name_divergence(a: &HashMap<String, u64>, b: &HashMap<String, u64>) -> f64 {
    jensen_shannon(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_flow::span_annotation;

    fn record_with(names: &[(&str, &str, &str)]) -> Record {
        let mut r = Record::new();
        r.push_to("sentences", span_annotation(0, 10, &[]));
        for &(name, ty, method) in names {
            r.push_to(
                "entities",
                span_annotation(
                    0,
                    5,
                    &[
                        ("name", name.into()),
                        ("type", ty.into()),
                        ("method", method.into()),
                    ],
                ),
            );
        }
        r
    }

    #[test]
    fn extracts_entities_from_records() {
        let r = record_with(&[("brca1", "gene", "dict"), ("aspirin", "drug", "ml")]);
        let es = entities_of(&r);
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].entity, EntityType::Gene);
        assert_eq!(es[1].method, Method::Ml);
        assert!(entities_of(&Record::new()).is_empty());
    }

    #[test]
    fn aggregation_counts_distinct_and_mentions() {
        let records = vec![
            record_with(&[("brca1", "gene", "dict"), ("brca1", "gene", "dict")]),
            record_with(&[("tp53", "gene", "dict"), ("xyz", "gene", "ml")]),
        ];
        let agg = aggregate_entities(&records);
        assert_eq!(agg.distinct_names(EntityType::Gene, Method::Dictionary), 2);
        assert_eq!(agg.distinct_names(EntityType::Gene, Method::Ml), 1);
        assert_eq!(agg.mentions["gene/Dict."], 3);
        assert_eq!(agg.sentences, 2);
        assert!((agg.mentions_per_1000_sentences(EntityType::Gene) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn tla_filter_shrinks_ml_inventory() {
        let records = vec![record_with(&[
            ("usa", "gene", "ml"),
            ("fbi", "gene", "ml"),
            ("brca1", "gene", "ml"),
        ])];
        let mut agg = aggregate_entities(&records);
        let (before, after) = agg.tla_filter_ml(EntityType::Gene);
        assert_eq!((before, after), (3, 1));
        assert_eq!(agg.distinct_names(EntityType::Gene, Method::Ml), 1);
    }

    #[test]
    fn overlap_partition_regions() {
        let a: HashSet<String> = ["x", "shared", "all"].iter().map(|s| s.to_string()).collect();
        let b: HashSet<String> = ["y", "shared", "all"].iter().map(|s| s.to_string()).collect();
        let c: HashSet<String> = ["z", "all"].iter().map(|s| s.to_string()).collect();
        let p = overlap_partition(&[("A", &a), ("B", &b), ("C", &c)]);
        assert_eq!(p.union_size, 5);
        assert_eq!(p.regions[0b001], 1); // x only in A
        assert_eq!(p.regions[0b011], 1); // shared in A,B
        assert_eq!(p.regions[0b111], 1); // all
        assert!((p.percent(0b111) - 20.0).abs() < 1e-9);
        // pairwise Jaccard: A∩B = {shared, all} = 2; A∪B = {x,y,shared,all} = 4
        assert!((p.pairwise_overlap(0, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn divergence_of_disjoint_sets_is_one() {
        let a: HashMap<String, u64> = [("x".to_string(), 5)].into_iter().collect();
        let b: HashMap<String, u64> = [("y".to_string(), 5)].into_iter().collect();
        assert!((name_divergence(&a, &b) - 1.0).abs() < 1e-9);
        assert!(name_divergence(&a, &a) < 1e-9);
    }
}
