//! Shared experiment context and the paper's reference values.
//!
//! Every experiment binary in `websift-bench` builds an
//! [`ExperimentContext`] (lexicon → IE resources → registry → corpora) and
//! compares its measurements against the [`paper`] constants transcribed
//! from the publication, recording both in EXPERIMENTS.md.

use crate::corpora::{Corpora, CorpusScale};
use std::sync::Arc;
use websift_corpus::{Lexicon, LexiconScale};
use websift_flow::{IeConfig, IeResources, OperatorRegistry};

/// Reference values transcribed from the paper, used by the experiment
/// harness for paper-vs-measured reporting.
pub mod paper {
    /// §4.1: harvest rate of the focused crawl.
    pub const HARVEST_RATE: f64 = 0.38;
    /// §4.1: download rate in documents per second.
    pub const DOCS_PER_SEC: (f64, f64) = (3.0, 4.0);
    /// §4.1: filter reductions (MIME, language, length).
    pub const FILTER_REDUCTIONS: (f64, f64, f64) = (0.095, 0.14, 0.17);
    /// §4.1: classifier quality — 10-fold CV (precision, recall).
    pub const CLASSIFIER_CV: (f64, f64) = (0.98, 0.83);
    /// §4.1: classifier quality on the 200-page crawl sample.
    pub const CLASSIFIER_SAMPLE: (f64, f64) = (0.94, 0.90);
    /// §4.1: boilerplate detection on the gold set / crawl sample.
    pub const BOILERPLATE_GOLD: (f64, f64) = (0.90, 0.82);
    pub const BOILERPLATE_SAMPLE: (f64, f64) = (0.98, 0.72);
    /// §2.2: seed counts of the two runs.
    pub const SEEDS_FIRST: usize = 45_227;
    pub const SEEDS_SECOND: usize = 485_462;
    /// §4.2: share of runtime spent in entity extraction / POS tagging.
    pub const ENTITY_RUNTIME_SHARE: f64 = 0.70;
    pub const POS_RUNTIME_SHARE: f64 = 0.12;
    /// Fig. 5: scale-out saturation points and gains.
    pub const ENTITY_SATURATION_DOP: usize = 16;
    pub const ENTITY_TIME_DECREASE: f64 = 0.72;
    pub const LINGUISTIC_SATURATION_DOP: usize = 12;
    pub const LINGUISTIC_TIME_DECREASE: f64 = 0.95;
    /// §4.2: per-1000-sentence means of Fig. 7 (rel, irrel, medline, pmc).
    pub const DISEASE_PER_1000: [f64; 4] = [128.49, 4.57, 204.92, 117.51];
    pub const DRUG_PER_1000: [f64; 4] = [97.83, 6.85, 293.95, 275.95];
    pub const GENE_DICT_PER_1000: [f64; 4] = [128.23, 4.39, 415.58, 74.12];
    /// Table 4 distinct names: (relevant, irrelevant, medline, pmc) for
    /// (dict, ml) per type.
    pub const TABLE4_DISEASE: [[u64; 4]; 2] =
        [[26_344, 5_318, 11_194, 12_291], [629_384, 119_638, 343_184, 277_211]];
    pub const TABLE4_DRUG: [[u64; 4]; 2] =
        [[17_974, 8_456, 12_164, 15_013], [28_660, 15_875, 20_282, 25_462]];
    pub const TABLE4_GENE: [[u64; 4]; 2] =
        [[73_435, 22_131, 29_928, 92_319], [5_506_579, 991_010, 4_715_194, 1_858_709]];
    /// §4.3.2: TLA filtering of ML gene names (before, after).
    pub const TLA_GENE_REDUCTION: (u64, u64) = (5_500_000, 2_300_000);
    /// §4.3.2 JSD ranges (lo, hi) per corpus pair.
    pub const JSD_REL_IRREL: (f64, f64) = (0.4463, 0.6548);
    pub const JSD_REL_MEDLINE: (f64, f64) = (0.2864, 0.3596);
    pub const JSD_REL_PMC: (f64, f64) = (0.1673, 0.3354);
    pub const JSD_IRREL_MEDLINE: (f64, f64) = (0.4528, 0.6850);
    pub const JSD_IRREL_PMC: (f64, f64) = (0.3941, 0.6633);
    /// Fig. 8 pairwise dictionary-name overlaps (share of smaller set).
    pub const OVERLAP_REL_IRREL_DISEASE: f64 = 0.15;
    pub const OVERLAP_REL_IRREL_DRUG: f64 = 0.30;
    pub const OVERLAP_REL_IRREL_GENE: f64 = 0.17;
    /// §4.2 war story numbers.
    pub const FULL_FLOW_GB_PER_WORKER: f64 = 60.0;
    pub const INTERMEDIATE_TOTAL_TB: f64 = 1.6;
    /// Crawl corpus (Table 3) — see `CorpusKind::paper_stats`.
    pub const CRAWL_DAYS: f64 = 80.0;
}

/// Everything an experiment needs, built once.
pub struct ExperimentContext {
    pub lexicon: Arc<Lexicon>,
    pub resources: Arc<IeResources>,
    pub registry: OperatorRegistry,
    pub corpora: Corpora,
    pub scale: CorpusScale,
}

impl ExperimentContext {
    /// Builds the context at the given scales. `seed` controls every
    /// generator downstream.
    pub fn build(
        lexicon_scale: LexiconScale,
        corpus_scale: CorpusScale,
        ie_config: IeConfig,
        seed: u64,
    ) -> ExperimentContext {
        let lexicon = Arc::new(Lexicon::generate(lexicon_scale));
        let resources = Arc::new(IeResources::standard(&lexicon, ie_config));
        let registry = OperatorRegistry::standard(resources.clone());
        let corpora = Corpora::generate(corpus_scale, lexicon.clone(), seed);
        ExperimentContext {
            lexicon,
            resources,
            registry,
            corpora,
            scale: corpus_scale,
        }
    }

    /// The standard benchmark context: default lexicon scale, corpora at
    /// 1:20000 of the paper (≈ 2,300 documents total), defaults elsewhere.
    pub fn standard(seed: u64) -> ExperimentContext {
        ExperimentContext::build(
            LexiconScale::default_scale(),
            CorpusScale::paper_scaled(20_000),
            IeConfig::default(),
            seed,
        )
    }

    /// A minimal context for tests.
    pub fn tiny(seed: u64) -> ExperimentContext {
        ExperimentContext::build(
            LexiconScale::tiny(),
            CorpusScale::tiny(),
            IeConfig {
                crf_training_sentences: 60,
                crf_epochs: 3,
                ..IeConfig::default()
            },
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_corpus::CorpusKind;

    #[test]
    fn tiny_context_builds() {
        let ctx = ExperimentContext::tiny(1);
        assert!(ctx.registry.len() >= 20);
        assert_eq!(ctx.corpora.get(CorpusKind::Pmc).len(), 4);
        assert_eq!(ctx.resources.dict.len(), 3);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_constants_sane() {
        assert!(paper::HARVEST_RATE > 0.0 && paper::HARVEST_RATE < 1.0);
        assert_eq!(paper::TABLE4_GENE[1][0], 5_506_579);
        assert!(paper::JSD_REL_PMC.0 < paper::JSD_REL_IRREL.0);
    }
}
