//! Linguistic analysis: per-document measurements from flow output and
//! cross-corpus statistics (the §4.3.1 comparisons).

use serde::Serialize;
use std::collections::HashMap;
use websift_flow::{Record, Value};
use websift_stats::{mann_whitney_u, MannWhitneyResult, Summary};

/// Per-document linguistic measurements extracted from an annotated
/// record.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DocMeasurements {
    /// Net-text length in characters.
    pub chars: usize,
    pub sentences: usize,
    pub mean_sentence_chars: f64,
    pub negations: usize,
    pub pronouns: usize,
    pub pronouns_by_class: HashMap<String, usize>,
    pub parentheses: usize,
    pub pos_errors: usize,
}

fn array_len(r: &Record, field: &str) -> usize {
    r.get(field).and_then(Value::as_array).map(<[Value]>::len).unwrap_or(0)
}

/// Extracts measurements from one annotated record.
pub fn measure(r: &Record) -> DocMeasurements {
    let chars = r.text().map(|t| t.chars().count()).unwrap_or(0);
    let sentences = r.get("sentences").and_then(Value::as_array);
    let (n_sentences, mean_len) = match sentences {
        Some(arr) if !arr.is_empty() => {
            let lens: Vec<f64> = arr
                .iter()
                .filter_map(|v| {
                    let o = v.as_object()?;
                    Some((o.get("end")?.as_int()? - o.get("start")?.as_int()?) as f64)
                })
                .collect();
            let mean = lens.iter().sum::<f64>() / lens.len() as f64;
            (lens.len(), mean)
        }
        _ => (0, 0.0),
    };
    let mut by_class: HashMap<String, usize> = HashMap::new();
    if let Some(arr) = r.get("pronouns").and_then(Value::as_array) {
        for p in arr {
            if let Some(class) = p.as_object().and_then(|o| o.get("class")).and_then(Value::as_str)
            {
                *by_class.entry(class.to_string()).or_insert(0) += 1;
            }
        }
    }
    DocMeasurements {
        chars,
        sentences: n_sentences,
        mean_sentence_chars: mean_len,
        negations: array_len(r, "negation"),
        pronouns: array_len(r, "pronouns"),
        pronouns_by_class: by_class,
        parentheses: array_len(r, "parens"),
        pos_errors: r.get("pos_errors").and_then(Value::as_int).unwrap_or(0) as usize,
    }
}

/// Aggregated linguistic statistics of one corpus (one Fig.-6 panel row).
#[derive(Debug, Clone, Serialize)]
pub struct CorpusLinguistics {
    pub documents: usize,
    pub doc_length: Option<Summary>,
    pub sentence_length: Option<Summary>,
    /// Negations per document, normalized per 1000 sentences.
    pub negation_per_1000_sentences: f64,
    pub pronouns_per_1000_sentences: f64,
    pub parens_per_1000_sentences: f64,
    /// Raw per-document samples for significance testing.
    #[serde(skip)]
    pub doc_length_samples: Vec<f64>,
    #[serde(skip)]
    pub sentence_length_samples: Vec<f64>,
    #[serde(skip)]
    pub negation_rate_samples: Vec<f64>,
    #[serde(skip)]
    pub pronoun_rate_samples: Vec<f64>,
    #[serde(skip)]
    pub paren_rate_samples: Vec<f64>,
}

/// Aggregates per-record measurements into corpus statistics.
pub fn aggregate(records: &[Record]) -> CorpusLinguistics {
    let measurements: Vec<DocMeasurements> = records.iter().map(measure).collect();
    let doc_lengths: Vec<f64> = measurements.iter().map(|m| m.chars as f64).collect();
    let sentence_lengths: Vec<f64> = measurements
        .iter()
        .filter(|m| m.sentences > 0)
        .map(|m| m.mean_sentence_chars)
        .collect();
    let rate = |n: usize, sents: usize| {
        if sents == 0 {
            0.0
        } else {
            n as f64 * 1000.0 / sents as f64
        }
    };
    let negation_rates: Vec<f64> = measurements
        .iter()
        .map(|m| rate(m.negations, m.sentences))
        .collect();
    let pronoun_rates: Vec<f64> = measurements
        .iter()
        .map(|m| rate(m.pronouns, m.sentences))
        .collect();
    let paren_rates: Vec<f64> = measurements
        .iter()
        .map(|m| rate(m.parentheses, m.sentences))
        .collect();

    let total_sentences: usize = measurements.iter().map(|m| m.sentences).sum();
    let totals = |f: fn(&DocMeasurements) -> usize| -> f64 {
        let total: usize = measurements.iter().map(f).sum();
        rate(total, total_sentences)
    };

    CorpusLinguistics {
        documents: measurements.len(),
        doc_length: Summary::of(&doc_lengths),
        sentence_length: Summary::of(&sentence_lengths),
        negation_per_1000_sentences: totals(|m| m.negations),
        pronouns_per_1000_sentences: totals(|m| m.pronouns),
        parens_per_1000_sentences: totals(|m| m.parentheses),
        doc_length_samples: doc_lengths,
        sentence_length_samples: sentence_lengths,
        negation_rate_samples: negation_rates,
        pronoun_rate_samples: pronoun_rates,
        paren_rate_samples: paren_rates,
    }
}

/// The measures §4.3.1 compares between corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Measure {
    DocumentLength,
    SentenceLength,
    NegationRate,
    PronounRate,
    ParenthesisRate,
}

impl Measure {
    pub fn all() -> [Measure; 5] {
        [
            Measure::DocumentLength,
            Measure::SentenceLength,
            Measure::NegationRate,
            Measure::PronounRate,
            Measure::ParenthesisRate,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Measure::DocumentLength => "document length",
            Measure::SentenceLength => "mean sentence length",
            Measure::NegationRate => "negation incidence",
            Measure::PronounRate => "pronoun incidence",
            Measure::ParenthesisRate => "parenthesis incidence",
        }
    }

    pub fn samples(self, c: &CorpusLinguistics) -> &[f64] {
        match self {
            Measure::DocumentLength => &c.doc_length_samples,
            Measure::SentenceLength => &c.sentence_length_samples,
            Measure::NegationRate => &c.negation_rate_samples,
            Measure::PronounRate => &c.pronoun_rate_samples,
            Measure::ParenthesisRate => &c.paren_rate_samples,
        }
    }
}

/// Mann-Whitney U test between two corpora on one measure (the paper's
/// significance machinery).
pub fn compare(
    a: &CorpusLinguistics,
    b: &CorpusLinguistics,
    measure: Measure,
) -> Option<MannWhitneyResult> {
    mann_whitney_u(measure.samples(a), measure.samples(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_flow::span_annotation;

    fn annotated_record(sents: usize, negs: usize) -> Record {
        let mut r = Record::new();
        let text = "word ".repeat(sents * 10);
        r.set("text", text.trim());
        for i in 0..sents {
            r.push_to("sentences", span_annotation(i * 50, i * 50 + 49, &[]));
        }
        for i in 0..negs {
            r.push_to(
                "negation",
                span_annotation(i * 50, i * 50 + 3, &[("sentence", (i as i64).into())]),
            );
        }
        r.push_to(
            "pronouns",
            span_annotation(0, 2, &[("class", "personal".into())]),
        );
        r
    }

    #[test]
    fn measure_extracts_counts() {
        let m = measure(&annotated_record(4, 2));
        assert_eq!(m.sentences, 4);
        assert_eq!(m.negations, 2);
        assert_eq!(m.pronouns, 1);
        assert_eq!(m.pronouns_by_class["personal"], 1);
        assert!((m.mean_sentence_chars - 49.0).abs() < 1e-9);
    }

    #[test]
    fn measure_of_empty_record() {
        let m = measure(&Record::new());
        assert_eq!(m.sentences, 0);
        assert_eq!(m.chars, 0);
        assert_eq!(m.mean_sentence_chars, 0.0);
    }

    #[test]
    fn aggregate_rates_per_1000() {
        let records: Vec<Record> = (0..10).map(|_| annotated_record(10, 1)).collect();
        let agg = aggregate(&records);
        assert_eq!(agg.documents, 10);
        // 10 negations over 100 sentences = 100 per 1000
        assert!((agg.negation_per_1000_sentences - 100.0).abs() < 1e-9);
        assert!(agg.doc_length.is_some());
    }

    #[test]
    fn compare_detects_separation() {
        let low: Vec<Record> = (0..30).map(|_| annotated_record(10, 0)).collect();
        let high: Vec<Record> = (0..30).map(|_| annotated_record(10, 5)).collect();
        let a = aggregate(&low);
        let b = aggregate(&high);
        let result = compare(&a, &b, Measure::NegationRate).unwrap();
        assert!(result.p_value < 0.01, "p = {}", result.p_value);
        // identical corpora are not significant
        let same = compare(&a, &a, Measure::NegationRate).unwrap();
        assert!(same.p_value > 0.5);
    }

    #[test]
    fn measure_names_cover_all() {
        assert_eq!(Measure::all().len(), 5);
        for m in Measure::all() {
            assert!(!m.name().is_empty());
        }
    }
}
