//! The consolidated analysis flows of the paper's Fig. 2.
//!
//! "The complete data flow comprising all required analysis for this study
//! consists of 38 elementary operators": web pages are length-filtered,
//! markup is detected/repaired/removed, sentences and tokens are
//! annotated, then the flow fans out into the linguistic branch (negation,
//! pronouns, parentheses) and the entity branch (POS tagging, six entity
//! annotators, cleansing). The split flows ([`linguistic_flow`],
//! [`entity_flow_for`]) are the paper's §4.2 mitigation — "we created one
//! flow for all linguistic analysis and one flow per entity class".

use std::collections::HashMap;
use websift_corpus::Document;
use websift_flow::packages::{base, dc, ie, wa};
use websift_flow::{
    CostModel, ExecutionConfig, ExecutionError, Executor, FlowOutput, IeResources, LogicalPlan,
    Operator, Package, PlanError, Record, StoreSink, Value,
};
use websift_ner::EntityType;

/// Which extraction method(s) an entity flow should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSelection {
    DictionaryOnly,
    MlOnly,
    Both,
}

/// Shared preprocessing prefix: length filter → markup repair → net-text
/// extraction → cleansing → sentence + token annotation. Returns the node
/// whose output is clean annotated text.
fn preprocessing(plan: &mut LogicalPlan, source: &str) -> Result<usize, PlanError> {
    let src = plan.source(source);
    let bounded = plan.add(src, base::filter_length(base::DEFAULT_MAX_TEXT_CHARS))?;
    let detected = plan.add(bounded, wa::detect_markup())?;
    let repaired = plan.add(detected, wa::repair_markup_op())?;
    let net = plan.add(repaired, wa::extract_net_text())?;
    let transcodable = plan.add(net, dc::drop_untranscodable())?;
    let nonempty = plan.add(transcodable, dc::filter_empty_text())?;
    let normalized = plan.add(nonempty, dc::normalize_whitespace())?;
    let sentences = plan.add(normalized, ie::annotate_sentences())?;
    plan.add(sentences, ie::annotate_tokens())
}

/// Message for the `expect` on the static flow builders below: these
/// plans are code, not scripts, so a [`PlanError`] is a programming bug.
const STATIC_PLAN: &str = "static flow builder produces a valid plan";

/// The full Fig.-2 flow: shared preprocessing fanning out into the
/// linguistic branch and all six entity annotators.
pub fn full_analysis_plan(resources: &IeResources) -> LogicalPlan {
    try_full_analysis_plan(resources).expect(STATIC_PLAN)
}

fn try_full_analysis_plan(resources: &IeResources) -> Result<LogicalPlan, PlanError> {
    let mut plan = LogicalPlan::new();
    let pre = preprocessing(&mut plan, "docs")?;

    // Linguistic branch.
    let neg = plan.add(pre, ie::annotate_negation())?;
    let pron = plan.add(neg, ie::annotate_pronouns())?;
    let paren = plan.add(pron, ie::annotate_parentheses())?;
    plan.sink(paren, "linguistic")?;

    // Entity branch: POS, then dictionary + ML for each entity class,
    // then annotation cleansing.
    let pos = plan.add(pre, ie::annotate_pos(resources.pos.clone()))?;
    let mut cur = pos;
    for entity in EntityType::all() {
        cur = plan.add(cur, ie::annotate_entities_dict(resources, entity))?;
        cur = plan.add(cur, ie::annotate_entities_ml(resources, entity))?;
    }
    // Per-method inventories (Table 4) are counted before cleansing; the
    // deduplicated view feeds downstream fact extraction.
    plan.sink(cur, "entities")?;
    let dedup = plan.add(cur, dc::dedup_entities())?;
    plan.sink(dedup, "entities_deduped")?;

    Ok(plan)
}

/// FlatMap exploding a tokenized document into one record per token,
/// carrying the lower-cased token text in `token`. Feeds the frequency
/// reduce of [`token_frequency_flow`].
fn explode_tokens() -> Operator {
    Operator::flat_map("core.explode_tokens", Package::Base, |r| {
        let Some(text) = r.text() else { return Vec::new() };
        let Some(Value::Array(tokens)) = r.get("tokens") else { return Vec::new() };
        let mut out = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let Some(span) = tok.as_object() else { continue };
            let (Some(start), Some(end)) = (
                span.get("start").and_then(Value::as_int),
                span.get("end").and_then(Value::as_int),
            ) else {
                continue;
            };
            let (start, end) = (start as usize, end as usize);
            if end > text.len() || start >= end {
                continue;
            }
            let mut rec = Record::new();
            rec.set("token", text[start..end].to_lowercase());
            out.push(rec);
        }
        out
    })
    .with_reads(&["text", "tokens"])
    .with_writes(&["token"])
    .with_cost(CostModel {
        us_per_char: 0.01,
        ..CostModel::default()
    })
}

/// A Reduce-terminated corpus-frequency flow: shared preprocessing, a
/// FlatMap exploding each document into one record per token, and the
/// combinable `base.count_by` Reduce over the token strings.
///
/// This is the partial-aggregation benchmark pipeline: with combining
/// enabled the fused workers pre-aggregate token counts, so the shuffle
/// to the final reduce carries per-key partial maps instead of every
/// token record.
pub fn token_frequency_flow(source: &str) -> LogicalPlan {
    try_token_frequency_flow(source).expect(STATIC_PLAN)
}

fn try_token_frequency_flow(source: &str) -> Result<LogicalPlan, PlanError> {
    let mut plan = LogicalPlan::new();
    let pre = preprocessing(&mut plan, source)?;
    let toks = plan.add(pre, explode_tokens())?;
    let counts = plan.add(toks, base::count_by("token"))?;
    plan.sink(counts, "token_frequencies")?;
    Ok(plan)
}

/// The linguistic-only flow (first war-story mitigation split).
pub fn linguistic_flow(source: &str) -> LogicalPlan {
    try_linguistic_flow(source).expect(STATIC_PLAN)
}

fn try_linguistic_flow(source: &str) -> Result<LogicalPlan, PlanError> {
    let mut plan = LogicalPlan::new();
    let pre = preprocessing(&mut plan, source)?;
    let neg = plan.add(pre, ie::annotate_negation())?;
    let pron = plan.add(neg, ie::annotate_pronouns())?;
    let paren = plan.add(pron, ie::annotate_parentheses())?;
    plan.sink(paren, "linguistic")?;
    Ok(plan)
}

/// One entity class's flow (the per-class split). The ML disease tagger
/// brings its own preprocessing and conflicting OpenNLP version, which is
/// why it must be in a flow of its own: combined with the sentence
/// annotator it fails admission.
pub fn entity_flow_for(
    resources: &IeResources,
    entity: EntityType,
    method: MethodSelection,
) -> LogicalPlan {
    try_entity_flow_for(resources, entity, method).expect(STATIC_PLAN)
}

fn try_entity_flow_for(
    resources: &IeResources,
    entity: EntityType,
    method: MethodSelection,
) -> Result<LogicalPlan, PlanError> {
    let mut plan = LogicalPlan::new();
    let mut cur = match (entity, method) {
        // ML-disease alone: raw text in, own preprocessing (no OpenNLP-15
        // ops). Any flow combining the ML disease tagger with the standard
        // sentence/token annotators carries the version conflict and is
        // rejected at admission — exactly the paper's situation.
        (EntityType::Disease, MethodSelection::MlOnly) => {
            let src = plan.source("docs");
            let bounded = plan.add(src, base::filter_length(base::DEFAULT_MAX_TEXT_CHARS))?;
            let net = plan.add(bounded, wa::extract_net_text())?;
            plan.add(net, dc::filter_empty_text())?
        }
        _ => preprocessing(&mut plan, "docs")?,
    };
    if matches!(method, MethodSelection::DictionaryOnly | MethodSelection::Both) {
        cur = plan.add(cur, ie::annotate_entities_dict(resources, entity))?;
    }
    if matches!(method, MethodSelection::MlOnly | MethodSelection::Both) {
        cur = plan.add(cur, ie::annotate_entities_ml(resources, entity))?;
    }
    let dedup = plan.add(cur, dc::dedup_entities())?;
    plan.sink(dedup, "entities")?;
    Ok(plan)
}

/// The entity flow wired to a serving store: same extraction pipeline as
/// [`entity_flow_for`] with both methods, but the deduplicated mentions
/// sink to `store:<store>/entities` for `Executor::run_into` to drain
/// into an extraction store instead of an in-memory dataset.
pub fn entity_store_flow(resources: &IeResources, entity: EntityType, store: &str) -> LogicalPlan {
    try_entity_store_flow(resources, entity, store).expect(STATIC_PLAN)
}

fn try_entity_store_flow(
    resources: &IeResources,
    entity: EntityType,
    store: &str,
) -> Result<LogicalPlan, PlanError> {
    let mut plan = LogicalPlan::new();
    let mut cur = preprocessing(&mut plan, "docs")?;
    cur = plan.add(cur, ie::annotate_entities_dict(resources, entity))?;
    cur = plan.add(cur, ie::annotate_entities_ml(resources, entity))?;
    let dedup = plan.add(cur, dc::dedup_entities())?;
    plan.store_sink(dedup, store, "entities")?;
    Ok(plan)
}

/// The live-session flow: one plan that feeds both serving surfaces at
/// once. Preprocessing fans out into (a) the entity branch — dictionary
/// and ML annotation, dedup, and a `store:<store>/entities` sink for
/// the serving store — and (b) the token branch, whose combinable
/// `base.count_by` Reduce terminates in a plain sink so a live session
/// can retain its per-key state across rounds.
pub fn live_extraction_flow(
    resources: &IeResources,
    entity: EntityType,
    store: &str,
) -> LogicalPlan {
    try_live_extraction_flow(resources, entity, store).expect(STATIC_PLAN)
}

fn try_live_extraction_flow(
    resources: &IeResources,
    entity: EntityType,
    store: &str,
) -> Result<LogicalPlan, PlanError> {
    let mut plan = LogicalPlan::new();
    let pre = preprocessing(&mut plan, "docs")?;

    // Entity branch into the serving store.
    let dict = plan.add(pre, ie::annotate_entities_dict(resources, entity))?;
    let ml = plan.add(dict, ie::annotate_entities_ml(resources, entity))?;
    let dedup = plan.add(ml, dc::dedup_entities())?;
    plan.store_sink(dedup, store, "entities")?;

    // Token-frequency branch with a retained terminal reduce.
    let toks = plan.add(pre, explode_tokens())?;
    let counts = plan.add(toks, base::count_by("token"))?;
    plan.sink(counts, "token_frequencies")?;
    Ok(plan)
}

/// Runs a plan over documents at the given DoP with a permissive local
/// cluster (admission off): the everyday execution path.
pub fn run_over_documents(
    plan: &LogicalPlan,
    docs: &[Document],
    dop: usize,
) -> Result<FlowOutput, ExecutionError> {
    let records = crate::corpora::documents_to_records(docs);
    let source = plan.sources().first().map(|s| s.to_string()).unwrap_or_default();
    let mut inputs = HashMap::new();
    inputs.insert(source, records);
    Executor::new(ExecutionConfig::local(dop)).run(plan, inputs)
}

/// [`run_over_documents`] with the plan's `store:` sinks drained into
/// `store` — how a pipeline feeds the serving layer.
pub fn run_over_documents_into(
    plan: &LogicalPlan,
    docs: &[Document],
    dop: usize,
    store: &mut dyn StoreSink,
) -> Result<FlowOutput, ExecutionError> {
    let records = crate::corpora::documents_to_records(docs);
    let source = plan.sources().first().map(|s| s.to_string()).unwrap_or_default();
    let mut inputs = HashMap::new();
    inputs.insert(source, records);
    Executor::new(ExecutionConfig::local(dop)).run_into(plan, inputs, store)
}

/// Aggregate outcome of the linguistic flow over a document set — the
/// quickstart-level API.
#[derive(Debug, Clone, Default)]
pub struct LinguisticReport {
    pub documents: usize,
    pub sentences: usize,
    pub negations: usize,
    pub pronouns: usize,
    pub parentheses: usize,
}

/// Convenience: runs the linguistic flow and aggregates counts.
pub fn linguistic_report(docs: &[Document]) -> LinguisticReport {
    let plan = linguistic_flow("docs");
    let out = run_over_documents(&plan, docs, 2).expect("linguistic flow runs locally");
    let records: &[Record] = &out.sinks["linguistic"];
    let count_field = |r: &Record, f: &str| {
        r.get(f)
            .and_then(websift_flow::Value::as_array)
            .map(<[websift_flow::Value]>::len)
            .unwrap_or(0)
    };
    let mut report = LinguisticReport {
        documents: docs.len(),
        ..Default::default()
    };
    for r in records {
        report.sentences += count_field(r, "sentences");
        report.negations += count_field(r, "negation");
        report.pronouns += count_field(r, "pronouns");
        report.parentheses += count_field(r, "parens");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, OnceLock};
    use websift_corpus::{CorpusKind, Generator, Lexicon, LexiconScale};
    use websift_flow::cluster::{admit, ClusterSpec, SchedulingError};

    fn resources() -> &'static IeResources {
        static RES: OnceLock<IeResources> = OnceLock::new();
        RES.get_or_init(|| IeResources::quick_for_tests(LexiconScale::tiny()))
    }

    fn docs(kind: CorpusKind, n: usize) -> Vec<Document> {
        Generator::with_lexicon(kind, 3, Arc::new(Lexicon::generate(LexiconScale::tiny())))
            .documents(n)
    }

    #[test]
    fn full_plan_has_paper_scale_operator_count() {
        let plan = full_analysis_plan(resources());
        let n = plan.operator_count();
        assert!(
            (15..=40).contains(&n),
            "full flow has {n} elementary operators"
        );
        plan.validate().unwrap();
    }

    #[test]
    fn full_plan_fails_admission_on_paper_cluster() {
        // the war story: memory + the OpenNLP conflict
        let plan = full_analysis_plan(resources());
        let err = admit(&plan, 28, &ClusterSpec::paper_cluster()).unwrap_err();
        assert!(
            matches!(
                err,
                SchedulingError::LibraryConflict { .. } | SchedulingError::InsufficientMemory { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn split_flows_pass_admission_individually() {
        let ling = linguistic_flow("docs");
        assert!(admit(&ling, 28, &ClusterSpec::paper_cluster()).is_ok());
        let disease_ml =
            entity_flow_for(resources(), EntityType::Disease, MethodSelection::MlOnly);
        assert!(admit(&disease_ml, 28, &ClusterSpec::paper_cluster()).is_ok());
    }

    #[test]
    fn linguistic_flow_runs_on_web_docs() {
        let report = linguistic_report(&docs(CorpusKind::RelevantWeb, 4));
        assert_eq!(report.documents, 4);
        assert!(report.sentences > 0);
        assert!(report.pronouns + report.negations + report.parentheses > 0);
    }

    #[test]
    fn linguistic_flow_runs_on_medline_docs() {
        let report = linguistic_report(&docs(CorpusKind::Medline, 6));
        assert!(report.sentences >= 6);
    }

    #[test]
    fn entity_flow_extracts_entities() {
        let plan = entity_flow_for(resources(), EntityType::Gene, MethodSelection::Both);
        let out = run_over_documents(&plan, &docs(CorpusKind::Medline, 6), 2).unwrap();
        let with_entities = out.sinks["entities"]
            .iter()
            .filter(|r| r.contains("entities"))
            .count();
        assert!(with_entities > 0, "no entities extracted");
    }

    #[test]
    fn token_frequency_flow_counts_tokens_identically_combined_or_not() {
        let plan = token_frequency_flow("docs");
        plan.validate().unwrap();
        // the terminal reduce is combinable, so no WS010 and the executor
        // may pre-aggregate inside the fused stage
        let diags = websift_flow::analyze_plan(&plan, &websift_flow::AnalyzeOptions::default());
        assert!(diags.iter().all(|d| d.code != "WS010"), "{diags:?}");

        let input = docs(CorpusKind::RelevantWeb, 6);
        let records = crate::corpora::documents_to_records(&input);
        let mut inputs = HashMap::new();
        inputs.insert("docs".to_string(), records);

        let mut combined_cfg = ExecutionConfig::local(3);
        combined_cfg.combining = true;
        let mut plain_cfg = ExecutionConfig::local(3);
        plain_cfg.combining = false;
        let combined = Executor::new(combined_cfg).run(&plan, inputs.clone()).unwrap();
        let plain = Executor::new(plain_cfg).run(&plan, inputs).unwrap();

        let freqs = &combined.sinks["token_frequencies"];
        assert!(!freqs.is_empty(), "no token frequencies produced");
        let total: i64 =
            freqs.iter().map(|r| r.get("count").unwrap().as_int().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(freqs, &plain.sinks["token_frequencies"]);
        assert!(
            combined.physical.shuffle_bytes < plain.physical.shuffle_bytes,
            "combining should shrink the shuffle: {} vs {}",
            combined.physical.shuffle_bytes,
            plain.physical.shuffle_bytes
        );
    }

    #[test]
    fn full_flow_executes_locally() {
        let plan = full_analysis_plan(resources());
        let out = run_over_documents(&plan, &docs(CorpusKind::Medline, 4), 2).unwrap();
        assert!(out.sinks.contains_key("linguistic"));
        assert!(out.sinks.contains_key("entities"));
        assert!(!out.sinks["entities"].is_empty());
    }
}
