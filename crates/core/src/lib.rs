//! The consolidated websift pipeline — the paper's primary artifact.
//!
//! This crate ties the substrates together into the system the paper
//! describes: the Fig.-2 analysis flows over the data-flow engine
//! ([`flows`]), corpus assembly from generators or from an actual focused
//! crawl ([`corpora`]), the §4.3.1 linguistic analysis ([`analysis`]), the
//! §4.3.2 entity analysis with Table-4/Fig.-7/Fig.-8 machinery
//! ([`entities`]), and the experiment context with the paper's reference
//! values ([`experiment`]).

pub mod analysis;
pub mod corpora;
pub mod entities;
pub mod experiment;
pub mod flows;

pub use analysis::{aggregate, compare, CorpusLinguistics, DocMeasurements, Measure};
pub use corpora::{documents_to_records, Corpora, CorpusScale};
pub use entities::{
    aggregate_entities, entities_of, name_divergence, overlap_partition, CorpusEntities,
    ExtractedEntity, OverlapPartition,
};
pub use experiment::{paper, ExperimentContext};
pub use flows::{
    entity_flow_for, entity_store_flow, full_analysis_plan, linguistic_flow, linguistic_report,
    live_extraction_flow, run_over_documents, run_over_documents_into, token_frequency_flow,
    LinguisticReport, MethodSelection,
};
