//! Character n-gram language identification (Cavnar & Trenkle style).
//!
//! The focused crawler "remove[s] pages that are written in languages other
//! than English by using an n-gram based language filter, because subsequent
//! IE tools ... are sensitive to language". This module provides that
//! filter: per-language n-gram rank profiles built from embedded seed text,
//! compared with the out-of-place measure.

use crate::ngram::NgramProfile;
use serde::Serialize;
use std::sync::OnceLock;

/// Languages the identifier can distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Lang {
    English,
    German,
    French,
    Spanish,
    /// No profile matched with reasonable confidence.
    Unknown,
}

const MAX_N: usize = 3;
const TOP_K: usize = 400;

/// Seed texts: a few hundred words of plain prose per language. They only
/// need to capture characteristic short n-grams (articles, inflections),
/// which is what makes the Cavnar-Trenkle method work with tiny models.
const ENGLISH_SEED: &str = "the quick brown fox jumps over the lazy dog and the \
    patient was treated with the new drug for the disease of the heart which \
    is one of the most common causes of death in the world the study shows \
    that there is a significant difference between the groups and that the \
    treatment works for most of the patients who were included in the trial \
    this is an important finding because it suggests that the therapy could \
    be used more widely in clinical practice and that further research should \
    be done to confirm these results in larger populations of people with \
    similar conditions the results of this analysis were published in a peer \
    reviewed journal and have been cited many times by other researchers in \
    the field of medicine and biology";

const GERMAN_SEED: &str = "der schnelle braune fuchs springt über den faulen \
    hund und der patient wurde mit dem neuen medikament gegen die krankheit \
    des herzens behandelt die eine der häufigsten todesursachen der welt ist \
    die studie zeigt dass es einen signifikanten unterschied zwischen den \
    gruppen gibt und dass die behandlung bei den meisten patienten wirkt die \
    in die studie eingeschlossen wurden dies ist ein wichtiger befund weil er \
    darauf hindeutet dass die therapie breiter in der klinischen praxis \
    eingesetzt werden könnte und dass weitere forschung durchgeführt werden \
    sollte um diese ergebnisse zu bestätigen";

const FRENCH_SEED: &str = "le renard brun rapide saute par dessus le chien \
    paresseux et le patient a été traité avec le nouveau médicament contre la \
    maladie du coeur qui est une des causes les plus fréquentes de décès dans \
    le monde l'étude montre qu'il existe une différence significative entre \
    les groupes et que le traitement fonctionne pour la plupart des patients \
    qui ont été inclus dans l'essai c'est une découverte importante car elle \
    suggère que la thérapie pourrait être utilisée plus largement dans la \
    pratique clinique et que des recherches supplémentaires devraient être \
    menées pour confirmer ces résultats";

const SPANISH_SEED: &str = "el rápido zorro marrón salta sobre el perro \
    perezoso y el paciente fue tratado con el nuevo medicamento contra la \
    enfermedad del corazón que es una de las causas más comunes de muerte en \
    el mundo el estudio muestra que hay una diferencia significativa entre \
    los grupos y que el tratamiento funciona para la mayoría de los pacientes \
    que fueron incluidos en el ensayo este es un hallazgo importante porque \
    sugiere que la terapia podría utilizarse más ampliamente en la práctica \
    clínica y que se deberían realizar más investigaciones para confirmar \
    estos resultados";

struct Profiles {
    langs: Vec<(Lang, NgramProfile)>,
}

fn profiles() -> &'static Profiles {
    static PROFILES: OnceLock<Profiles> = OnceLock::new();
    PROFILES.get_or_init(|| Profiles {
        langs: vec![
            (Lang::English, NgramProfile::build(ENGLISH_SEED, MAX_N, TOP_K)),
            (Lang::German, NgramProfile::build(GERMAN_SEED, MAX_N, TOP_K)),
            (Lang::French, NgramProfile::build(FRENCH_SEED, MAX_N, TOP_K)),
            (Lang::Spanish, NgramProfile::build(SPANISH_SEED, MAX_N, TOP_K)),
        ],
    })
}

/// The language identifier. Stateless; cheap to construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct LanguageId;

impl LanguageId {
    pub fn new() -> LanguageId {
        LanguageId
    }

    /// Identifies the language of `text`.
    ///
    /// Texts shorter than ~20 letters come back as [`Lang::Unknown`]; so do
    /// texts whose best profile distance is not meaningfully better than the
    /// runner-up (ambiguous input such as pure numbers or code).
    pub fn detect(&self, text: &str) -> Lang {
        let letters = text.chars().filter(|c| c.is_alphabetic()).count();
        if letters < 20 {
            return Lang::Unknown;
        }
        let sample = NgramProfile::build(text, MAX_N, TOP_K);
        let mut best = (Lang::Unknown, u64::MAX);
        let mut second = u64::MAX;
        for (lang, profile) in &profiles().langs {
            let d = profile.out_of_place(&sample);
            if d < best.1 {
                second = best.1;
                best = (*lang, d);
            } else if d < second {
                second = d;
            }
        }
        // Require a margin over the runner-up: degenerate inputs are roughly
        // equidistant from every profile.
        if second != u64::MAX && best.1 as f64 > 0.97 * second as f64 {
            return Lang::Unknown;
        }
        best.0
    }

    /// Convenience for the crawler's language filter.
    pub fn is_english(&self, text: &str) -> bool {
        self.detect(text) == Lang::English
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_english() {
        let id = LanguageId::new();
        assert_eq!(
            id.detect("The treatment of the disease with this drug was effective for most of the patients in the study."),
            Lang::English
        );
    }

    #[test]
    fn detects_german() {
        let id = LanguageId::new();
        assert_eq!(
            id.detect("Die Behandlung der Krankheit mit diesem Medikament war bei den meisten Patienten in der Studie wirksam."),
            Lang::German
        );
    }

    #[test]
    fn detects_french() {
        let id = LanguageId::new();
        assert_eq!(
            id.detect("Le traitement de la maladie avec ce médicament a été efficace pour la plupart des patients de l'étude."),
            Lang::French
        );
    }

    #[test]
    fn detects_spanish() {
        let id = LanguageId::new();
        assert_eq!(
            id.detect("El tratamiento de la enfermedad con este medicamento fue eficaz para la mayoría de los pacientes del estudio."),
            Lang::Spanish
        );
    }

    #[test]
    fn short_text_is_unknown() {
        let id = LanguageId::new();
        assert_eq!(id.detect("ok"), Lang::Unknown);
        assert_eq!(id.detect("404"), Lang::Unknown);
        assert_eq!(id.detect(""), Lang::Unknown);
    }

    #[test]
    fn is_english_helper() {
        let id = LanguageId::new();
        assert!(id.is_english(
            "This is a perfectly ordinary English sentence about the results of the clinical study."
        ));
        assert!(!id.is_english(
            "Dies ist ein ganz gewöhnlicher deutscher Satz über die Ergebnisse der klinischen Studie."
        ));
    }
}
