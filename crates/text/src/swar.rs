//! SWAR (SIMD-within-a-register) byte scanning.
//!
//! `u64`-word loops that test eight haystack bytes per iteration, the
//! classic memchr technique: XOR the word against a splatted needle and
//! detect a zero byte with `(x - 0x01…01) & !x & 0x80…80`. The regexlite
//! scan prefilter and the Aho-Corasick start-byte skip use these to jump
//! over runs with no candidate start, so the byte-at-a-time inner loops
//! only run near positions that can actually begin a match.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// How many distinct needle bytes [`find_one_of`] stays profitable for;
/// beyond this a table-lookup byte loop wins.
pub const MAX_NEEDLES: usize = 3;

#[inline(always)]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// True when any byte of `x` is zero.
#[inline(always)]
fn has_zero_byte(x: u64) -> bool {
    x.wrapping_sub(LO) & !x & HI != 0
}

/// Index of the first occurrence at or after `from` of any byte in
/// `needles`, or `haystack.len()` when there is none. Intended for small
/// needle sets (≤ [`MAX_NEEDLES`]); correctness does not depend on the
/// bound, only throughput.
pub fn find_one_of(haystack: &[u8], from: usize, needles: &[u8]) -> usize {
    find_one_of_or_high(haystack, from, needles, false)
}

/// Like [`find_one_of`], but with `include_high` it also stops at any
/// byte ≥ 0x80 (detected as a word-wide high-bit test, essentially free).
/// Case-insensitive scans need this because a non-ASCII char can fold
/// into an ASCII needle; callers re-synchronize the returned position
/// against their full candidate table.
pub fn find_one_of_or_high(
    haystack: &[u8],
    from: usize,
    needles: &[u8],
    include_high: bool,
) -> usize {
    let n = haystack.len();
    let mut i = from;
    while i + 8 <= n {
        let word = u64::from_ne_bytes(haystack[i..i + 8].try_into().unwrap());
        let mut hit = include_high && word & HI != 0;
        for &b in needles {
            hit |= has_zero_byte(word ^ splat(b));
        }
        if hit {
            break;
        }
        i += 8;
    }
    while i < n {
        let b = haystack[i];
        if needles.contains(&b) || (include_high && b >= 0x80) {
            break;
        }
        i += 1;
    }
    i
}

/// Index of the first byte at or after `from` whose `table` entry is true,
/// or `haystack.len()` when there is none. The skip loop for candidate
/// sets too dense for [`find_one_of`].
pub fn find_in_table(haystack: &[u8], from: usize, table: &[bool; 256]) -> usize {
    let n = haystack.len();
    let mut i = from;
    while i < n && !table[haystack[i] as usize] {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(haystack: &[u8], from: usize, needles: &[u8]) -> usize {
        (from..haystack.len())
            .find(|&i| needles.contains(&haystack[i]))
            .unwrap_or(haystack.len())
    }

    #[test]
    fn zero_byte_detection() {
        assert!(has_zero_byte(0x0011_2233_4455_6677));
        assert!(has_zero_byte(u64::from_ne_bytes(*b"abc\0defg")));
        assert!(!has_zero_byte(u64::MAX));
        assert!(!has_zero_byte(0x0101_0101_0101_0101));
    }

    #[test]
    fn agrees_with_naive_scan() {
        // Deterministic LCG; covers word-boundary straddles, 0x00/0x80
        // bytes (the SWAR carry/borrow edge cases), and empty needle sets.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let palette: &[u8] = &[0x00, b'a', b'n', b'N', b'(', 0x7f, 0x80, 0xc3, 0xff];
        for _ in 0..500 {
            let len = next(40);
            let hay: Vec<u8> = (0..len).map(|_| palette[next(palette.len())]).collect();
            let k = next(MAX_NEEDLES + 1);
            let needles: Vec<u8> = (0..k).map(|_| palette[next(palette.len())]).collect();
            let from = next(len + 2).min(len);
            assert_eq!(
                find_one_of(&hay, from, &needles),
                naive(&hay, from, &needles),
                "swar diverges: hay={hay:?} from={from} needles={needles:?}"
            );
            let mut table = [false; 256];
            for &b in &needles {
                table[b as usize] = true;
            }
            assert_eq!(find_in_table(&hay, from, &table), naive(&hay, from, &needles));
        }
    }

    #[test]
    fn empty_and_bounds() {
        assert_eq!(find_one_of(b"", 0, b"x"), 0);
        assert_eq!(find_one_of(b"abc", 3, b"a"), 3);
        assert_eq!(find_one_of(b"abc", 0, b""), 3);
        assert_eq!(find_one_of(b"aaaaaaaaaaaaaaaab", 1, b"b"), 16);
    }
}
