//! A small regular-expression engine (Thompson NFA construction, linear-time
//! simulation) built from scratch.
//!
//! The paper's pipeline uses regular expressions pervasively: the linguistic
//! annotators find negation/pronouns/parentheses "using different sets of
//! regular expressions", and the dictionary-based entity taggers transform
//! "each dictionary term into a regular expression" to absorb surface
//! variation. This engine supports the constructs those uses need:
//!
//! - literals and escapes (`\.` etc.), `.` (any char)
//! - character classes `[a-z0-9]`, negation `[^…]`, and the shorthands
//!   `\d \w \s \D \W \S`
//! - grouping `( … )`, alternation `|`
//! - quantifiers `*`, `+`, `?` and bounded `{m}`, `{m,n}`
//! - anchors `^`, `$` and the word boundary `\b`
//! - case-insensitive matching via [`Regex::case_insensitive`]
//!
//! Matching is leftmost-longest via breadth-first NFA simulation: worst case
//! `O(len(text) · states)`, no exponential blow-up on pathological patterns.

use serde::Serialize;
use std::fmt;

/// A parse error with byte position in the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

/// A span of a match in the haystack, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Match {
    pub start: usize,
    pub end: usize,
}

impl Match {
    pub fn text<'a>(&self, haystack: &'a str) -> &'a str {
        &haystack[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

// ---------------------------------------------------------------- AST

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(char),
    Any,
    Class(ClassSet),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat { node: Box<Ast>, min: u32, max: Option<u32> },
    Anchor(AnchorKind),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnchorKind {
    Start,
    End,
    WordBoundary,
}

#[derive(Debug, Clone, Default)]
struct ClassSet {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl ClassSet {
    fn push(&mut self, lo: char, hi: char) {
        self.ranges.push((lo, hi));
    }

    fn push_shorthand(&mut self, c: char) {
        match c {
            'd' => self.push('0', '9'),
            'w' => {
                self.push('a', 'z');
                self.push('A', 'Z');
                self.push('0', '9');
                self.push('_', '_');
            }
            's' => {
                for ws in [' ', '\t', '\n', '\r', '\x0b', '\x0c'] {
                    self.push(ws, ws);
                }
            }
            _ => unreachable!("not a shorthand: {c}"),
        }
    }

    fn matches(&self, c: char, ci: bool) -> bool {
        let hit = |c: char| self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
        let mut m = hit(c);
        if ci && !m {
            m = hit(flip_case(c));
        }
        m != self.negated
    }
}

fn flip_case(c: char) -> char {
    if c.is_uppercase() {
        c.to_lowercase().next().unwrap_or(c)
    } else {
        c.to_uppercase().next().unwrap_or(c)
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn err(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            position: self.pos.min(self.pattern.len()),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse(&mut self) -> Result<Ast, RegexError> {
        let ast = self.parse_alt()?;
        if self.pos != self.chars.len() {
            return Err(self.err(format!("unexpected '{}'", self.chars[self.pos])));
        }
        Ok(ast)
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number()?;
                let max = match self.peek() {
                    Some(',') => {
                        self.bump();
                        if self.peek() == Some('}') {
                            None
                        } else {
                            Some(self.parse_number()?)
                        }
                    }
                    _ => Some(min),
                };
                if self.bump() != Some('}') {
                    return Err(self.err("expected '}'"));
                }
                if let Some(mx) = max {
                    if mx < min {
                        return Err(self.err("repetition max below min"));
                    }
                    if mx > 512 {
                        return Err(self.err("repetition bound too large (max 512)"));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::Anchor(_)) {
            return Err(self.err("cannot repeat an anchor"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let mut saw = false;
        let mut value: u32 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                saw = true;
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(d))
                    .ok_or_else(|| self.err("number too large"))?;
            } else {
                break;
            }
        }
        if !saw {
            return Err(self.err("expected number"));
        }
        Ok(value)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::Anchor(AnchorKind::Start)),
            Some('$') => Ok(Ast::Anchor(AnchorKind::End)),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier '{c}'"))),
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        let c = self.bump().ok_or_else(|| self.err("trailing backslash"))?;
        Ok(match c {
            'd' | 'w' | 's' => {
                let mut set = ClassSet::default();
                set.push_shorthand(c);
                Ast::Class(set)
            }
            'D' | 'W' | 'S' => {
                let mut set = ClassSet::default();
                set.push_shorthand(c.to_ascii_lowercase());
                set.negated = true;
                Ast::Class(set)
            }
            'b' => Ast::Anchor(AnchorKind::WordBoundary),
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            other => Ast::Char(other),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let mut set = ClassSet::default();
        if self.peek() == Some('^') {
            self.bump();
            set.negated = true;
        }
        let mut first = true;
        loop {
            let c = self.bump().ok_or_else(|| self.err("unclosed character class"))?;
            match c {
                ']' if !first => break,
                '\\' => {
                    let e = self.bump().ok_or_else(|| self.err("trailing backslash"))?;
                    match e {
                        'd' | 'w' | 's' => set.push_shorthand(e),
                        'n' => set.push('\n', '\n'),
                        't' => set.push('\t', '\t'),
                        'r' => set.push('\r', '\r'),
                        other => set.push(other, other),
                    }
                }
                lo => {
                    // possible range lo-hi
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump(); // '-'
                        let hi = self.bump().ok_or_else(|| self.err("unclosed range"))?;
                        if hi < lo {
                            return Err(self.err("invalid range (hi < lo)"));
                        }
                        set.push(lo, hi);
                    } else {
                        set.push(lo, lo);
                    }
                }
            }
            first = false;
        }
        Ok(Ast::Class(set))
    }
}

// ---------------------------------------------------------------- NFA

#[derive(Debug, Clone)]
enum Edge {
    Char(char),
    Any,
    Class(u32),
    Epsilon,
    Anchor(AnchorKind),
}

#[derive(Debug, Clone, Default)]
struct State {
    edges: Vec<(Edge, u32)>,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    classes: Vec<ClassSet>,
    start: u32,
    accept: u32,
    case_insensitive: bool,
    pattern: String,
    /// Bytes a match can possibly start with, when that set is computable
    /// and ASCII-only: the unanchored scan skips every position whose
    /// byte is not in the set without touching the NFA. `None` (the
    /// pattern can match empty, or can start with `.`/a negated class/a
    /// non-ASCII char) disables the prefilter.
    first_bytes: Option<Box<[bool; 256]>>,
}

struct Compiler {
    states: Vec<State>,
    classes: Vec<ClassSet>,
}

impl Compiler {
    fn push_state(&mut self) -> u32 {
        self.states.push(State::default());
        (self.states.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, edge: Edge, to: u32) {
        self.states[from as usize].edges.push((edge, to));
    }

    /// Compiles `ast` into a fragment, returning (entry, exit).
    fn compile(&mut self, ast: &Ast) -> (u32, u32) {
        match ast {
            Ast::Empty => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Epsilon, e);
                (s, e)
            }
            Ast::Char(c) => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Char(*c), e);
                (s, e)
            }
            Ast::Any => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Any, e);
                (s, e)
            }
            Ast::Class(set) => {
                let s = self.push_state();
                let e = self.push_state();
                self.classes.push(set.clone());
                let id = (self.classes.len() - 1) as u32;
                self.edge(s, Edge::Class(id), e);
                (s, e)
            }
            Ast::Anchor(kind) => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Anchor(*kind), e);
                (s, e)
            }
            Ast::Concat(items) => {
                let mut entry = None;
                let mut prev_exit: Option<u32> = None;
                for item in items {
                    let (s, e) = self.compile(item);
                    if let Some(pe) = prev_exit {
                        self.edge(pe, Edge::Epsilon, s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(e);
                }
                (entry.unwrap(), prev_exit.unwrap())
            }
            Ast::Alt(branches) => {
                let s = self.push_state();
                let e = self.push_state();
                for b in branches {
                    let (bs, be) = self.compile(b);
                    self.edge(s, Edge::Epsilon, bs);
                    self.edge(be, Edge::Epsilon, e);
                }
                (s, e)
            }
            Ast::Repeat { node, min, max } => {
                // Expand: min mandatory copies, then either a star (max None)
                // or (max - min) optional copies.
                let s = self.push_state();
                let mut cur = s;
                for _ in 0..*min {
                    let (ns, ne) = self.compile(node);
                    self.edge(cur, Edge::Epsilon, ns);
                    cur = ne;
                }
                match max {
                    None => {
                        let (ns, ne) = self.compile(node);
                        let exit = self.push_state();
                        self.edge(cur, Edge::Epsilon, ns);
                        self.edge(cur, Edge::Epsilon, exit);
                        self.edge(ne, Edge::Epsilon, ns);
                        self.edge(ne, Edge::Epsilon, exit);
                        (s, exit)
                    }
                    Some(mx) => {
                        let exit = self.push_state();
                        self.edge(cur, Edge::Epsilon, exit);
                        for _ in *min..*mx {
                            let (ns, ne) = self.compile(node);
                            self.edge(cur, Edge::Epsilon, ns);
                            self.edge(ne, Edge::Epsilon, exit);
                            cur = ne;
                        }
                        (s, exit)
                    }
                }
            }
        }
    }
}

impl Regex {
    /// Compiles a case-sensitive regex.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile(pattern, false)
    }

    /// Compiles a case-insensitive regex.
    pub fn case_insensitive(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile(pattern, true)
    }

    fn compile(pattern: &str, ci: bool) -> Result<Regex, RegexError> {
        let ast = Parser::new(pattern).parse()?;
        let mut compiler = Compiler {
            states: Vec::new(),
            classes: Vec::new(),
        };
        let (start, accept) = compiler.compile(&ast);
        let first_bytes =
            compute_first_bytes(&compiler.states, &compiler.classes, start, accept, ci);
        Ok(Regex {
            states: compiler.states,
            classes: compiler.classes,
            start,
            accept,
            case_insensitive: ci,
            pattern: pattern.to_string(),
            first_bytes,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of NFA states (a proxy for pattern complexity; the dictionary
    /// taggers use it for their memory model).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Does the regex match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Leftmost-longest match.
    pub fn find(&self, text: &str) -> Option<Match> {
        self.find_at(text, 0)
    }

    /// Leftmost-longest match starting at or after byte `from` (which must
    /// lie on a char boundary).
    pub fn find_at(&self, text: &str, from: usize) -> Option<Match> {
        let mut scratch = Scratch::for_states(self.states.len());
        if let Some(table) = &self.first_bytes {
            // Marked bytes are ASCII, so every marked position is a char
            // boundary, and a filtered regex cannot match empty — the
            // end-of-text position needs no attempt.
            for (start, &b) in text.as_bytes().iter().enumerate().skip(from) {
                if table[b as usize] {
                    if let Some(end) = self.match_len(text, start, &mut scratch) {
                        return Some(Match { start, end });
                    }
                }
            }
            return None;
        }
        let mut start = from;
        loop {
            if let Some(end) = self.match_len(text, start, &mut scratch) {
                return Some(Match { start, end });
            }
            match text[start..].chars().next() {
                Some(c) => start += c.len_utf8(),
                None => return None,
            }
        }
    }

    /// All non-overlapping leftmost-longest matches.
    pub fn find_iter(&self, text: &str) -> Vec<Match> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos <= text.len() {
            match self.find_at(text, pos) {
                Some(m) => {
                    let next = if m.is_empty() {
                        // advance one char past an empty match
                        match text[m.end..].chars().next() {
                            Some(c) => m.end + c.len_utf8(),
                            None => break,
                        }
                    } else {
                        m.end
                    };
                    out.push(m);
                    pos = next;
                }
                None => break,
            }
        }
        out
    }

    /// Longest match length anchored at byte `start`; `None` if no match.
    /// State sets and the closure worklist live in `scratch` so the
    /// per-position caller (`find_at`) pays no allocations in its scan loop.
    fn match_len(&self, text: &str, start: usize, scratch: &mut Scratch) -> Option<usize> {
        let Scratch { current, next: next_set, stack } = scratch;
        current.iter_mut().for_each(|b| *b = false);
        let mut best: Option<usize> = None;

        let prev_char_at = |pos: usize| -> Option<char> { text[..pos].chars().next_back() };

        // epsilon closure given position context
        let closure = |set: &mut Vec<bool>,
                       stack: &mut Vec<u32>,
                       pos: usize,
                       next: Option<char>,
                       slf: &Regex| {
            let prev = prev_char_at(pos);
            stack.clear();
            stack.extend(set.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u32));
            while let Some(s) = stack.pop() {
                for (edge, to) in &slf.states[s as usize].edges {
                    let pass = match edge {
                        Edge::Epsilon => true,
                        Edge::Anchor(AnchorKind::Start) => pos == 0,
                        Edge::Anchor(AnchorKind::End) => next.is_none(),
                        Edge::Anchor(AnchorKind::WordBoundary) => {
                            let pw = prev.map(is_word).unwrap_or(false);
                            let nw = next.map(is_word).unwrap_or(false);
                            pw != nw
                        }
                        _ => false,
                    };
                    if pass && !set[*to as usize] {
                        set[*to as usize] = true;
                        stack.push(*to);
                    }
                }
            }
        };

        current[self.start as usize] = true;
        let mut pos_iter = text[start..]
            .char_indices()
            .map(|(i, c)| (start + i, c))
            .peekable();
        let first_next = pos_iter.peek().map(|&(_, c)| c);
        closure(current, stack, start, first_next, self);
        if current[self.accept as usize] {
            best = Some(start);
        }

        while let Some((off, c)) = pos_iter.next() {
            next_set.iter_mut().for_each(|b| *b = false);
            let mut any = false;
            for (i, &active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                for (edge, to) in &self.states[i].edges {
                    let pass = match edge {
                        Edge::Char(pc) => chars_eq(*pc, c, self.case_insensitive),
                        Edge::Any => c != '\n',
                        Edge::Class(id) => {
                            self.classes[*id as usize].matches(c, self.case_insensitive)
                        }
                        _ => false,
                    };
                    if pass {
                        next_set[*to as usize] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            let after = off + c.len_utf8();
            let lookahead = pos_iter.peek().map(|&(_, nc)| nc);
            closure(next_set, stack, after, lookahead, self);
            if next_set[self.accept as usize] {
                best = Some(after);
            }
            std::mem::swap(current, next_set);
        }
        best
    }
}

/// Reusable NFA-simulation buffers: `find_at` allocates one `Scratch` and
/// reuses it for every candidate start position, so scanning a long text
/// costs zero allocations per position.
struct Scratch {
    current: Vec<bool>,
    next: Vec<bool>,
    stack: Vec<u32>,
}

impl Scratch {
    fn for_states(n: usize) -> Self {
        Scratch { current: vec![false; n], next: vec![false; n], stack: Vec::new() }
    }
}

/// The set of bytes a match can start with: the char edges reachable from
/// `start` through epsilon/anchor edges (anchors treated as passable —
/// an over-approximation only ever *adds* candidate bytes, never drops a
/// real match). Returns `None` — prefilter off — when the set is not a
/// clean ASCII byte set: the pattern can match empty (accept reachable
/// without consuming), or can open with `.`, a negated class, or a
/// non-ASCII char.
fn compute_first_bytes(
    states: &[State],
    classes: &[ClassSet],
    start: u32,
    accept: u32,
    ci: bool,
) -> Option<Box<[bool; 256]>> {
    let mut table = [false; 256];
    let mut seen = vec![false; states.len()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    while let Some(s) = stack.pop() {
        if s == accept {
            return None;
        }
        for (edge, to) in &states[s as usize].edges {
            match edge {
                Edge::Epsilon | Edge::Anchor(_) => {
                    if !seen[*to as usize] {
                        seen[*to as usize] = true;
                        stack.push(*to);
                    }
                }
                Edge::Any => return None,
                Edge::Char(c) => {
                    if !c.is_ascii() {
                        return None;
                    }
                    table[*c as usize] = true;
                    if ci {
                        let f = flip_case(*c);
                        if f.is_ascii() {
                            table[f as usize] = true;
                        }
                    }
                }
                Edge::Class(id) => {
                    let set = &classes[*id as usize];
                    if set.negated || set.ranges.iter().any(|&(lo, hi)| !lo.is_ascii() || !hi.is_ascii())
                    {
                        return None;
                    }
                    for b in 0..128u8 {
                        if set.matches(b as char, ci) {
                            table[b as usize] = true;
                        }
                    }
                }
            }
        }
    }
    Some(Box::new(table))
}

fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn chars_eq(a: char, b: char, ci: bool) -> bool {
    a == b || (ci && (flip_case(a) == b || a == flip_case(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(text).map(|m| (m.start, m.end))
    }

    #[test]
    fn literal_match() {
        assert_eq!(m("cat", "the cat sat"), Some((4, 7)));
        assert_eq!(m("dog", "the cat sat"), None);
    }

    #[test]
    fn dot_matches_any_but_newline() {
        assert_eq!(m("c.t", "cut"), Some((0, 3)));
        assert_eq!(m("c.t", "c\nt"), None);
    }

    #[test]
    fn star_is_longest() {
        assert_eq!(m("ab*", "abbbbc"), Some((0, 5)));
        assert_eq!(m("ab*", "ac"), Some((0, 1)));
    }

    #[test]
    fn plus_requires_one() {
        assert_eq!(m("ab+", "ac"), None);
        assert_eq!(m("ab+", "abb"), Some((0, 3)));
    }

    #[test]
    fn optional() {
        assert_eq!(m("colou?r", "color"), Some((0, 5)));
        assert_eq!(m("colou?r", "colour"), Some((0, 6)));
    }

    #[test]
    fn alternation() {
        let r = Regex::new("not|nor|neither").unwrap();
        assert!(r.is_match("it is not true"));
        assert!(r.is_match("neither here"));
        // without word boundaries, 'not' matches inside 'nothing'
        assert!(r.is_match("nothing to see"));
        assert!(!r.is_match("yes indeed"));
    }

    #[test]
    fn alternation_with_boundaries() {
        let r = Regex::new(r"\b(not|nor|neither)\b").unwrap();
        assert!(r.is_match("it is not true"));
        assert!(!r.is_match("nothing notable"));
        assert!(r.is_match("neither option works"));
    }

    #[test]
    fn char_classes() {
        assert_eq!(m("[a-c]+", "zzabcz"), Some((2, 5)));
        assert_eq!(m("[^a-z]+", "abc123def"), Some((3, 6)));
        assert_eq!(m(r"\d+", "page 42!"), Some((5, 7)));
        assert_eq!(m(r"\w+", "  hello "), Some((2, 7)));
        assert_eq!(m(r"\s+", "a  b"), Some((1, 3)));
    }

    #[test]
    fn negated_shorthands() {
        assert_eq!(m(r"\D+", "123abc456"), Some((3, 6)));
        assert_eq!(m(r"\S+", "  xy "), Some((2, 4)));
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^cat", "cat sat"), Some((0, 3)));
        assert_eq!(m("^cat", "the cat"), None);
        assert_eq!(m("sat$", "cat sat"), Some((4, 7)));
        assert_eq!(m("cat$", "cat sat"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn word_boundary() {
        assert_eq!(m(r"\bcat\b", "a cat."), Some((2, 5)));
        assert_eq!(m(r"\bcat\b", "concatenate"), None);
    }

    #[test]
    fn bounded_repetition() {
        assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,}", "aaaa"), Some((0, 4)));
        assert_eq!(m("a{5}", "aaaa"), None);
    }

    #[test]
    fn groups_and_nesting() {
        assert_eq!(m("(ab)+", "ababab!"), Some((0, 6)));
        assert_eq!(m("(a|b)*c", "abbac"), Some((0, 5)));
        assert_eq!(m("x(y(z)?)?", "xyz"), Some((0, 3)));
        assert_eq!(m("x(y(z)?)?", "x!"), Some((0, 1)));
    }

    #[test]
    fn case_insensitive() {
        let r = Regex::case_insensitive("aspirin").unwrap();
        assert!(r.is_match("Aspirin is a drug"));
        assert!(r.is_match("ASPIRIN"));
        let r = Regex::case_insensitive("[a-z]+").unwrap();
        assert_eq!(r.find("ABC").map(|m| (m.start, m.end)), Some((0, 3)));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let r = Regex::new(r"\d+").unwrap();
        let ms = r.find_iter("12 and 345 and 6");
        let texts: Vec<&str> = ms.iter().map(|m| m.text("12 and 345 and 6")).collect();
        assert_eq!(texts, vec!["12", "345", "6"]);
    }

    #[test]
    fn find_iter_empty_matches_advance() {
        let r = Regex::new("a*").unwrap();
        let ms = r.find_iter("bab");
        // matches: "" at 0, "a" at 1, "" at 3 — must terminate
        assert!(ms.len() >= 2);
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\(p<0\.01\)", "see (p<0.01) here"), Some((4, 12)));
        assert_eq!(m(r"a\\b", r"a\b"), Some((0, 3)));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("a{9999}").is_err());
    }

    #[test]
    fn unicode_haystack() {
        assert_eq!(m("naïve", "a naïve approach"), Some((2, 8)));
        let r = Regex::new(".").unwrap();
        assert!(r.is_match("ü"));
    }

    #[test]
    fn leftmost_longest_semantics() {
        // both branches match at 0; longest wins
        assert_eq!(m("a|ab", "ab"), Some((0, 2)));
        assert_eq!(m("(ab|a)(b?)", "ab"), Some((0, 2)));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (a*)* style blow-up patterns must stay linear-ish.
        let r = Regex::new("(a|a)*b").unwrap();
        let text = "a".repeat(200);
        assert!(!r.is_match(&text)); // no 'b' — classic exponential case for backtrackers
    }

    #[test]
    fn prefilter_agrees_with_unfiltered_scan() {
        let text = "Not a thing; nothing nor anyone — neither, truly. (naïve) Noção x yz";
        for pat in [r"\b(not|nor|neither)\b", r"\([^()]*\)", "n[ao]t", "x ?y"] {
            let filtered = Regex::case_insensitive(pat).unwrap();
            let mut unfiltered = filtered.clone();
            unfiltered.first_bytes = None;
            assert_eq!(
                filtered.find_iter(text),
                unfiltered.find_iter(text),
                "prefiltered scan diverges for {pat}"
            );
        }
    }

    #[test]
    fn prefilter_enabled_only_when_sound() {
        assert!(Regex::new(r"\bcat\b").unwrap().first_bytes.is_some());
        assert!(Regex::new("x?y").unwrap().first_bytes.is_some());
        assert!(Regex::new("a*").unwrap().first_bytes.is_none(), "matches empty");
        assert!(Regex::new(".x").unwrap().first_bytes.is_none(), "starts with any");
        assert!(Regex::new("[^a]b").unwrap().first_bytes.is_none(), "negated class");
        assert!(Regex::new("ärm").unwrap().first_bytes.is_none(), "non-ascii first");
    }

    #[test]
    fn empty_pattern_matches_empty_everywhere() {
        let r = Regex::new("").unwrap();
        assert!(r.first_bytes.is_none(), "empty-match-capable pattern must not prefilter");
        assert!(r.is_match(""));
        assert!(r.is_match("abc"));
        let m = r.find("abc").unwrap();
        assert_eq!((m.start, m.end), (0, 0));
        // one empty match per char position; the end-of-text position
        // terminates the scan instead of looping
        let all = r.find_iter("aéb");
        assert!(all.iter().all(Match::is_empty));
        assert_eq!(
            all.iter().map(|m| m.start).collect::<Vec<_>>(),
            vec![0, 1, 3],
            "empty matches advance by whole chars"
        );
    }

    #[test]
    fn non_ascii_first_byte_disables_prefilter_but_still_matches() {
        for pat in ["ärm", "é+e", "√x"] {
            let r = Regex::new(pat).unwrap();
            assert!(r.first_bytes.is_none(), "non-ASCII first byte must not prefilter: {pat}");
        }
        assert_eq!(
            Regex::new("ärm").unwrap().find("wärme").map(|m| (m.start, m.end)),
            Some((1, 5)),
            "match spans the multi-byte char"
        );
        assert!(Regex::new("é+e").unwrap().is_match("créée"));
        // case folding is full Unicode: Ä folds to ä
        assert!(Regex::case_insensitive("ärm").unwrap().is_match("ÄRM"));
    }

    #[test]
    fn prefilter_differential_on_random_strings() {
        // Deterministic LCG (no process-global randomness): the prefilter
        // is an optimization and must be invisible on every input.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let palette: Vec<char> =
            "abxyn t()-.|ÄäéñÅ√\u{0}\u{7f}π".chars().collect();
        let patterns = [
            r"\b(not|nor)\b", // prefilterable word alternation
            "n[ao]t",         // prefilterable class
            "x ?y",           // optional interior
            "a*b",            // leading star (no prefilter)
            ".t",             // leading any (no prefilter)
            "[^a]b",          // negated class (no prefilter)
            "é?x",            // optional non-ASCII head (no prefilter)
        ];
        let regexes: Vec<(Regex, Regex)> = patterns
            .iter()
            .map(|p| {
                let filtered = Regex::case_insensitive(p).unwrap();
                let mut unfiltered = filtered.clone();
                unfiltered.first_bytes = None;
                (filtered, unfiltered)
            })
            .collect();
        for _ in 0..200 {
            let len = next(24);
            let text: String = (0..len).map(|_| palette[next(palette.len())]).collect();
            for ((filtered, unfiltered), pat) in regexes.iter().zip(patterns) {
                assert_eq!(
                    filtered.find_iter(&text),
                    unfiltered.find_iter(&text),
                    "prefilter diverges for {pat:?} on {text:?}"
                );
            }
        }
    }

    #[test]
    fn dictionary_variant_pattern() {
        // The shape dictionary terms are expanded into (see websift-ner).
        let r = Regex::case_insensitive(r"\bBRCA[- ]?1\b").unwrap();
        assert!(r.is_match("brca1 mutation"));
        assert!(r.is_match("BRCA-1 mutation"));
        assert!(r.is_match("BRCA 1 mutation"));
        assert!(!r.is_match("BRCA11"));
    }
}
