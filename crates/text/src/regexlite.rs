//! A small regular-expression engine (Thompson NFA construction, linear-time
//! simulation) built from scratch.
//!
//! The paper's pipeline uses regular expressions pervasively: the linguistic
//! annotators find negation/pronouns/parentheses "using different sets of
//! regular expressions", and the dictionary-based entity taggers transform
//! "each dictionary term into a regular expression" to absorb surface
//! variation. This engine supports the constructs those uses need:
//!
//! - literals and escapes (`\.` etc.), `.` (any char)
//! - character classes `[a-z0-9]`, negation `[^…]`, and the shorthands
//!   `\d \w \s \D \W \S`
//! - grouping `( … )`, alternation `|`
//! - quantifiers `*`, `+`, `?` and bounded `{m}`, `{m,n}`
//! - anchors `^`, `$` and the word boundary `\b`
//! - case-insensitive matching via [`Regex::case_insensitive`]
//!
//! Matching is leftmost-longest via breadth-first NFA simulation: worst case
//! `O(len(text) · states)`, no exponential blow-up on pathological patterns.

use crate::swar;
use serde::Serialize;
use std::fmt;

/// A parse error with byte position in the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

/// A span of a match in the haystack, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Match {
    pub start: usize,
    pub end: usize,
}

impl Match {
    pub fn text<'a>(&self, haystack: &'a str) -> &'a str {
        &haystack[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

// ---------------------------------------------------------------- AST

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(char),
    Any,
    Class(ClassSet),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat { node: Box<Ast>, min: u32, max: Option<u32> },
    Anchor(AnchorKind),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnchorKind {
    Start,
    End,
    WordBoundary,
}

#[derive(Debug, Clone, Default)]
struct ClassSet {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl ClassSet {
    fn push(&mut self, lo: char, hi: char) {
        self.ranges.push((lo, hi));
    }

    fn push_shorthand(&mut self, c: char) {
        match c {
            'd' => self.push('0', '9'),
            'w' => {
                self.push('a', 'z');
                self.push('A', 'Z');
                self.push('0', '9');
                self.push('_', '_');
            }
            's' => {
                for ws in [' ', '\t', '\n', '\r', '\x0b', '\x0c'] {
                    self.push(ws, ws);
                }
            }
            _ => unreachable!("not a shorthand: {c}"),
        }
    }

    fn matches(&self, c: char, ci: bool) -> bool {
        let hit = |c: char| self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
        let mut m = hit(c);
        if ci && !m {
            m = hit(flip_case(c));
        }
        m != self.negated
    }
}

fn flip_case(c: char) -> char {
    if c.is_uppercase() {
        c.to_lowercase().next().unwrap_or(c)
    } else {
        c.to_uppercase().next().unwrap_or(c)
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn err(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            position: self.pos.min(self.pattern.len()),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse(&mut self) -> Result<Ast, RegexError> {
        let ast = self.parse_alt()?;
        if self.pos != self.chars.len() {
            return Err(self.err(format!("unexpected '{}'", self.chars[self.pos])));
        }
        Ok(ast)
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number()?;
                let max = match self.peek() {
                    Some(',') => {
                        self.bump();
                        if self.peek() == Some('}') {
                            None
                        } else {
                            Some(self.parse_number()?)
                        }
                    }
                    _ => Some(min),
                };
                if self.bump() != Some('}') {
                    return Err(self.err("expected '}'"));
                }
                if let Some(mx) = max {
                    if mx < min {
                        return Err(self.err("repetition max below min"));
                    }
                    if mx > 512 {
                        return Err(self.err("repetition bound too large (max 512)"));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::Anchor(_)) {
            return Err(self.err("cannot repeat an anchor"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let mut saw = false;
        let mut value: u32 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                saw = true;
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(d))
                    .ok_or_else(|| self.err("number too large"))?;
            } else {
                break;
            }
        }
        if !saw {
            return Err(self.err("expected number"));
        }
        Ok(value)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::Anchor(AnchorKind::Start)),
            Some('$') => Ok(Ast::Anchor(AnchorKind::End)),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier '{c}'"))),
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        let c = self.bump().ok_or_else(|| self.err("trailing backslash"))?;
        Ok(match c {
            'd' | 'w' | 's' => {
                let mut set = ClassSet::default();
                set.push_shorthand(c);
                Ast::Class(set)
            }
            'D' | 'W' | 'S' => {
                let mut set = ClassSet::default();
                set.push_shorthand(c.to_ascii_lowercase());
                set.negated = true;
                Ast::Class(set)
            }
            'b' => Ast::Anchor(AnchorKind::WordBoundary),
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            other => Ast::Char(other),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let mut set = ClassSet::default();
        if self.peek() == Some('^') {
            self.bump();
            set.negated = true;
        }
        let mut first = true;
        loop {
            let c = self.bump().ok_or_else(|| self.err("unclosed character class"))?;
            match c {
                ']' if !first => break,
                '\\' => {
                    let e = self.bump().ok_or_else(|| self.err("trailing backslash"))?;
                    match e {
                        'd' | 'w' | 's' => set.push_shorthand(e),
                        'n' => set.push('\n', '\n'),
                        't' => set.push('\t', '\t'),
                        'r' => set.push('\r', '\r'),
                        other => set.push(other, other),
                    }
                }
                lo => {
                    // possible range lo-hi
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump(); // '-'
                        let hi = self.bump().ok_or_else(|| self.err("unclosed range"))?;
                        if hi < lo {
                            return Err(self.err("invalid range (hi < lo)"));
                        }
                        set.push(lo, hi);
                    } else {
                        set.push(lo, lo);
                    }
                }
            }
            first = false;
        }
        Ok(Ast::Class(set))
    }
}

// ---------------------------------------------------------------- NFA

#[derive(Debug, Clone)]
enum Edge {
    Char(char),
    Any,
    Class(u32),
    Epsilon,
    Anchor(AnchorKind),
}

#[derive(Debug, Clone, Default)]
struct State {
    edges: Vec<(Edge, u32)>,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    classes: Vec<ClassSet>,
    start: u32,
    accept: u32,
    case_insensitive: bool,
    pattern: String,
    /// Scan acceleration computed at compile time; `None` (the pattern
    /// can match empty, or can start with `.`/a negated class/a
    /// non-ASCII char) disables all prefilters. See [`Prefilter`].
    prefilter: Option<Prefilter>,
}

/// Scan-acceleration layers for the unanchored byte scan in `find_at`.
/// Every layer is an over-approximation: a skipped position provably
/// cannot start a match, and anything uncertain falls through to the NFA.
#[derive(Debug, Clone)]
struct Prefilter {
    /// Bytes a match can possibly start with. Entries are either ASCII or
    /// UTF-8 lead bytes, so every marked position is a char boundary.
    table: Box<[bool; 256]>,
    /// The distinct ASCII candidate bytes when that set is small enough
    /// (≤ [`swar::MAX_NEEDLES`]) to skip with a `u64` SWAR word loop
    /// instead of a per-byte table probe.
    rare: Option<Vec<u8>>,
    /// The table also marks non-ASCII (UTF-8 lead) bytes, so a SWAR skip
    /// must additionally stop at any high byte and re-sync on the table.
    rare_high: bool,
    /// Every path to the first consumed char passes a `\b`, and every
    /// ASCII candidate byte is a word byte — so an ASCII candidate whose
    /// previous byte is an ASCII word byte cannot start a match.
    /// (Non-ASCII candidates always fall through to the NFA.)
    word_start: bool,
    /// (first byte, second byte) viability bitset; `None` when every row
    /// would be all-ones and the check could never skip anything.
    pairs: Option<PairFilter>,
}

/// Second-byte bitsets per first byte. A row is all-ones when the second
/// position is statically unfilterable; `one_char` marks first bytes that
/// can complete a match on their own, which also keeps the end-of-text
/// candidate (no second byte at all) sound.
#[derive(Debug, Clone)]
struct PairFilter {
    rows: Box<[[u64; 4]; 256]>,
    one_char: Box<[bool; 256]>,
}

impl PairFilter {
    #[inline(always)]
    fn allows(&self, b0: u8, b1: u8) -> bool {
        self.rows[b0 as usize][(b1 >> 6) as usize] & (1u64 << (b1 & 63)) != 0
    }
}

struct Compiler {
    states: Vec<State>,
    classes: Vec<ClassSet>,
}

impl Compiler {
    fn push_state(&mut self) -> u32 {
        self.states.push(State::default());
        (self.states.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, edge: Edge, to: u32) {
        self.states[from as usize].edges.push((edge, to));
    }

    /// Compiles `ast` into a fragment, returning (entry, exit).
    fn compile(&mut self, ast: &Ast) -> (u32, u32) {
        match ast {
            Ast::Empty => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Epsilon, e);
                (s, e)
            }
            Ast::Char(c) => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Char(*c), e);
                (s, e)
            }
            Ast::Any => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Any, e);
                (s, e)
            }
            Ast::Class(set) => {
                let s = self.push_state();
                let e = self.push_state();
                self.classes.push(set.clone());
                let id = (self.classes.len() - 1) as u32;
                self.edge(s, Edge::Class(id), e);
                (s, e)
            }
            Ast::Anchor(kind) => {
                let s = self.push_state();
                let e = self.push_state();
                self.edge(s, Edge::Anchor(*kind), e);
                (s, e)
            }
            Ast::Concat(items) => {
                let mut entry = None;
                let mut prev_exit: Option<u32> = None;
                for item in items {
                    let (s, e) = self.compile(item);
                    if let Some(pe) = prev_exit {
                        self.edge(pe, Edge::Epsilon, s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(e);
                }
                (entry.unwrap(), prev_exit.unwrap())
            }
            Ast::Alt(branches) => {
                let s = self.push_state();
                let e = self.push_state();
                for b in branches {
                    let (bs, be) = self.compile(b);
                    self.edge(s, Edge::Epsilon, bs);
                    self.edge(be, Edge::Epsilon, e);
                }
                (s, e)
            }
            Ast::Repeat { node, min, max } => {
                // Expand: min mandatory copies, then either a star (max None)
                // or (max - min) optional copies.
                let s = self.push_state();
                let mut cur = s;
                for _ in 0..*min {
                    let (ns, ne) = self.compile(node);
                    self.edge(cur, Edge::Epsilon, ns);
                    cur = ne;
                }
                match max {
                    None => {
                        let (ns, ne) = self.compile(node);
                        let exit = self.push_state();
                        self.edge(cur, Edge::Epsilon, ns);
                        self.edge(cur, Edge::Epsilon, exit);
                        self.edge(ne, Edge::Epsilon, ns);
                        self.edge(ne, Edge::Epsilon, exit);
                        (s, exit)
                    }
                    Some(mx) => {
                        let exit = self.push_state();
                        self.edge(cur, Edge::Epsilon, exit);
                        for _ in *min..*mx {
                            let (ns, ne) = self.compile(node);
                            self.edge(cur, Edge::Epsilon, ns);
                            self.edge(ne, Edge::Epsilon, exit);
                            cur = ne;
                        }
                        (s, exit)
                    }
                }
            }
        }
    }
}

impl Regex {
    /// Compiles a case-sensitive regex.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile(pattern, false)
    }

    /// Compiles a case-insensitive regex.
    pub fn case_insensitive(pattern: &str) -> Result<Regex, RegexError> {
        Regex::compile(pattern, true)
    }

    fn compile(pattern: &str, ci: bool) -> Result<Regex, RegexError> {
        let ast = Parser::new(pattern).parse()?;
        let mut compiler = Compiler {
            states: Vec::new(),
            classes: Vec::new(),
        };
        let (start, accept) = compiler.compile(&ast);
        let prefilter = Prefilter::build(&compiler.states, &compiler.classes, start, accept, ci);
        Ok(Regex {
            states: compiler.states,
            classes: compiler.classes,
            start,
            accept,
            case_insensitive: ci,
            pattern: pattern.to_string(),
            prefilter,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of NFA states (a proxy for pattern complexity; the dictionary
    /// taggers use it for their memory model).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Does the regex match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Leftmost-longest match.
    pub fn find(&self, text: &str) -> Option<Match> {
        self.find_at(text, 0)
    }

    /// Leftmost-longest match starting at or after byte `from` (which must
    /// lie on a char boundary).
    pub fn find_at(&self, text: &str, from: usize) -> Option<Match> {
        Scratch::with(self.states.len(), |scratch| {
            self.find_at_with(text, from, scratch)
        })
    }

    fn find_at_with(&self, text: &str, from: usize, scratch: &mut Scratch) -> Option<Match> {
        let Some(pf) = &self.prefilter else {
            let mut start = from;
            loop {
                if let Some(end) = self.match_len(text, start, scratch) {
                    return Some(Match { start, end });
                }
                match text[start..].chars().next() {
                    Some(c) => start += c.len_utf8(),
                    None => return None,
                }
            }
        };
        // Candidate bytes are ASCII or UTF-8 lead bytes, so every marked
        // position is a char boundary, and a filtered regex cannot match
        // empty — the end-of-text position needs no attempt.
        let bytes = text.as_bytes();
        let n = bytes.len();
        let mut i = from;
        // lint:hot_loop(begin): regexlite prefiltered scan loop
        while i < n {
            i = match &pf.rare {
                Some(needles) => {
                    let j = swar::find_one_of_or_high(bytes, i, needles, pf.rare_high);
                    swar::find_in_table(bytes, j, &pf.table)
                }
                None => swar::find_in_table(bytes, i, &pf.table),
            };
            if i >= n {
                return None;
            }
            let b = bytes[i];
            // An ASCII candidate is a word byte (word_start guarantees it);
            // a word byte right before it makes the leading `\b` fail.
            if pf.word_start && b.is_ascii() && i > 0 && is_ascii_word(bytes[i - 1]) {
                i += 1;
                continue;
            }
            if let Some(pairs) = &pf.pairs {
                let viable = match bytes.get(i + 1) {
                    Some(&b1) => pairs.allows(b, b1),
                    None => pairs.one_char[b as usize],
                };
                if !viable {
                    i += 1;
                    continue;
                }
            }
            if let Some(end) = self.match_len(text, i, scratch) {
                return Some(Match { start: i, end });
            }
            i += 1;
        }
        // lint:hot_loop(end)
        None
    }

    /// All non-overlapping leftmost-longest matches. One `Scratch` serves
    /// the whole scan, so repeated `find_at` restarts stay allocation-free.
    pub fn find_iter(&self, text: &str) -> Vec<Match> {
        Scratch::with(self.states.len(), |scratch| self.find_iter_with(text, scratch))
    }

    fn find_iter_with(&self, text: &str, scratch: &mut Scratch) -> Vec<Match> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos <= text.len() {
            match self.find_at_with(text, pos, scratch) {
                Some(m) => {
                    let next = if m.is_empty() {
                        // advance one char past an empty match
                        match text[m.end..].chars().next() {
                            Some(c) => m.end + c.len_utf8(),
                            None => break,
                        }
                    } else {
                        m.end
                    };
                    out.push(m);
                    pos = next;
                }
                None => break,
            }
        }
        out
    }

    /// Longest match length anchored at byte `start`; `None` if no match.
    /// State sets live in `scratch` as sparse active-state lists with an
    /// epoch-stamped membership array, so a candidate position costs
    /// proportional to the states it actually touches — not the whole NFA
    /// — and the per-position caller (`find_at`) pays no allocations.
    fn match_len(&self, text: &str, start: usize, scratch: &mut Scratch) -> Option<usize> {
        let Scratch { current, next: next_list, mark, epoch, stack, start_cache } = scratch;
        let mut best: Option<usize> = None;

        let prev_char_at = |pos: usize| -> Option<char> { text[..pos].chars().next_back() };

        // epsilon closure given position context; membership is
        // `mark[s] == gen` for the generation the list was built under
        let closure = |list: &mut Vec<u32>,
                       mark: &mut Vec<u32>,
                       gen: u32,
                       stack: &mut Vec<u32>,
                       pos: usize,
                       next: Option<char>,
                       slf: &Regex| {
            let prev = prev_char_at(pos);
            stack.clear();
            stack.extend_from_slice(list);
            while let Some(s) = stack.pop() {
                for (edge, to) in &slf.states[s as usize].edges {
                    let pass = match edge {
                        Edge::Epsilon => true,
                        Edge::Anchor(AnchorKind::Start) => pos == 0,
                        Edge::Anchor(AnchorKind::End) => next.is_none(),
                        Edge::Anchor(AnchorKind::WordBoundary) => {
                            let pw = prev.map(is_word).unwrap_or(false);
                            let nw = next.map(is_word).unwrap_or(false);
                            pw != nw
                        }
                        _ => false,
                    };
                    if pass && mark[*to as usize] != gen {
                        mark[*to as usize] = gen;
                        list.push(*to);
                        stack.push(*to);
                    }
                }
            }
        };

        let mut gen = Scratch::bump(epoch, mark);
        current.clear();
        let mut pos_iter = text[start..]
            .char_indices()
            .map(|(i, c)| (start + i, c))
            .peekable();
        let first_next = pos_iter.peek().map(|&(_, c)| c);
        // The start closure depends on the position only through three
        // booleans (the anchor predicates), so within one scan — where
        // Scratch::with pins the cache to this regex — it is computed at
        // most once per context instead of once per candidate position.
        // Prefiltered scans attempt thousands of candidates per text, and
        // re-walking an alternation's epsilon tree dominated their cost.
        let pw = prev_char_at(start).map(is_word).unwrap_or(false);
        let nw = first_next.map(is_word).unwrap_or(false);
        let ctx = usize::from(start == 0)
            | usize::from(first_next.is_none()) << 1
            | usize::from(pw != nw) << 2;
        match &start_cache[ctx] {
            Some(cached) => {
                for &s in cached {
                    mark[s as usize] = gen;
                }
                current.extend_from_slice(cached);
            }
            None => {
                mark[self.start as usize] = gen;
                current.push(self.start);
                closure(current, mark, gen, stack, start, first_next, self);
                start_cache[ctx] = Some(current.clone());
            }
        }
        if mark[self.accept as usize] == gen {
            best = Some(start);
        }

        while let Some((off, c)) = pos_iter.next() {
            next_list.clear();
            gen = Scratch::bump(epoch, mark);
            for &si in current.iter() {
                for (edge, to) in &self.states[si as usize].edges {
                    let pass = match edge {
                        Edge::Char(pc) => chars_eq(*pc, c, self.case_insensitive),
                        Edge::Any => c != '\n',
                        Edge::Class(id) => {
                            self.classes[*id as usize].matches(c, self.case_insensitive)
                        }
                        _ => false,
                    };
                    if pass && mark[*to as usize] != gen {
                        mark[*to as usize] = gen;
                        next_list.push(*to);
                    }
                }
            }
            if next_list.is_empty() {
                break;
            }
            let after = off + c.len_utf8();
            let lookahead = pos_iter.peek().map(|&(_, nc)| nc);
            closure(next_list, mark, gen, stack, after, lookahead, self);
            if mark[self.accept as usize] == gen {
                best = Some(after);
            }
            std::mem::swap(current, next_list);
        }
        best
    }
}

/// Reusable NFA-simulation buffers: one `Scratch` serves every candidate
/// position of a scan, so long texts cost zero allocations per position.
/// `mark[s] == epoch` is sparse set membership; bumping the epoch empties
/// every set in O(1).
struct Scratch {
    current: Vec<u32>,
    next: Vec<u32>,
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
    /// Start-state epsilon closures keyed by anchor context (pos==0,
    /// at-end, at-word-boundary). Valid only for the regex of the current
    /// `Scratch::with` call, which clears it on entry.
    start_cache: [Option<Vec<u32>>; 8],
}

impl Scratch {
    fn for_states(n: usize) -> Self {
        Scratch {
            current: Vec::new(),
            next: Vec::new(),
            mark: vec![0; n],
            epoch: 0,
            stack: Vec::new(),
            start_cache: Default::default(),
        }
    }

    /// Runs `f` with this thread's shared scratch, grown to cover `n`
    /// states. Callers like per-sentence annotators issue thousands of
    /// short scans; reusing one scratch makes each scan allocation-free.
    /// Fresh `mark` slots start at 0 and `bump` pre-increments, so stamps
    /// left by earlier scans (same or other regexes) can never alias a
    /// live generation.
    fn with<R>(n: usize, f: impl FnOnce(&mut Scratch) -> R) -> R {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Scratch> =
                std::cell::RefCell::new(Scratch::for_states(0));
        }
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            if scratch.mark.len() < n {
                scratch.mark.resize(n, 0);
            }
            scratch.start_cache = Default::default();
            f(scratch)
        })
    }

    /// Next generation stamp; clears `mark` on the (practically
    /// unreachable) wrap so stale stamps can never alias a live set.
    fn bump(epoch: &mut u32, mark: &mut [u32]) -> u32 {
        *epoch = match epoch.checked_add(1) {
            Some(e) => e,
            None => {
                mark.iter_mut().for_each(|m| *m = 0);
                1
            }
        };
        *epoch
    }
}

/// UTF-8 lead bytes: the first byte of every multi-byte char. Under
/// case-insensitive matching a non-ASCII char can fold *to* an ASCII
/// letter (Kelvin sign → 'k', 'İ' → 'i'), so any letter candidate must
/// also admit every lead byte or the prefilter would drop real matches.
const LEAD_BYTES: std::ops::RangeInclusive<u8> = 0xC2..=0xF4;

fn is_ascii_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// States reachable from `seeds` through epsilon and anchor edges, with
/// anchors treated as passable — an over-approximation that only ever
/// *adds* candidate chars downstream, never drops a real match.
fn anchored_closure(states: &[State], seeds: &[u32]) -> Vec<bool> {
    let mut seen = vec![false; states.len()];
    let mut stack: Vec<u32> = seeds.to_vec();
    for &s in seeds {
        seen[s as usize] = true;
    }
    while let Some(s) = stack.pop() {
        for (edge, to) in &states[s as usize].edges {
            if matches!(edge, Edge::Epsilon | Edge::Anchor(_)) && !seen[*to as usize] {
                seen[*to as usize] = true;
                stack.push(*to);
            }
        }
    }
    seen
}

/// The set of bytes a match can start with: the char edges reachable from
/// `start` through epsilon/anchor edges (anchors treated as passable —
/// an over-approximation only ever *adds* candidate bytes, never drops a
/// real match). Returns `None` — prefilter off — when the set is not a
/// clean ASCII byte set: the pattern can match empty (accept reachable
/// without consuming), or can open with `.`, a negated class, or a
/// non-ASCII char. Under `ci`, any letter candidate also marks the UTF-8
/// lead bytes, because a non-ASCII char can case-fold to an ASCII letter.
fn compute_first_bytes(
    states: &[State],
    classes: &[ClassSet],
    start: u32,
    accept: u32,
    ci: bool,
) -> Option<Box<[bool; 256]>> {
    let mut table = [false; 256];
    let mut seen = vec![false; states.len()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    while let Some(s) = stack.pop() {
        if s == accept {
            return None;
        }
        for (edge, to) in &states[s as usize].edges {
            match edge {
                Edge::Epsilon | Edge::Anchor(_) => {
                    if !seen[*to as usize] {
                        seen[*to as usize] = true;
                        stack.push(*to);
                    }
                }
                Edge::Any => return None,
                Edge::Char(c) => {
                    if !c.is_ascii() {
                        return None;
                    }
                    table[*c as usize] = true;
                    if ci {
                        let f = flip_case(*c);
                        if f.is_ascii() {
                            table[f as usize] = true;
                        }
                    }
                }
                Edge::Class(id) => {
                    let set = &classes[*id as usize];
                    if set.negated || set.ranges.iter().any(|&(lo, hi)| !lo.is_ascii() || !hi.is_ascii())
                    {
                        return None;
                    }
                    for b in 0..128u8 {
                        if set.matches(b as char, ci) {
                            table[b as usize] = true;
                        }
                    }
                }
            }
        }
    }
    if ci && (0..128u8).any(|b| table[b as usize] && b.is_ascii_alphabetic()) {
        for b in LEAD_BYTES {
            table[b as usize] = true;
        }
    }
    Some(Box::new(table))
}

impl Prefilter {
    fn build(
        states: &[State],
        classes: &[ClassSet],
        start: u32,
        accept: u32,
        ci: bool,
    ) -> Option<Prefilter> {
        let table = compute_first_bytes(states, classes, start, accept, ci)?;
        let ascii: Vec<u8> = (0..128u8).filter(|&b| table[b as usize]).collect();
        let rare_high = (128..=255u8).any(|b| table[b as usize]);
        let rare = (ascii.len() <= swar::MAX_NEEDLES).then(|| ascii.clone());
        let word_start =
            requires_word_start(states, start) && ascii.iter().all(|&b| is_ascii_word(b));
        let pairs = PairFilter::build(states, classes, start, accept, ci, &table);
        Some(Prefilter { table, rare, rare_high, word_start, pairs })
    }
}

/// True when every path from `start` to its first consumed char crosses a
/// `\b` edge. Traversal passes epsilon and `^`/`$` anchors; reaching any
/// consuming edge without a `\b` disqualifies the whole pattern.
fn requires_word_start(states: &[State], start: u32) -> bool {
    let mut seen = vec![false; states.len()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    while let Some(s) = stack.pop() {
        for (edge, to) in &states[s as usize].edges {
            match edge {
                Edge::Anchor(AnchorKind::WordBoundary) => {}
                Edge::Epsilon | Edge::Anchor(_) => {
                    if !seen[*to as usize] {
                        seen[*to as usize] = true;
                        stack.push(*to);
                    }
                }
                Edge::Char(_) | Edge::Any | Edge::Class(_) => return false,
            }
        }
    }
    true
}

impl PairFilter {
    const ALL: [u64; 4] = [u64::MAX; 4];

    fn build(
        states: &[State],
        classes: &[ClassSet],
        start: u32,
        accept: u32,
        ci: bool,
        table: &[bool; 256],
    ) -> Option<PairFilter> {
        let mut rows = Box::new([[0u64; 4]; 256]);
        let mut one_char = Box::new([false; 256]);
        let s0 = anchored_closure(states, &[start]);
        for (i, _) in s0.iter().enumerate().filter(|(_, &a)| a) {
            for (edge, to) in &states[i].edges {
                // First bytes this consuming edge contributes. `Any` and
                // non-ASCII heads cannot occur here (compute_first_bytes
                // already returned a table), but stay defensive.
                let b0s: Vec<u8> = match edge {
                    Edge::Char(c) if c.is_ascii() => {
                        let mut v = vec![*c as u8];
                        if ci {
                            let f = flip_case(*c);
                            if f.is_ascii() {
                                v.push(f as u8);
                            }
                        }
                        v
                    }
                    Edge::Class(id) => (0..128u8)
                        .filter(|&b| classes[*id as usize].matches(b as char, ci))
                        .collect(),
                    Edge::Char(_) | Edge::Any => return None,
                    Edge::Epsilon | Edge::Anchor(_) => continue,
                };
                let post = anchored_closure(states, &[*to]);
                let one = post[accept as usize];
                let row = if one {
                    // A one-char match makes any (or no) second byte viable.
                    Self::ALL
                } else {
                    second_byte_row(states, classes, &post, ci).unwrap_or(Self::ALL)
                };
                for &b0 in &b0s {
                    for (dst, src) in rows[b0 as usize].iter_mut().zip(row) {
                        *dst |= src;
                    }
                    one_char[b0 as usize] |= one;
                }
            }
        }
        // Lead-byte first candidates (non-ASCII chars that may case-fold
        // into the pattern) are opaque: admit everything after them.
        for b in LEAD_BYTES {
            if table[b as usize] {
                rows[b as usize] = Self::ALL;
                one_char[b as usize] = true;
            }
        }
        // Only worth consulting if some candidate row can actually skip.
        let useful = (0..=255u8)
            .any(|b| table[b as usize] && (rows[b as usize] != Self::ALL || !one_char[b as usize]));
        useful.then_some(PairFilter { rows, one_char })
    }
}

/// Bitset of viable second bytes given the post-first-char state set, or
/// `None` when the second position is statically unfilterable (`.`, a
/// negated or non-ASCII class, or a non-ASCII char under folding).
fn second_byte_row(
    states: &[State],
    classes: &[ClassSet],
    post: &[bool],
    ci: bool,
) -> Option<[u64; 4]> {
    let mut row = [0u64; 4];
    let mut set = |b: u8| row[(b >> 6) as usize] |= 1u64 << (b & 63);
    let mut letters = false;
    for (i, _) in post.iter().enumerate().filter(|(_, &a)| a) {
        for (edge, _) in &states[i].edges {
            match edge {
                Edge::Epsilon | Edge::Anchor(_) => {}
                Edge::Any => return None,
                Edge::Char(c) if c.is_ascii() => {
                    set(*c as u8);
                    letters |= c.is_ascii_alphabetic();
                    if ci {
                        let f = flip_case(*c);
                        if f.is_ascii() {
                            set(f as u8);
                        }
                    }
                }
                Edge::Char(c) => {
                    if ci {
                        // An unknown non-ASCII char could fold into `c`.
                        return None;
                    }
                    let mut buf = [0u8; 4];
                    set(c.encode_utf8(&mut buf).as_bytes()[0]);
                }
                Edge::Class(id) => {
                    let cls = &classes[*id as usize];
                    if cls.negated
                        || cls.ranges.iter().any(|&(lo, hi)| !lo.is_ascii() || !hi.is_ascii())
                    {
                        return None;
                    }
                    for b in 0..128u8 {
                        if cls.matches(b as char, ci) {
                            set(b);
                            letters |= b.is_ascii_alphabetic();
                        }
                    }
                }
            }
        }
    }
    if ci && letters {
        for b in LEAD_BYTES {
            set(b);
        }
    }
    Some(row)
}

fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn chars_eq(a: char, b: char, ci: bool) -> bool {
    a == b || (ci && (flip_case(a) == b || a == flip_case(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(text).map(|m| (m.start, m.end))
    }

    #[test]
    fn literal_match() {
        assert_eq!(m("cat", "the cat sat"), Some((4, 7)));
        assert_eq!(m("dog", "the cat sat"), None);
    }

    #[test]
    fn dot_matches_any_but_newline() {
        assert_eq!(m("c.t", "cut"), Some((0, 3)));
        assert_eq!(m("c.t", "c\nt"), None);
    }

    #[test]
    fn star_is_longest() {
        assert_eq!(m("ab*", "abbbbc"), Some((0, 5)));
        assert_eq!(m("ab*", "ac"), Some((0, 1)));
    }

    #[test]
    fn plus_requires_one() {
        assert_eq!(m("ab+", "ac"), None);
        assert_eq!(m("ab+", "abb"), Some((0, 3)));
    }

    #[test]
    fn optional() {
        assert_eq!(m("colou?r", "color"), Some((0, 5)));
        assert_eq!(m("colou?r", "colour"), Some((0, 6)));
    }

    #[test]
    fn alternation() {
        let r = Regex::new("not|nor|neither").unwrap();
        assert!(r.is_match("it is not true"));
        assert!(r.is_match("neither here"));
        // without word boundaries, 'not' matches inside 'nothing'
        assert!(r.is_match("nothing to see"));
        assert!(!r.is_match("yes indeed"));
    }

    #[test]
    fn alternation_with_boundaries() {
        let r = Regex::new(r"\b(not|nor|neither)\b").unwrap();
        assert!(r.is_match("it is not true"));
        assert!(!r.is_match("nothing notable"));
        assert!(r.is_match("neither option works"));
    }

    #[test]
    fn char_classes() {
        assert_eq!(m("[a-c]+", "zzabcz"), Some((2, 5)));
        assert_eq!(m("[^a-z]+", "abc123def"), Some((3, 6)));
        assert_eq!(m(r"\d+", "page 42!"), Some((5, 7)));
        assert_eq!(m(r"\w+", "  hello "), Some((2, 7)));
        assert_eq!(m(r"\s+", "a  b"), Some((1, 3)));
    }

    #[test]
    fn negated_shorthands() {
        assert_eq!(m(r"\D+", "123abc456"), Some((3, 6)));
        assert_eq!(m(r"\S+", "  xy "), Some((2, 4)));
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^cat", "cat sat"), Some((0, 3)));
        assert_eq!(m("^cat", "the cat"), None);
        assert_eq!(m("sat$", "cat sat"), Some((4, 7)));
        assert_eq!(m("cat$", "cat sat"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn word_boundary() {
        assert_eq!(m(r"\bcat\b", "a cat."), Some((2, 5)));
        assert_eq!(m(r"\bcat\b", "concatenate"), None);
    }

    #[test]
    fn bounded_repetition() {
        assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,}", "aaaa"), Some((0, 4)));
        assert_eq!(m("a{5}", "aaaa"), None);
    }

    #[test]
    fn groups_and_nesting() {
        assert_eq!(m("(ab)+", "ababab!"), Some((0, 6)));
        assert_eq!(m("(a|b)*c", "abbac"), Some((0, 5)));
        assert_eq!(m("x(y(z)?)?", "xyz"), Some((0, 3)));
        assert_eq!(m("x(y(z)?)?", "x!"), Some((0, 1)));
    }

    #[test]
    fn case_insensitive() {
        let r = Regex::case_insensitive("aspirin").unwrap();
        assert!(r.is_match("Aspirin is a drug"));
        assert!(r.is_match("ASPIRIN"));
        let r = Regex::case_insensitive("[a-z]+").unwrap();
        assert_eq!(r.find("ABC").map(|m| (m.start, m.end)), Some((0, 3)));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let r = Regex::new(r"\d+").unwrap();
        let ms = r.find_iter("12 and 345 and 6");
        let texts: Vec<&str> = ms.iter().map(|m| m.text("12 and 345 and 6")).collect();
        assert_eq!(texts, vec!["12", "345", "6"]);
    }

    #[test]
    fn find_iter_empty_matches_advance() {
        let r = Regex::new("a*").unwrap();
        let ms = r.find_iter("bab");
        // matches: "" at 0, "a" at 1, "" at 3 — must terminate
        assert!(ms.len() >= 2);
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\(p<0\.01\)", "see (p<0.01) here"), Some((4, 12)));
        assert_eq!(m(r"a\\b", r"a\b"), Some((0, 3)));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("a{9999}").is_err());
    }

    #[test]
    fn unicode_haystack() {
        assert_eq!(m("naïve", "a naïve approach"), Some((2, 8)));
        let r = Regex::new(".").unwrap();
        assert!(r.is_match("ü"));
    }

    #[test]
    fn leftmost_longest_semantics() {
        // both branches match at 0; longest wins
        assert_eq!(m("a|ab", "ab"), Some((0, 2)));
        assert_eq!(m("(ab|a)(b?)", "ab"), Some((0, 2)));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (a*)* style blow-up patterns must stay linear-ish.
        let r = Regex::new("(a|a)*b").unwrap();
        let text = "a".repeat(200);
        assert!(!r.is_match(&text)); // no 'b' — classic exponential case for backtrackers
    }

    #[test]
    fn prefilter_agrees_with_unfiltered_scan() {
        let text = "Not a thing; nothing nor anyone — neither, truly. (naïve) Noção x yz";
        for pat in [r"\b(not|nor|neither)\b", r"\([^()]*\)", "n[ao]t", "x ?y"] {
            let filtered = Regex::case_insensitive(pat).unwrap();
            let mut unfiltered = filtered.clone();
            unfiltered.prefilter = None;
            assert_eq!(
                filtered.find_iter(text),
                unfiltered.find_iter(text),
                "prefiltered scan diverges for {pat}"
            );
        }
    }

    #[test]
    fn prefilter_enabled_only_when_sound() {
        assert!(Regex::new(r"\bcat\b").unwrap().prefilter.is_some());
        assert!(Regex::new("x?y").unwrap().prefilter.is_some());
        assert!(Regex::new("a*").unwrap().prefilter.is_none(), "matches empty");
        assert!(Regex::new(".x").unwrap().prefilter.is_none(), "starts with any");
        assert!(Regex::new("[^a]b").unwrap().prefilter.is_none(), "negated class");
        assert!(Regex::new("ärm").unwrap().prefilter.is_none(), "non-ascii first");
    }

    #[test]
    fn empty_pattern_matches_empty_everywhere() {
        let r = Regex::new("").unwrap();
        assert!(r.prefilter.is_none(), "empty-match-capable pattern must not prefilter");
        assert!(r.is_match(""));
        assert!(r.is_match("abc"));
        let m = r.find("abc").unwrap();
        assert_eq!((m.start, m.end), (0, 0));
        // one empty match per char position; the end-of-text position
        // terminates the scan instead of looping
        let all = r.find_iter("aéb");
        assert!(all.iter().all(Match::is_empty));
        assert_eq!(
            all.iter().map(|m| m.start).collect::<Vec<_>>(),
            vec![0, 1, 3],
            "empty matches advance by whole chars"
        );
    }

    #[test]
    fn non_ascii_first_byte_disables_prefilter_but_still_matches() {
        for pat in ["ärm", "é+e", "√x"] {
            let r = Regex::new(pat).unwrap();
            assert!(r.prefilter.is_none(), "non-ASCII first byte must not prefilter: {pat}");
        }
        assert_eq!(
            Regex::new("ärm").unwrap().find("wärme").map(|m| (m.start, m.end)),
            Some((1, 5)),
            "match spans the multi-byte char"
        );
        assert!(Regex::new("é+e").unwrap().is_match("créée"));
        // case folding is full Unicode: Ä folds to ä
        assert!(Regex::case_insensitive("ärm").unwrap().is_match("ÄRM"));
    }

    #[test]
    fn prefilter_differential_on_random_strings() {
        // Deterministic LCG (no process-global randomness): the prefilter
        // is an optimization and must be invisible on every input.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let palette: Vec<char> =
            "abxyn t()-.|ÄäéñÅ√\u{0}\u{7f}π".chars().collect();
        let patterns = [
            r"\b(not|nor)\b", // prefilterable word alternation
            "n[ao]t",         // prefilterable class
            "x ?y",           // optional interior
            "a*b",            // leading star (no prefilter)
            ".t",             // leading any (no prefilter)
            "[^a]b",          // negated class (no prefilter)
            "é?x",            // optional non-ASCII head (no prefilter)
        ];
        let regexes: Vec<(Regex, Regex)> = patterns
            .iter()
            .map(|p| {
                let filtered = Regex::case_insensitive(p).unwrap();
                let mut unfiltered = filtered.clone();
                unfiltered.prefilter = None;
                (filtered, unfiltered)
            })
            .collect();
        for _ in 0..200 {
            let len = next(24);
            let text: String = (0..len).map(|_| palette[next(palette.len())]).collect();
            for ((filtered, unfiltered), pat) in regexes.iter().zip(patterns) {
                assert_eq!(
                    filtered.find_iter(&text),
                    unfiltered.find_iter(&text),
                    "prefilter diverges for {pat:?} on {text:?}"
                );
            }
        }
    }

    #[test]
    fn dictionary_variant_pattern() {
        // The shape dictionary terms are expanded into (see websift-ner).
        let r = Regex::case_insensitive(r"\bBRCA[- ]?1\b").unwrap();
        assert!(r.is_match("brca1 mutation"));
        assert!(r.is_match("BRCA-1 mutation"));
        assert!(r.is_match("BRCA 1 mutation"));
        assert!(!r.is_match("BRCA11"));
    }

    #[test]
    fn prefilter_layers_enabled_as_expected() {
        // Negation annotator: two ASCII candidates → SWAR skip, leading \b
        // over word chars → word-start skip, narrow second chars → pairs.
        let neg = Regex::case_insensitive(r"\b(not|nor|neither)\b").unwrap();
        let pf = neg.prefilter.as_ref().unwrap();
        assert_eq!(pf.rare.as_deref(), Some(&b"Nn"[..]));
        assert!(pf.rare_high, "ci letters admit folding non-ASCII heads");
        assert!(pf.word_start);
        let pairs = pf.pairs.as_ref().unwrap();
        assert!(pairs.allows(b'n', b'o') && pairs.allows(b'N', b'E'));
        assert!(!pairs.allows(b'n', b'n') && !pairs.allows(b'n', b'x'));
        assert!(!pairs.one_char[b'n' as usize]);

        // Parentheses annotator: single non-letter candidate, no \b.
        let par = Regex::new(r"\([^()]*\)").unwrap();
        let pf = par.prefilter.as_ref().unwrap();
        assert_eq!(pf.rare.as_deref(), Some(&b"("[..]));
        assert!(!pf.rare_high && !pf.word_start);

        // Pronouns: dense letter head → table scan; "i" alone can match,
        // so its row is wide open and end-of-text stays a candidate.
        let pro = Regex::case_insensitive(r"\b(i|it|they|them)\b").unwrap();
        let pf = pro.prefilter.as_ref().unwrap();
        assert!(pf.rare.is_none() && pf.word_start);
        let pairs = pf.pairs.as_ref().unwrap();
        assert!(pairs.one_char[b'i' as usize] && pairs.allows(b'i', b'x'));
        assert!(!pairs.one_char[b't' as usize]);
        assert!(pairs.allows(b't', b'h') && !pairs.allows(b't', b'o'));

        // No \b before the first char → no word-start skip.
        assert!(!Regex::new("cat").unwrap().prefilter.unwrap().word_start);
        // \b before a non-word first char must not enable the skip either.
        assert!(!Regex::new(r"\b\(x\)").unwrap().prefilter.unwrap().word_start);
    }

    #[test]
    fn ci_prefilter_keeps_non_ascii_case_folds() {
        // Kelvin sign folds to 'k' and dotted capital I folds to 'i': the
        // prefilter must leave room for multi-byte chars that case-fold
        // into an ASCII pattern, at the first *and* second position.
        let k = Regex::case_insensitive("kelvin").unwrap();
        assert!(k.prefilter.is_some());
        assert!(k.is_match("degrees \u{212A}elvin"));
        let it = Regex::case_insensitive(r"\bit\b").unwrap();
        assert!(it.is_match("\u{130}t works"));
        let ski = Regex::case_insensitive("ski").unwrap();
        assert!(ski.is_match("s\u{212A}i"), "fold at the second byte");
        // Case-sensitive stays exact: no fold, no match.
        assert!(!Regex::new("kelvin").unwrap().is_match("\u{212A}elvin"));
    }

    #[test]
    fn word_start_skip_boundary_cases() {
        let r = Regex::case_insensitive(r"\b(not|nor)\b").unwrap();
        // Position 0 has no previous byte: never skipped.
        assert_eq!(r.find("not now").map(|m| (m.start, m.end)), Some((0, 3)));
        // Previous char non-ASCII and non-word: \b holds.
        assert_eq!(r.find("é not").map(|m| m.start), Some(3));
        // Previous char non-ASCII *word* char: the skip must not fire on
        // the ASCII-prev fast test, and the NFA must still reject.
        assert!(!r.is_match("änot"));
        assert!(!r.is_match("xnot ynor_"));
        // One-char haystack tail: pair end-of-text check.
        assert!(!r.is_match("n"));
        assert!(Regex::case_insensitive(r"\b(i|it)\b").unwrap().is_match("i"));
    }

    #[test]
    fn prefilter_differential_with_folding_chars() {
        // Same LCG differential as above, with a palette of chars that
        // case-fold across the ASCII boundary (K → k, İ → i, ſ → S) plus
        // word/non-word neighbors that exercise the \b skip and the pair
        // table around multi-byte boundaries.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let palette: Vec<char> = "intoheyK\u{212A}\u{130}\u{17f}_ .()ä√".chars().collect();
        let patterns = [
            r"\b(not|nor|neither)\b",
            r"\b(i|it|they|them|this|that)\b",
            r"\([^()]*\)",
            r"\bski\b",
            "kelvin",
            "to{1,2}",
        ];
        let regexes: Vec<(Regex, Regex)> = patterns
            .iter()
            .map(|p| {
                let filtered = Regex::case_insensitive(p).unwrap();
                let mut unfiltered = filtered.clone();
                unfiltered.prefilter = None;
                (filtered, unfiltered)
            })
            .collect();
        for _ in 0..300 {
            let len = next(28);
            let text: String = (0..len).map(|_| palette[next(palette.len())]).collect();
            for ((filtered, unfiltered), pat) in regexes.iter().zip(patterns) {
                assert_eq!(
                    filtered.find_iter(&text),
                    unfiltered.find_iter(&text),
                    "prefilter diverges for {pat:?} on {text:?}"
                );
            }
        }
    }
}
