//! NLP substrate for the websift workspace.
//!
//! The paper's analysis pipeline (its Fig. 2) runs every document through
//! sentence detection, tokenization, linguistic annotation (negation,
//! pronouns, parentheses via regular expressions), and part-of-speech
//! tagging with an order-3 Hidden Markov Model (the MedPost tagger).
//! Upstream, the focused crawler filters non-English pages with a character
//! n-gram language identifier.
//!
//! This crate implements all of those components from scratch:
//!
//! - [`tokenize`] — offset-preserving word/number/punctuation tokenizer;
//! - [`sentence`] — rule-based sentence boundary detection with an
//!   abbreviation list, including the web-text failure mode the paper
//!   describes (pathologically long "sentences" on boilerplate leftovers);
//! - [`ngram`] / [`langid`] — character n-gram profiles and a
//!   Cavnar-Trenkle style language identifier;
//! - [`regexlite`] — a small Thompson-NFA regular expression engine used by
//!   the linguistic annotators and the dictionary variant expansion;
//! - [`pos`] — a trainable order-3 (trigram) HMM part-of-speech tagger with
//!   Viterbi decoding and a suffix-based unknown-word model;
//! - [`swar`] — `u64`-word byte-skipping primitives backing the regexlite
//!   and Aho-Corasick scan prefilters.

pub mod langid;
pub mod ngram;
pub mod pos;
pub mod regexlite;
pub mod sentence;
pub mod swar;
pub mod tokenize;

pub use langid::{Lang, LanguageId};
pub use pos::{PosTag, PosTagger};
pub use regexlite::Regex;
pub use sentence::{Sentence, SentenceSplitter};
pub use tokenize::{tokenize, Token, TokenKind};
