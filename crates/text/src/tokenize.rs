//! Offset-preserving tokenizer.
//!
//! Biomedical text is full of tokens that naive whitespace/punctuation
//! splitting destroys: gene symbols like `BRCA1`, hyphenated drug codes like
//! `GAD-67`, and decimal measurements. The tokenizer below keeps
//! alphanumeric-with-internal-hyphen/period tokens intact while still
//! splitting trailing punctuation, and records byte offsets so downstream
//! annotators can report `start/end` positions exactly as the paper's
//! pipeline does.

use serde::Serialize;

/// Coarse token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TokenKind {
    /// Letters, possibly mixed with digits or internal hyphens (`BRCA1`,
    /// `GAD-67`, `anti-inflammatory`).
    Word,
    /// Pure numbers, including decimals (`3.5`, `1,000`).
    Number,
    /// A single punctuation character.
    Punct,
}

/// A token: byte span into the source text plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Token {
    pub start: usize,
    pub end: usize,
    pub kind: TokenKind,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

/// The char at byte `i` when it is a word char: `Some((utf8_len,
/// is_ascii_digit))`, else `None` (including end of text). The single-byte
/// fast path never decodes; multi-byte chars fall back to `chars()`.
#[inline]
fn word_at(text: &str, i: usize) -> Option<(usize, bool)> {
    let b = *text.as_bytes().get(i)?;
    if b < 0x80 {
        b.is_ascii_alphanumeric().then_some((1, b.is_ascii_digit()))
    } else {
        let c = text[i..].chars().next()?;
        is_word_char(c).then_some((c.len_utf8(), false))
    }
}

/// Tokenizes `text`, returning byte-offset tokens.
///
/// Rules:
/// - maximal runs of alphanumeric characters form `Word`/`Number` tokens;
/// - a joiner character (`-`, `'`, `.`, `,`) *between* two alphanumerics is
///   kept inside the token (`GAD-67`, `3.5`, `Crohn's`);
/// - any other non-whitespace character becomes a single `Punct` token;
/// - whitespace separates tokens and is never part of one.
///
/// The scan is a byte loop: ASCII text (the overwhelmingly common case on
/// web corpora) never materializes chars or a side table, and multi-byte
/// chars are decoded only at the position being looked at.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let n = bytes.len();
    let mut tokens = Vec::new();
    let mut i = 0;
    // lint:hot_loop(begin): tokenizer byte scan loop
    while i < n {
        let b = bytes[i];
        // Classify the char starting at i without decoding ASCII.
        let (char_len, word0) = if b < 0x80 {
            if matches!(b, b'\t'..=b'\r' | b' ') {
                i += 1;
                continue;
            }
            (1, b.is_ascii_alphanumeric().then_some(b.is_ascii_digit()))
        } else {
            let c = text[i..].chars().next().expect("i is on a char boundary");
            if c.is_whitespace() {
                i += c.len_utf8();
                continue;
            }
            (c.len_utf8(), is_word_char(c).then_some(false))
        };
        let Some(first_digit) = word0 else {
            tokens.push(Token { start: i, end: i + char_len, kind: TokenKind::Punct });
            i += char_len;
            continue;
        };
        let start = i;
        let mut all_numeric = first_digit;
        i += char_len;
        loop {
            if let Some((len, digit)) = word_at(text, i) {
                all_numeric &= digit;
                i += len;
                continue;
            }
            let joined = if i < n && is_ascii_joiner(bytes[i]) {
                word_at(text, i + 1)
            } else {
                None
            };
            let Some((len, digit)) = joined else { break };
            // Joiners other than '.'/',' break the "number" property.
            if !matches!(bytes[i], b'.' | b',') {
                all_numeric = false;
            }
            all_numeric &= digit;
            i += 1 + len;
        }
        tokens.push(Token {
            start,
            end: i,
            kind: if all_numeric { TokenKind::Number } else { TokenKind::Word },
        });
    }
    // lint:hot_loop(end)
    tokens
}

fn is_ascii_joiner(b: u8) -> bool {
    matches!(b, b'-' | b'\'' | b'.' | b',')
}

/// Convenience: tokenize and materialize the token strings.
pub fn token_strings(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .map(|t| t.text(text).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        token_strings(s)
    }

    #[test]
    fn splits_simple_sentence() {
        assert_eq!(
            texts("The cat sat."),
            vec!["The", "cat", "sat", "."]
        );
    }

    #[test]
    fn keeps_gene_symbols_intact() {
        assert_eq!(texts("BRCA1 and GAD-67 interact"), vec![
            "BRCA1", "and", "GAD-67", "interact"
        ]);
    }

    #[test]
    fn keeps_decimals_and_classifies_numbers() {
        let toks = tokenize("dose 3.5 mg");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].text("dose 3.5 mg"), "3.5");
        assert_eq!(toks[1].kind, TokenKind::Number);
        assert_eq!(toks[0].kind, TokenKind::Word);
    }

    #[test]
    fn trailing_period_is_separate() {
        let toks = texts("aspirin.");
        assert_eq!(toks, vec!["aspirin", "."]);
    }

    #[test]
    fn apostrophes_inside_words() {
        assert_eq!(texts("Crohn's disease"), vec!["Crohn's", "disease"]);
    }

    #[test]
    fn punctuation_tokens() {
        assert_eq!(texts("(p<0.01)"), vec!["(", "p", "<", "0.01", ")"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn offsets_roundtrip() {
        let s = "Genes (e.g. TP53) regulate cells.";
        for t in tokenize(s) {
            assert!(t.end <= s.len());
            assert!(!t.text(s).is_empty());
            assert!(!t.text(s).chars().any(char::is_whitespace));
        }
    }

    #[test]
    fn unicode_text() {
        let s = "naïve Bayes — 95% précision";
        let toks = texts(s);
        assert!(toks.contains(&"naïve".to_string()));
        assert!(toks.contains(&"précision".to_string()));
    }

    #[test]
    fn number_with_thousands_separator() {
        let toks = tokenize("about 1,000 pages");
        assert_eq!(toks[1].text("about 1,000 pages"), "1,000");
        assert_eq!(toks[1].kind, TokenKind::Number);
    }

    /// True if `c` may join two word characters inside one token
    /// (hyphen in `GAD-67`, apostrophe in `Crohn's`, period in `i.v.`).
    fn is_internal_joiner(c: char) -> bool {
        matches!(c, '-' | '\'' | '.' | ',')
    }

    /// The pre-fast-path implementation, kept verbatim as the semantic
    /// reference: the byte-loop `tokenize` must agree on every input.
    fn reference_tokenize(text: &str) -> Vec<Token> {
        let mut tokens = Vec::new();
        let bytes: Vec<(usize, char)> = text.char_indices().collect();
        let n = bytes.len();
        let mut i = 0;
        while i < n {
            let (off, c) = bytes[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_word_char(c) {
                let start = off;
                let mut all_numeric = c.is_ascii_digit();
                let mut j = i + 1;
                loop {
                    if j < n && is_word_char(bytes[j].1) {
                        all_numeric &= bytes[j].1.is_ascii_digit();
                        j += 1;
                    } else if j + 1 < n
                        && is_internal_joiner(bytes[j].1)
                        && is_word_char(bytes[j + 1].1)
                    {
                        if !matches!(bytes[j].1, '.' | ',') {
                            all_numeric = false;
                        }
                        j += 2;
                        all_numeric &= bytes[j - 1].1.is_ascii_digit();
                    } else {
                        break;
                    }
                }
                let end = if j < n { bytes[j].0 } else { text.len() };
                tokens.push(Token {
                    start,
                    end,
                    kind: if all_numeric { TokenKind::Number } else { TokenKind::Word },
                });
                i = j;
            } else {
                let end = if i + 1 < n { bytes[i + 1].0 } else { text.len() };
                tokens.push(Token { start: off, end, kind: TokenKind::Punct });
                i += 1;
            }
        }
        tokens
    }

    #[test]
    fn byte_loop_agrees_with_reference() {
        // Deterministic LCG over a palette that exercises every branch:
        // joiners at token edges, digits vs letters, multi-byte word and
        // non-word chars, exotic whitespace, and ASCII punctuation.
        let mut state = 0xfeed_f00d_cafe_1234u64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound
        };
        let palette: Vec<char> = "ab1 9.'-,(ü)é\u{0b}\u{a0}√ß中\tx".chars().collect();
        for _ in 0..500 {
            let len = next(32);
            let text: String = (0..len).map(|_| palette[next(palette.len())]).collect();
            assert_eq!(
                tokenize(&text),
                reference_tokenize(&text),
                "byte-loop tokenizer diverges on {text:?}"
            );
        }
        for text in ["GAD-67.", "3.5,", "a-", "-a", "1,000", "x.y.z", "ü-ü", "5'3", "a.\u{a0}b"] {
            assert_eq!(tokenize(text), reference_tokenize(text), "diverges on {text:?}");
        }
    }
}
