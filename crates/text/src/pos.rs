//! Order-3 (trigram) Hidden Markov Model part-of-speech tagger.
//!
//! The paper's pipeline uses MedPost, "a Hidden Markov Model of order
//! three, whose runtime is, in principle, linear in the length of the text
//! being analyzed", but which shows "large runtime fluctuations in practice
//! and even occasional crashes, especially when the tagger is applied to
//! very long sentences". This implementation reproduces the architecture —
//! trigram transitions with interpolation smoothing, lexical emissions with
//! a suffix-based unknown-word model, Viterbi decoding — and the failure
//! mode: sentences beyond a configurable token budget are rejected with
//! [`PosError::SentenceTooLong`], the analogue of the original tool's crash.

use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Simplified MedPost-style tag set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[repr(u8)]
pub enum PosTag {
    Noun = 0,
    ProperNoun = 1,
    Verb = 2,
    Adjective = 3,
    Adverb = 4,
    Pronoun = 5,
    Determiner = 6,
    Preposition = 7,
    Conjunction = 8,
    Number = 9,
    Punctuation = 10,
    Modal = 11,
    Participle = 12,
    Other = 13,
}

/// Number of distinct tags.
pub const TAG_COUNT: usize = 14;

impl PosTag {
    pub fn from_index(i: usize) -> PosTag {
        use PosTag::*;
        match i {
            0 => Noun,
            1 => ProperNoun,
            2 => Verb,
            3 => Adjective,
            4 => Adverb,
            5 => Pronoun,
            6 => Determiner,
            7 => Preposition,
            8 => Conjunction,
            9 => Number,
            10 => Punctuation,
            11 => Modal,
            12 => Participle,
            _ => Other,
        }
    }

    pub fn index(self) -> usize {
        self as usize
    }

    /// All tags, in index order.
    pub fn all() -> [PosTag; TAG_COUNT] {
        std::array::from_fn(PosTag::from_index)
    }
}

/// Errors from tagging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosError {
    /// The sentence exceeds the tagger's token budget. The original
    /// MedPost-class tools crash or OOM here; we fail cleanly so the
    /// data-flow layer can count and skip, as the paper's pipeline had to.
    SentenceTooLong { tokens: usize, limit: usize },
    /// Tagger invoked on an empty token sequence.
    EmptySentence,
}

impl fmt::Display for PosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosError::SentenceTooLong { tokens, limit } => {
                write!(f, "sentence of {tokens} tokens exceeds tagger limit {limit}")
            }
            PosError::EmptySentence => write!(f, "cannot tag an empty sentence"),
        }
    }
}

impl std::error::Error for PosError {}

const BOS: usize = TAG_COUNT; // boundary pseudo-tag for transition contexts
const CONTEXTS: usize = TAG_COUNT + 1;
const MAX_SUFFIX: usize = 4;

/// Interpolation weights for trigram/bigram/unigram transition estimates.
const LAMBDA: (f64, f64, f64) = (0.6, 0.3, 0.1);

/// The trained tagger.
#[derive(Debug, Clone)]
pub struct PosTagger {
    /// log P(t | p2, p1), indexed `[(p2 * CONTEXTS + p1) * TAG_COUNT + t]`.
    trans: Vec<f64>,
    /// log P(w | t) for known (lower-cased) words.
    emit: HashMap<String, [f64; TAG_COUNT]>,
    /// log P(t | suffix) for the unknown-word model.
    suffix: HashMap<String, [f64; TAG_COUNT]>,
    /// log P(t) priors.
    prior: [f64; TAG_COUNT],
    /// Token budget per sentence (the crash threshold).
    max_tokens: usize,
}

impl PosTagger {
    /// Trains a tagger from tagged sentences.
    pub fn train(sentences: &[Vec<(String, PosTag)>]) -> PosTagger {
        let mut tri = HashMap::<(usize, usize, usize), u64>::new();
        let mut bi = HashMap::<(usize, usize), u64>::new();
        let mut uni = [0u64; TAG_COUNT];
        let mut emit_counts = HashMap::<String, [u64; TAG_COUNT]>::new();
        let mut suffix_counts = HashMap::<String, [u64; TAG_COUNT]>::new();
        let mut ctx_bi = HashMap::<(usize, usize), u64>::new(); // C(p2,p1) as context
        let mut ctx_uni = [0u64; CONTEXTS];

        for sent in sentences {
            let mut p2 = BOS;
            let mut p1 = BOS;
            for (word, tag) in sent {
                let t = tag.index();
                *tri.entry((p2, p1, t)).or_insert(0) += 1;
                *ctx_bi.entry((p2, p1)).or_insert(0) += 1;
                if p1 < TAG_COUNT {
                    *bi.entry((p1, t)).or_insert(0) += 1;
                }
                ctx_uni[p1.min(CONTEXTS - 1)] += 1;
                uni[t] += 1;
                let lower = word.to_lowercase();
                emit_counts.entry(lower.clone()).or_insert([0; TAG_COUNT])[t] += 1;
                let chars: Vec<char> = lower.chars().collect();
                for sl in 1..=MAX_SUFFIX.min(chars.len()) {
                    let suf: String = chars[chars.len() - sl..].iter().collect();
                    suffix_counts.entry(suf).or_insert([0; TAG_COUNT])[t] += 1;
                }
                p2 = p1;
                p1 = t;
            }
        }

        let total_tags: u64 = uni.iter().sum::<u64>().max(1);
        let prior: [f64; TAG_COUNT] = std::array::from_fn(|t| {
            ((uni[t] as f64 + 1.0) / (total_tags as f64 + TAG_COUNT as f64)).ln()
        });

        // Interpolated transition table.
        let mut trans = vec![0.0f64; CONTEXTS * CONTEXTS * TAG_COUNT];
        for p2 in 0..CONTEXTS {
            for p1 in 0..CONTEXTS {
                let c_ctx = *ctx_bi.get(&(p2, p1)).unwrap_or(&0);
                for t in 0..TAG_COUNT {
                    let p3 = if c_ctx > 0 {
                        *tri.get(&(p2, p1, t)).unwrap_or(&0) as f64 / c_ctx as f64
                    } else {
                        0.0
                    };
                    let c_p1 = if p1 < TAG_COUNT { uni[p1] } else { ctx_uni[BOS] };
                    let pb = if p1 < TAG_COUNT && c_p1 > 0 {
                        *bi.get(&(p1, t)).unwrap_or(&0) as f64 / c_p1 as f64
                    } else {
                        0.0
                    };
                    let pu = (uni[t] as f64 + 1.0) / (total_tags as f64 + TAG_COUNT as f64);
                    let p = LAMBDA.0 * p3 + LAMBDA.1 * pb + LAMBDA.2 * pu;
                    trans[(p2 * CONTEXTS + p1) * TAG_COUNT + t] = p.max(1e-12).ln();
                }
            }
        }

        // Emissions with add-one smoothing per word (normalized over tags for
        // the word, scaled by tag priors via Bayes when decoding unknowns).
        let emit = emit_counts
            .into_iter()
            .map(|(w, counts)| {
                let arr: [f64; TAG_COUNT] = std::array::from_fn(|t| {
                    let c = counts[t] as f64;
                    let total = uni[t] as f64 + 1.0;
                    ((c + 0.01) / (total + 0.01 * TAG_COUNT as f64)).ln()
                });
                (w, arr)
            })
            .collect();

        let suffix = suffix_counts
            .into_iter()
            .map(|(s, counts)| {
                let total: u64 = counts.iter().sum();
                let arr: [f64; TAG_COUNT] = std::array::from_fn(|t| {
                    ((counts[t] as f64 + 0.5) / (total as f64 + 0.5 * TAG_COUNT as f64)).ln()
                });
                (s, arr)
            })
            .collect();

        PosTagger {
            trans,
            emit,
            suffix,
            prior,
            max_tokens: 500,
        }
    }

    /// Overrides the per-sentence token budget (the crash threshold).
    pub fn with_max_tokens(mut self, max_tokens: usize) -> PosTagger {
        assert!(max_tokens > 0);
        self.max_tokens = max_tokens;
        self
    }

    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }

    /// A tagger trained on the embedded abstract-style corpus — the analogue
    /// of MedPost's model trained on Medline sentences. Built once.
    pub fn pretrained() -> &'static PosTagger {
        static TAGGER: OnceLock<PosTagger> = OnceLock::new();
        TAGGER.get_or_init(|| PosTagger::train(&builtin_training_corpus()))
    }

    /// Log emission scores for `word` over all tags.
    fn emission(&self, word: &str) -> [f64; TAG_COUNT] {
        let lower = word.to_lowercase();
        if let Some(arr) = self.emit.get(&lower) {
            return *arr;
        }
        // Unknown word: suffix model + orthographic cues, converted to an
        // emission-like score by dividing out the tag prior.
        let chars: Vec<char> = lower.chars().collect();
        let mut best: Option<&[f64; TAG_COUNT]> = None;
        for sl in (1..=MAX_SUFFIX.min(chars.len())).rev() {
            let suf: String = chars[chars.len() - sl..].iter().collect();
            if let Some(arr) = self.suffix.get(&suf) {
                best = Some(arr);
                break;
            }
        }
        let mut scores: [f64; TAG_COUNT] = match best {
            Some(arr) => std::array::from_fn(|t| arr[t] - self.prior[t] - 8.0),
            None => [-10.0; TAG_COUNT],
        };
        // Orthographic cues for the biomedical domain.
        let first_upper = word.chars().next().map(char::is_uppercase).unwrap_or(false);
        let has_digit = word.chars().any(|c| c.is_ascii_digit());
        let all_upper = word.len() >= 2 && word.chars().all(|c| c.is_uppercase() || c.is_ascii_digit());
        if all_upper || (first_upper && has_digit) {
            // Gene-symbol-like strings behave as proper nouns.
            scores[PosTag::ProperNoun.index()] += 4.0;
        } else if first_upper {
            scores[PosTag::ProperNoun.index()] += 1.5;
        }
        if has_digit && word.chars().all(|c| c.is_ascii_digit() || c == '.' || c == ',') {
            scores[PosTag::Number.index()] += 8.0;
        }
        if word.len() == 1 && !word.chars().next().unwrap().is_alphanumeric() {
            scores[PosTag::Punctuation.index()] += 8.0;
        }
        scores
    }

    /// Tags a tokenized sentence via Viterbi decoding over tag-pair states.
    ///
    /// Runtime is `O(n · T^3)` with `T = 14` tags — linear in sentence
    /// length. Sentences longer than the configured budget return
    /// [`PosError::SentenceTooLong`].
    pub fn tag(&self, tokens: &[&str]) -> Result<Vec<PosTag>, PosError> {
        if tokens.is_empty() {
            return Err(PosError::EmptySentence);
        }
        if tokens.len() > self.max_tokens {
            return Err(PosError::SentenceTooLong {
                tokens: tokens.len(),
                limit: self.max_tokens,
            });
        }
        let n = tokens.len();
        // Viterbi over states (p1 context, t) where p1 ranges over CONTEXTS.
        // delta[p1][t] = best log-prob of a path ending with tags (p1, t).
        let neg = f64::NEG_INFINITY;
        let mut delta = vec![[neg; TAG_COUNT]; CONTEXTS];
        let mut backptr: Vec<Vec<[u8; TAG_COUNT]>> = Vec::with_capacity(n);

        let e0 = self.emission(tokens[0]);
        for t in 0..TAG_COUNT {
            delta[BOS][t] = self.trans[(BOS * CONTEXTS + BOS) * TAG_COUNT + t] + e0[t];
        }
        backptr.push(vec![[BOS as u8; TAG_COUNT]; CONTEXTS]);

        for (i, token) in tokens.iter().enumerate().skip(1) {
            let e = self.emission(token);
            let mut next = vec![[neg; TAG_COUNT]; CONTEXTS];
            let mut bp = vec![[0u8; TAG_COUNT]; CONTEXTS];
            #[allow(clippy::needless_range_loop)] // p1 indexes delta, bp, and trans at once
            for p1 in 0..CONTEXTS {
                // p1 becomes the "previous" context; iterate possible p2.
                for t in 0..TAG_COUNT {
                    if delta[p1][t] == neg {
                        continue;
                    }
                    // state (p1, t) transitions to (t, t2)
                    for t2 in 0..TAG_COUNT {
                        let score = delta[p1][t]
                            + self.trans[(p1 * CONTEXTS + t) * TAG_COUNT + t2]
                            + e[t2];
                        if score > next[t][t2] {
                            next[t][t2] = score;
                            bp[t][t2] = p1 as u8;
                        }
                    }
                }
            }
            delta = next;
            backptr.push(bp);
            let _ = i;
        }

        // Find best final state.
        let mut best = (0usize, 0usize, neg);
        for (p1, row) in delta.iter().enumerate() {
            for (t, &score) in row.iter().enumerate() {
                if score > best.2 {
                    best = (p1, t, score);
                }
            }
        }
        // Backtrack.
        let mut tags = vec![0usize; n];
        let (mut p1, mut t) = (best.0, best.1);
        tags[n - 1] = t;
        for i in (1..n).rev() {
            let prev = backptr[i][p1][t] as usize;
            if p1 < TAG_COUNT {
                tags[i - 1] = p1;
            }
            t = p1;
            p1 = prev;
        }
        Ok(tags.into_iter().map(PosTag::from_index).collect())
    }

    /// Tags raw text: tokenizes, then tags. Convenience for callers that do
    /// not manage token offsets themselves.
    pub fn tag_str(&self, text: &str) -> Result<Vec<(String, PosTag)>, PosError> {
        let tokens = crate::tokenize::token_strings(text);
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let tags = self.tag(&refs)?;
        Ok(tokens.into_iter().zip(tags).collect())
    }
}

/// Builds the embedded training corpus: abstract-style sentences assembled
/// from tagged templates. This plays the role of the tagged Medline
/// sentences MedPost was trained on.
pub fn builtin_training_corpus() -> Vec<Vec<(String, PosTag)>> {
    use PosTag::*;
    let dets = ["the", "a", "an", "this", "these", "that", "each"];
    let nouns = [
        "patient", "gene", "drug", "disease", "protein", "study", "treatment", "cell", "cancer",
        "therapy", "mutation", "expression", "trial", "dose", "effect", "result", "analysis",
        "receptor", "inhibitor", "tumor", "pathway", "response", "sample", "tissue", "level",
        "group", "mechanism", "function", "activity", "risk",
    ];
    let pnouns = ["TP53", "BRCA1", "Aspirin", "Medline", "KRAS", "EGFR", "Tamoxifen"];
    let verbs = [
        "regulates", "inhibits", "activates", "shows", "causes", "increases", "reduces",
        "affects", "binds", "encodes", "suggests", "indicates", "improves", "induces",
        "demonstrates", "reveals", "confirms",
    ];
    let parts = ["treated", "observed", "associated", "expressed", "measured", "reported",
        "identified", "compared", "analyzed", "evaluated"];
    let adjs = [
        "significant", "clinical", "molecular", "novel", "high", "low", "chronic", "severe",
        "genetic", "therapeutic", "common", "specific", "human", "normal", "effective",
    ];
    let advs = ["significantly", "strongly", "rapidly", "however", "moreover", "often", "also",
        "not"];
    let prons = ["it", "they", "we", "which", "that", "this", "these", "who", "them", "its"];
    let preps = ["in", "of", "with", "for", "by", "on", "to", "from", "at", "during", "between"];
    let conjs = ["and", "or", "but", "nor", "neither", "while", "whereas"];
    let modals = ["may", "can", "could", "should", "might", "must", "will", "would", "is",
        "are", "was", "were", "be", "been", "has", "have", "had"];
    let nums = ["1", "2", "10", "42", "100", "0.5", "3.5", "1000", "2013"];

    // Sentence templates as tag sequences; words are cycled deterministically.
    let templates: Vec<Vec<PosTag>> = vec![
        vec![Determiner, Noun, Verb, Determiner, Adjective, Noun, Punctuation],
        vec![Determiner, Adjective, Noun, Verb, Noun, Preposition, Noun, Punctuation],
        vec![ProperNoun, Verb, Determiner, Noun, Preposition, Determiner, Noun, Punctuation],
        vec![Pronoun, Modal, Verb, Determiner, Noun, Conjunction, Determiner, Noun, Punctuation],
        vec![Determiner, Noun, Modal, Participle, Preposition, Determiner, Adjective, Noun, Punctuation],
        vec![Adverb, Punctuation, Determiner, Noun, Verb, Adjective, Noun, Punctuation],
        vec![Determiner, Noun, Preposition, Number, Noun, Verb, Determiner, Noun, Punctuation],
        vec![ProperNoun, Conjunction, ProperNoun, Verb, Preposition, Determiner, Noun, Punctuation],
        vec![Pronoun, Verb, Conjunction, Pronoun, Modal, Participle, Punctuation],
        vec![Determiner, Noun, Verb, Adverb, Adjective, Preposition, Noun, Punctuation],
        vec![Number, Noun, Modal, Participle, Preposition, Determiner, Noun, Punctuation],
        vec![Determiner, Adjective, Adjective, Noun, Verb, Determiner, Noun, Preposition, ProperNoun, Punctuation],
        vec![Determiner, Noun, Adverb, Verb, Determiner, Noun, Punctuation],
        vec![Determiner, Noun, Verb, Determiner, Noun, Adverb, Punctuation],
    ];

    let puncts = [".", ",", ";", ":", "(", ")"];
    let mut counters = [0usize; TAG_COUNT];
    let mut pick = |tag: PosTag| -> String {
        let i = &mut counters[tag.index()];
        let word = match tag {
            Determiner => dets[*i % dets.len()],
            Noun => nouns[*i % nouns.len()],
            ProperNoun => pnouns[*i % pnouns.len()],
            Verb => verbs[*i % verbs.len()],
            Participle => parts[*i % parts.len()],
            Adjective => adjs[*i % adjs.len()],
            Adverb => advs[*i % advs.len()],
            Pronoun => prons[*i % prons.len()],
            Preposition => preps[*i % preps.len()],
            Conjunction => conjs[*i % conjs.len()],
            Modal => modals[*i % modals.len()],
            Number => nums[*i % nums.len()],
            Punctuation => puncts[*i % puncts.len()],
            Other => "etc",
        };
        *i += 1;
        word.to_string()
    };

    let mut corpus = Vec::new();
    // Repeat templates with rotating vocabulary for coverage.
    for round in 0..40 {
        for template in &templates {
            let mut sent = Vec::with_capacity(template.len());
            for &tag in template {
                let mut word = pick(tag);
                // Capitalize sentence-initial words in half the rounds so the
                // tagger learns both forms.
                if sent.is_empty() && round % 2 == 0 && tag != PosTag::ProperNoun {
                    let mut cs = word.chars();
                    if let Some(f) = cs.next() {
                        word = f.to_uppercase().collect::<String>() + cs.as_str();
                    }
                }
                sent.push((word, tag));
            }
            // End-of-sentence period dominates.
            if let Some(last) = sent.last_mut() {
                if last.1 == PosTag::Punctuation {
                    last.0 = ".".to_string();
                }
            }
            corpus.push(sent);
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_indices_roundtrip() {
        for (i, tag) in PosTag::all().iter().enumerate() {
            assert_eq!(tag.index(), i);
            assert_eq!(PosTag::from_index(i), *tag);
        }
    }

    #[test]
    fn pretrained_tags_known_words() {
        let tagger = PosTagger::pretrained();
        let tags = tagger.tag(&["the", "gene", "regulates", "the", "protein", "."]).unwrap();
        assert_eq!(tags[0], PosTag::Determiner);
        assert_eq!(tags[1], PosTag::Noun);
        assert_eq!(tags[2], PosTag::Verb);
        assert_eq!(tags[4], PosTag::Noun);
        assert_eq!(tags[5], PosTag::Punctuation);
    }

    #[test]
    fn unknown_gene_symbol_is_proper_noun() {
        let tagger = PosTagger::pretrained();
        let tags = tagger.tag(&["MYC42", "inhibits", "the", "tumor", "."]).unwrap();
        assert_eq!(tags[0], PosTag::ProperNoun);
    }

    #[test]
    fn unknown_number_is_number() {
        let tagger = PosTagger::pretrained();
        let tags = tagger.tag(&["dose", "of", "77.5", "units", "."]).unwrap();
        assert_eq!(tags[2], PosTag::Number);
    }

    #[test]
    fn suffix_model_guesses_unseen_adverb() {
        let tagger = PosTagger::pretrained();
        // "dramatically" is unseen; -ally/-lly suffixes come from adverbs.
        let tags = tagger
            .tag(&["the", "treatment", "dramatically", "reduces", "risk", "."])
            .unwrap();
        assert_eq!(tags[2], PosTag::Adverb, "tags = {tags:?}");
    }

    #[test]
    fn empty_sentence_is_error() {
        let tagger = PosTagger::pretrained();
        assert_eq!(tagger.tag(&[]), Err(PosError::EmptySentence));
    }

    #[test]
    fn long_sentence_crashes_cleanly() {
        let tagger = PosTagger::pretrained().clone().with_max_tokens(50);
        let tokens: Vec<&str> = std::iter::repeat_n("word", 51).collect();
        match tagger.tag(&tokens) {
            Err(PosError::SentenceTooLong { tokens: 51, limit: 50 }) => {}
            other => panic!("expected SentenceTooLong, got {other:?}"),
        }
    }

    #[test]
    fn tag_str_pairs_tokens_with_tags() {
        let tagger = PosTagger::pretrained();
        let tagged = tagger.tag_str("The drug inhibits the receptor.").unwrap();
        assert_eq!(tagged.len(), 6);
        assert_eq!(tagged[1].0, "drug");
        assert_eq!(tagged[1].1, PosTag::Noun);
    }

    #[test]
    fn training_accuracy_on_training_data() {
        // The tagger should at least fit its own training corpus well.
        let corpus = builtin_training_corpus();
        let tagger = PosTagger::train(&corpus);
        let mut correct = 0usize;
        let mut total = 0usize;
        for sent in corpus.iter().take(60) {
            let tokens: Vec<&str> = sent.iter().map(|(w, _)| w.as_str()).collect();
            let tags = tagger.tag(&tokens).unwrap();
            for ((_, gold), pred) in sent.iter().zip(&tags) {
                total += 1;
                if gold == pred {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "training-set accuracy {acc}");
    }

    #[test]
    fn runtime_is_linear_in_length() {
        // Sanity check the O(n) claim: doubling length should roughly double
        // time, definitely not quadruple it. We only assert it completes on a
        // large sentence within the budget.
        let tagger = PosTagger::pretrained().clone().with_max_tokens(100_000);
        let tokens: Vec<&str> = std::iter::repeat_n("protein", 5_000).collect();
        let tags = tagger.tag(&tokens).unwrap();
        assert_eq!(tags.len(), 5_000);
    }
}
