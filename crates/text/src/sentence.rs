//! Rule-based sentence boundary detection.
//!
//! The paper's pipeline annotates "sentence and token boundaries" on every
//! document before any further analysis. On clean scientific abstracts this
//! is easy; on web text stripped of markup it is not — the paper observes
//! "very long sentences ... with more than 2000 characters" that are
//! "possibly wrongly extracted by the boilerplate detection ... without any
//! sentence structures", which then destabilize downstream taggers.
//!
//! [`SentenceSplitter`] reproduces both behaviours: a standard
//! abbreviation-aware splitter on punctuated text, and pass-through of huge
//! unpunctuated blobs as single "sentences" (optionally capped with
//! [`SentenceSplitter::with_max_len`], the mitigation the paper discusses).

use serde::Serialize;

/// A sentence: a byte span into the source document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Sentence {
    pub start: usize,
    pub end: usize,
}

impl Sentence {
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Abbreviations after which a period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "al", "fig", "figs", "dr", "prof", "vs", "ca", "approx", "resp", "cf",
    "no", "vol", "pp", "ref", "eq", "sec", "mr", "mrs", "ms", "st", "inc", "ltd", "dept",
];

/// Sentence splitter configuration.
#[derive(Debug, Clone)]
pub struct SentenceSplitter {
    /// If set, sentences longer than this many bytes are force-split at the
    /// nearest whitespace — the "upper limit on sentence length" workaround
    /// the paper proposes (trading information yield for robustness).
    max_len: Option<usize>,
}

impl Default for SentenceSplitter {
    fn default() -> Self {
        SentenceSplitter::new()
    }
}

impl SentenceSplitter {
    /// A splitter with no length cap (the paper's original configuration).
    pub fn new() -> SentenceSplitter {
        SentenceSplitter { max_len: None }
    }

    /// Adds a hard upper bound on sentence length in bytes.
    pub fn with_max_len(max_len: usize) -> SentenceSplitter {
        assert!(max_len > 0, "max_len must be positive");
        SentenceSplitter {
            max_len: Some(max_len),
        }
    }

    /// Splits `text` into sentence spans.
    ///
    /// A sentence ends at `.`, `!`, or `?` when followed by whitespace and
    /// an upper-case letter, digit-start, or end of text — unless the period
    /// terminates a known abbreviation or a single capital letter (middle
    /// initials). Newlines followed by blank lines (paragraph breaks) also
    /// end sentences. Text with no terminators at all comes back as one
    /// giant sentence, exactly the failure mode web text exhibits.
    pub fn split(&self, text: &str) -> Vec<Sentence> {
        let mut sentences = Vec::new();
        let chars: Vec<(usize, char)> = text.char_indices().collect();
        let n = chars.len();
        let mut start = 0usize; // byte offset of current sentence start
        let mut started = false;
        let mut i = 0usize;

        let flush = |sentences: &mut Vec<Sentence>, s: usize, e: usize| {
            let slice = &text[s..e];
            let trimmed_lead = slice.len() - slice.trim_start().len();
            let trimmed_trail = slice.len() - slice.trim_end().len();
            let (s, e) = (s + trimmed_lead, e - trimmed_trail);
            if s < e {
                sentences.push(Sentence { start: s, end: e });
            }
        };

        while i < n {
            let (off, c) = chars[i];
            if !started && !c.is_whitespace() {
                start = off;
                started = true;
            }
            let boundary = match c {
                '.' | '!' | '?' => {
                    // Look ahead: whitespace then capital/digit or EOF.
                    let next_ok = match chars.get(i + 1) {
                        None => true,
                        Some(&(_, nc)) if nc.is_whitespace() => {
                            // find next non-space char
                            let mut k = i + 1;
                            while k < n && chars[k].1.is_whitespace() {
                                k += 1;
                            }
                            k >= n || chars[k].1.is_uppercase() || chars[k].1.is_ascii_digit()
                        }
                        Some(&(_, '"')) | Some(&(_, ')')) => true,
                        _ => false,
                    };
                    if c == '.' && next_ok {
                        !self.ends_with_abbreviation(text, off)
                    } else {
                        next_ok
                    }
                }
                '\n' => {
                    // Paragraph break: blank line.
                    matches!(chars.get(i + 1), Some(&(_, '\n')))
                }
                _ => false,
            };
            if boundary && started {
                let end = off + c.len_utf8();
                flush(&mut sentences, start, end);
                started = false;
            }
            i += 1;
        }
        if started {
            flush(&mut sentences, start, text.len());
        }

        match self.max_len {
            Some(cap) => sentences
                .into_iter()
                .flat_map(|s| split_capped(text, s, cap))
                .collect(),
            None => sentences,
        }
    }

    /// True if the token ending at byte `period_off` (exclusive of the
    /// period itself) is a known abbreviation or a single capital letter.
    fn ends_with_abbreviation(&self, text: &str, period_off: usize) -> bool {
        let before = &text[..period_off];
        let word_start = before
            .rfind(|c: char| !c.is_alphanumeric() && c != '.')
            .map(|p| p + 1)
            .unwrap_or(0);
        let word = &before[word_start..];
        if word.is_empty() {
            return false;
        }
        // single capital letter => middle initial ("John D. Smith")
        if word.chars().count() == 1 && word.chars().next().unwrap().is_uppercase() {
            return true;
        }
        let lower = word.trim_end_matches('.').to_ascii_lowercase();
        ABBREVIATIONS.contains(&lower.as_str())
    }
}

/// Splits one over-long sentence at whitespace so that every piece is at
/// most `cap` bytes (pieces with a single huge token may still exceed it).
fn split_capped(text: &str, s: Sentence, cap: usize) -> Vec<Sentence> {
    if s.len() <= cap {
        return vec![s];
    }
    let mut out = Vec::new();
    let slice = s.text(text);
    let mut piece_start = 0usize;
    let mut last_space = None;
    for (i, c) in slice.char_indices() {
        if c.is_whitespace() {
            last_space = Some(i);
        }
        if i - piece_start >= cap {
            let cut = last_space.filter(|&p| p > piece_start).unwrap_or(i);
            if cut > piece_start {
                out.push(Sentence {
                    start: s.start + piece_start,
                    end: s.start + cut,
                });
                // skip the whitespace char itself when we cut on one
                piece_start = if slice[cut..].starts_with(char::is_whitespace) {
                    cut + 1
                } else {
                    cut
                };
                last_space = None;
            }
        }
    }
    if piece_start < slice.len() {
        let tail = slice[piece_start..].trim_start();
        let lead = slice.len() - piece_start - tail.len();
        if !tail.is_empty() {
            out.push(Sentence {
                start: s.start + piece_start + lead,
                end: s.end,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(text: &str) -> Vec<String> {
        SentenceSplitter::new()
            .split(text)
            .into_iter()
            .map(|s| s.text(text).to_string())
            .collect()
    }

    #[test]
    fn splits_two_sentences() {
        let s = split("The gene regulates cells. It is active in tumors.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "The gene regulates cells.");
        assert_eq!(s[1], "It is active in tumors.");
    }

    #[test]
    fn respects_abbreviations() {
        let s = split("Mutations occur in many genes, e.g. TP53 and BRCA1. They matter.");
        assert_eq!(s.len(), 2, "{s:?}");
    }

    #[test]
    fn respects_et_al() {
        let s = split("As shown by Smith et al. The results hold.");
        // "al." is an abbreviation, so the period does not split.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn middle_initials_do_not_split() {
        let s = split("John D. Smith reported the finding. It was confirmed.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn question_and_exclamation() {
        let s = split("Does aspirin help? Yes! Trials confirm it.");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn unpunctuated_blob_is_one_sentence() {
        let blob = "nav home products contact about privacy terms ".repeat(60);
        let s = SentenceSplitter::new().split(&blob);
        assert_eq!(s.len(), 1);
        assert!(s[0].len() > 2000, "reproduces the >2000-char sentences");
    }

    #[test]
    fn max_len_caps_sentences() {
        let blob = "word ".repeat(600);
        let splitter = SentenceSplitter::with_max_len(200);
        let sents = splitter.split(&blob);
        assert!(sents.len() > 10);
        for s in &sents {
            assert!(s.len() <= 205, "piece of {} bytes", s.len());
            assert!(!s.text(&blob).trim().is_empty());
        }
    }

    #[test]
    fn paragraph_breaks_split() {
        let s = split("First paragraph without period\n\nsecond paragraph");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        let s = split("The dose was 3.5 mg per day. Patients improved.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.5"));
    }

    #[test]
    fn empty_input() {
        assert!(split("").is_empty());
        assert!(split("   \n ").is_empty());
    }

    #[test]
    fn spans_are_within_bounds_and_ordered() {
        let text = "One. Two! Three? Four.";
        let sents = SentenceSplitter::new().split(text);
        let mut prev_end = 0;
        for s in sents {
            assert!(s.start >= prev_end);
            assert!(s.end <= text.len());
            prev_end = s.end;
        }
    }
}
