//! Character n-gram utilities shared by the language identifier and the
//! focused crawler's text models.

use std::collections::HashMap;

/// Extracts all character n-grams of length `n` from `text` (over a
/// lower-cased, whitespace-normalized view with `_` padding at word
/// boundaries, the Cavnar-Trenkle convention).
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram length must be positive");
    let normalized = normalize(text);
    let chars: Vec<char> = normalized.chars().collect();
    if chars.len() < n {
        return Vec::new();
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Lower-cases and replaces whitespace/punctuation runs with single `_`.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('_');
    let mut last_sep = true;
    for c in text.chars() {
        if c.is_alphabetic() {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    if !out.ends_with('_') {
        out.push('_');
    }
    out
}

/// An n-gram frequency profile: the `top_k` most frequent n-grams of sizes
/// `1..=max_n`, ranked — the structure used for out-of-place language
/// identification.
#[derive(Debug, Clone)]
pub struct NgramProfile {
    /// n-gram -> rank (0 = most frequent).
    ranks: HashMap<String, usize>,
    top_k: usize,
}

impl NgramProfile {
    /// Builds a profile from `text` using n-gram lengths `1..=max_n`,
    /// keeping the `top_k` most frequent.
    pub fn build(text: &str, max_n: usize, top_k: usize) -> NgramProfile {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for n in 1..=max_n {
            for g in char_ngrams(text, n) {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        let mut sorted: Vec<(String, u64)> = counts.into_iter().collect();
        // Sort by descending count, then lexicographically for determinism.
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        sorted.truncate(top_k);
        let ranks = sorted
            .into_iter()
            .enumerate()
            .map(|(rank, (g, _))| (g, rank))
            .collect();
        NgramProfile { ranks, top_k }
    }

    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    pub fn rank(&self, gram: &str) -> Option<usize> {
        self.ranks.get(gram).copied()
    }

    /// Cavnar-Trenkle "out-of-place" distance from `other` to `self`:
    /// for each n-gram in `other`, the rank difference in `self`, with a
    /// `top_k` penalty for absent n-grams. Lower = more similar.
    pub fn out_of_place(&self, other: &NgramProfile) -> u64 {
        let mut dist = 0u64;
        for (gram, &rank) in &other.ranks {
            dist += match self.ranks.get(gram) {
                Some(&r) => (r as i64 - rank as i64).unsigned_abs(),
                None => self.top_k as u64,
            };
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_pads_and_lowercases() {
        assert_eq!(normalize("The Cat"), "_the_cat_");
        assert_eq!(normalize("  hi!  "), "_hi_");
        assert_eq!(normalize(""), "_");
    }

    #[test]
    fn ngrams_of_short_text() {
        assert!(char_ngrams("", 3).is_empty());
        let grams = char_ngrams("ab", 3); // "_ab_" -> "_ab", "ab_"
        assert_eq!(grams, vec!["_ab", "ab_"]);
    }

    #[test]
    fn unigrams_cover_all_chars() {
        let grams = char_ngrams("cat", 1);
        assert_eq!(grams, vec!["_", "c", "a", "t", "_"]);
    }

    #[test]
    fn profile_ranks_frequent_first() {
        // 'a' dominates this text.
        let p = NgramProfile::build("aaa aaa aaa b", 1, 10);
        assert_eq!(p.rank("a"), Some(0));
        assert!(p.rank("b").unwrap() > 0);
    }

    #[test]
    fn out_of_place_zero_for_same_profile() {
        let p = NgramProfile::build("the quick brown fox", 3, 100);
        assert_eq!(p.out_of_place(&p), 0);
    }

    #[test]
    fn out_of_place_larger_for_different_language_like_text() {
        let en = NgramProfile::build(
            "the patient was treated with the drug and the disease receded",
            3,
            200,
        );
        let en2 = NgramProfile::build("the drug treats the disease in the patient", 3, 200);
        let xx = NgramProfile::build("zzyzx qqkrr wvvxz yyqzz kkkrr", 3, 200);
        assert!(en.out_of_place(&en2) < en.out_of_place(&xx));
    }

    #[test]
    fn profile_truncates_to_top_k() {
        let p = NgramProfile::build("abcdefghijklmnopqrstuvwxyz", 2, 5);
        assert!(p.len() <= 5);
    }
}
