//! The live session: one crawler, one incremental flow, one store,
//! advanced round-by-round.
//!
//! [`LiveSession::advance`] is the whole loop body: step the crawler one
//! round, convert the newly accepted relevant pages into documents with
//! *global* ids (so the stream is exactly the prefix a batch run over
//! the cumulative crawl would see), run the delta plan over just those
//! records, drain `store:` sinks into the serving store with the round
//! stamped as the postings' crawl round, fold pre-reduce streams into
//! retained aggregate state, emit per-round observability, and seal a
//! [`Watermark`]. [`LiveSession::resume_from`] inverts the watermark:
//! crawler, retained state, and store are rebuilt from the frame and
//! every digest is re-verified before the session accepts another
//! round.

use std::collections::HashMap;
use std::sync::Arc;

use websift_corpus::{CorpusKind, Document};
use websift_crawler::{CrawlConfig, CrawlSession, NaiveBayes, ResilienceOptions};
use websift_analyze::Diagnostic;
use websift_flow::{
    analyze_plan, AnalyzeOptions, ExecutionConfig, Executor, LogicalPlan, Record,
};
use websift_observe::{Labels, Observer};
use websift_pipeline::documents_to_records;
use websift_resilience::CodecError;
use websift_serve::{ExtractionStore, StoreSnapshot};
use websift_web::{SimulatedWeb, Url};

use crate::incremental::IncrementalFlow;
use crate::watermark::{LiveMetrics, Watermark, WatermarkParts};
use crate::LiveError;

/// Knobs for a live session.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Degree of parallelism for the per-round delta passes.
    pub dop: usize,
    /// Opt into the cumulative-recompute slow path for
    /// `Aggregate::Custom` reduces instead of rejecting them
    /// (see [`LiveError::NonCombinableReduce`]).
    pub allow_recompute: bool,
    /// When set, each round's delta pass runs on worker shards instead of
    /// in-process threads. Sharding never changes what a round produces —
    /// store postings, watermarks, and metrics stay byte-identical — so
    /// this is purely a physical-runtime choice.
    pub sharding: Option<websift_flow::ShardConfig>,
}

impl Default for LiveOptions {
    fn default() -> LiveOptions {
        LiveOptions { dop: 2, allow_recompute: false, sharding: None }
    }
}

/// What one completed round produced.
#[derive(Debug)]
pub struct LiveRound {
    /// 1-based round id; also the crawl round stamped on this round's
    /// store postings.
    pub round: u32,
    /// Relevant documents the crawler delivered this round.
    pub new_documents: usize,
    /// Pre-reduce records folded into retained aggregate state.
    pub delta_records: usize,
    /// Plain (non-store, non-retained) sink output of the delta pass.
    pub sinks: HashMap<String, Vec<Record>>,
    /// Simulated crawl-to-queryable latency of this round: crawl time
    /// plus delta-pass time.
    pub freshness_secs: f64,
    /// The sealed replay point after this round.
    pub watermark: Watermark,
}

/// A long-running incremental crawl-to-query session.
pub struct LiveSession<'w> {
    crawl: CrawlSession<'w>,
    flow: IncrementalFlow,
    store: ExtractionStore,
    observer: Arc<Observer>,
    options: LiveOptions,
    /// Completed rounds (also the round id stamped on the *next* round's
    /// postings, minus one).
    round: u32,
    metrics: LiveMetrics,
}

impl<'w> LiveSession<'w> {
    /// Static pre-flight for a live plan: the full plan analysis in live
    /// mode (WS012 fires as an error for reduces that cannot fold
    /// round-by-round) with the store bound, so WS011 checks sink
    /// routing too. Purely advisory — [`LiveSession::start`] still
    /// performs its own typed checks — but it surfaces the complete
    /// diagnostic picture, field-flow checks included, before any
    /// crawling happens.
    pub fn preflight(plan: &LogicalPlan, store: &ExtractionStore) -> Vec<Diagnostic> {
        let opts = AnalyzeOptions::default()
            .with_live_mode()
            .with_known_stores([store.name()]);
        analyze_plan(plan, &opts)
    }

    /// Starts a fresh session: compiles `plan` for delta execution,
    /// verifies its `store:` sinks actually name `store`, and seeds the
    /// crawler. Nothing is fetched until [`LiveSession::advance`].
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        web: &'w SimulatedWeb,
        classifier: NaiveBayes,
        crawl_config: CrawlConfig,
        seeds: Vec<Url>,
        res_options: &ResilienceOptions,
        plan: &LogicalPlan,
        store: ExtractionStore,
        options: LiveOptions,
        observer: Arc<Observer>,
    ) -> Result<LiveSession<'w>, LiveError> {
        let flow = IncrementalFlow::compile(plan, options.allow_recompute)?;
        check_store_routing(plan, &store)?;
        let crawler = websift_crawler::FocusedCrawler::new(web, classifier, crawl_config)
            .with_observer(observer.clone());
        let crawl = CrawlSession::start(crawler, seeds, res_options);
        Ok(LiveSession {
            crawl,
            flow,
            store,
            observer,
            options,
            round: 0,
            metrics: LiveMetrics::default(),
        })
    }

    /// Rebuilds a session from a sealed [`Watermark`], verifying the
    /// crawler-frontier and store digests recorded in the frame. The
    /// resumed session continues from round `watermark.rounds() + 1` and
    /// replays byte-identically to a session that was never killed.
    pub fn resume_from(
        web: &'w SimulatedWeb,
        crawl_config: CrawlConfig,
        res_options: &ResilienceOptions,
        plan: &LogicalPlan,
        options: LiveOptions,
        observer: Arc<Observer>,
        watermark: &Watermark,
    ) -> Result<LiveSession<'w>, LiveError> {
        let parts: WatermarkParts = watermark.parts();
        let checkpoint =
            websift_crawler::CrawlCheckpoint::from_bytes(parts.crawl_round, parts.crawl_frame)?;
        let crawl = CrawlSession::resume(
            web,
            &checkpoint,
            crawl_config,
            res_options,
            None,
            observer.clone(),
        )?;
        if crawl.state_digest() != parts.frontier_digest {
            return Err(LiveError::StateMismatch {
                what: "crawler frontier digest does not match the watermark".into(),
            });
        }
        let mut flow = IncrementalFlow::compile(plan, options.allow_recompute)?;
        flow.restore_state(&parts.agg_state)?;
        let store = StoreSnapshot::from_bytes(&parts.store_frame)?.restore()?;
        if store.content_digest() != parts.store_digest {
            return Err(LiveError::StateMismatch {
                what: "store content digest does not match the watermark".into(),
            });
        }
        check_store_routing(plan, &store)?;
        Ok(LiveSession {
            crawl,
            flow,
            store,
            observer,
            options,
            round: parts.rounds,
            metrics: parts.metrics,
        })
    }

    /// Runs one round end to end. Returns `Ok(None)` once the crawl is
    /// over and every accepted page has been processed; otherwise the
    /// round's results and its sealed watermark.
    pub fn advance(&mut self) -> Result<Option<LiveRound>, LiveError> {
        let crawl_secs_before = self.crawl.report().simulated_secs;
        let offset_before = self.crawl.drained_relevant();
        self.crawl.step_round();

        // Convert this round's relevant delta into documents numbered by
        // their *global* position in the crawl — the same ids
        // `Corpora::adopt_crawl` assigns over the cumulative report, so a
        // batch recompute sees an identical record stream.
        let docs: Vec<Document> = {
            let (relevant, _irrelevant) = self.crawl.take_new_pages();
            relevant
                .iter()
                .enumerate()
                .map(|(i, p)| Document {
                    id: (offset_before + i) as u64,
                    kind: CorpusKind::RelevantWeb,
                    url: Some(p.url.to_string()),
                    title: String::new(),
                    body: p.net_text.clone(),
                    html: None,
                    gold: Default::default(),
                })
                .collect()
        };
        if docs.is_empty() && self.crawl.is_done() {
            return Ok(None);
        }

        let round_id = self.round + 1;
        let crawl_delta_secs = self.crawl.report().simulated_secs - crawl_secs_before;

        // Delta pass over just the new records; store postings carry this
        // round as their crawl round.
        let records = documents_to_records(&docs);
        let inputs =
            HashMap::from([(self.flow.source().to_string(), records)]);
        self.store.set_round(round_id);
        let mut exec_config = ExecutionConfig::local(self.options.dop);
        exec_config.sharding = self.options.sharding.clone();
        let executor = Executor::new(exec_config);
        let mut out = executor.run_into(self.flow.delta_plan(), inputs, &mut self.store)?;

        // Fold retained-reduce streams out of the sink map.
        let retained: Vec<String> =
            self.flow.retained_sinks().iter().map(|s| s.to_string()).collect();
        let mut absorbed = 0usize;
        for sink in &retained {
            if let Some(stream) = out.sinks.remove(sink) {
                absorbed += self.flow.absorb(sink, stream)?;
            }
        }

        self.metrics.rounds = round_id;
        self.metrics.new_documents += docs.len() as u64;
        self.metrics.delta_records += absorbed as u64;
        self.metrics.incremental_cost_secs += out.metrics.simulated_secs;
        self.metrics.crawl_cost_secs += crawl_delta_secs;
        self.metrics.freshness_secs = crawl_delta_secs + out.metrics.simulated_secs;
        self.metrics.retained_keys = self.flow.retained_keys() as u64;

        // Observability first, watermark second: the crawl checkpoint
        // inside the watermark snapshots the metrics registry, so a
        // resumed session restores counters *including* this round.
        self.emit_round(round_id, docs.len(), absorbed, crawl_secs_before, crawl_delta_secs, out.metrics.simulated_secs);
        let watermark = self.seal_watermark(round_id)?;
        self.round = round_id;

        Ok(Some(LiveRound {
            round: round_id,
            new_documents: docs.len(),
            delta_records: absorbed,
            sinks: out.sinks,
            freshness_secs: self.metrics.freshness_secs,
            watermark,
        }))
    }

    fn emit_round(
        &self,
        round_id: u32,
        new_documents: usize,
        delta_records: usize,
        crawl_t0: f64,
        crawl_secs: f64,
        delta_secs: f64,
    ) {
        let obs = &self.observer;
        let round_label = round_id.to_string();
        let labels = Labels::new(&[("round", &round_label)]);
        // Span timestamps ride simulated time, so traces are
        // deterministic: the delta pass starts when the round's crawling
        // stops.
        obs.tracer().span("live.crawl", crawl_t0, crawl_secs, labels.clone());
        obs.tracer().span("live.delta", crawl_t0 + crawl_secs, delta_secs, labels);
        let none = Labels::empty();
        obs.registry().counter("live.rounds", &none).inc();
        obs.registry().counter("live.new_documents", &none).add(new_documents as u64);
        obs.registry().counter("live.delta_records", &none).add(delta_records as u64);
        obs.registry().gauge("live.round", &none).set(round_id as f64);
        obs.registry()
            .gauge("live.retained_keys", &none)
            .set(self.metrics.retained_keys as f64);
        obs.registry()
            .gauge("live.freshness_secs", &none)
            .set(self.metrics.freshness_secs);
        obs.registry()
            .gauge("live.store_postings", &none)
            .set(self.store.posting_count() as f64);
        obs.registry()
            .histogram("live.round_freshness_secs", &none)
            .record(self.metrics.freshness_secs);
    }

    fn seal_watermark(&self, round_id: u32) -> Result<Watermark, LiveError> {
        let checkpoint = self.crawl.checkpoint();
        let snapshot = StoreSnapshot::capture(&self.store);
        Ok(Watermark::seal(&WatermarkParts {
            rounds: round_id,
            crawl_round: checkpoint.round,
            frontier_digest: self.crawl.state_digest(),
            crawl_frame: checkpoint.as_bytes().to_vec(),
            agg_state: self.flow.state_bytes(),
            store_frame: snapshot.as_bytes().to_vec(),
            store_digest: self.store.content_digest(),
            metrics: self.metrics.clone(),
        }))
    }

    /// The serving store, continuously fresh as rounds complete.
    pub fn store(&self) -> &ExtractionStore {
        &self.store
    }

    /// Materialized output of the retained reduce feeding `sink` — what
    /// a batch run over the cumulative corpus would put there.
    pub fn finished(&self, sink: &str) -> Result<Vec<Record>, LiveError> {
        self.flow.finished(sink)
    }

    /// Cumulative session metrics.
    pub fn metrics(&self) -> &LiveMetrics {
        &self.metrics
    }

    /// Completed rounds.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Has the crawl finished and every page been processed?
    pub fn is_done(&self) -> bool {
        self.crawl.is_done()
    }

    /// The underlying crawl session (read-only).
    pub fn crawl(&self) -> &CrawlSession<'w> {
        &self.crawl
    }

    /// The session's observer bundle.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Current retained-state bytes (what the next watermark will carry).
    pub fn state_bytes(&self) -> Vec<u8> {
        self.flow.state_bytes()
    }
}

/// Every `store:` sink in `plan` must name `store` — verified up front
/// so a misrouted plan fails with a typed error before any crawling.
fn check_store_routing(plan: &LogicalPlan, store: &ExtractionStore) -> Result<(), LiveError> {
    for (target, dataset) in plan.store_sinks() {
        if target != store.name() {
            return Err(LiveError::MisroutedStoreSink {
                sink: format!("store:{target}/{dataset}"),
                expected: store.name().to_string(),
            });
        }
    }
    Ok(())
}

impl From<CodecError> for LiveError {
    fn from(e: CodecError) -> LiveError {
        LiveError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_flow::{Aggregate, Operator, Package};

    /// The static pre-flight and the incremental compiler must agree:
    /// a plan the compiler rejects with `ReduceNotTerminal` carries a
    /// WS012 error, and a plan it accepts carries none.
    #[test]
    fn preflight_agrees_with_the_incremental_compiler() {
        let store = ExtractionStore::new("serve", 4);

        let mut good = LogicalPlan::new();
        let src = good.source("docs");
        let tagged = good
            .add(
                src,
                Operator::map("ie.extract", Package::Ie, |r| r)
                    .with_reads(&["text"])
                    .with_writes(&["entities"]),
            )
            .unwrap();
        good.store_sink(tagged, "serve", "entities").unwrap();
        let diags = LiveSession::preflight(&good, &store);
        assert!(!websift_analyze::has_errors(&diags), "{diags:?}");
        assert!(IncrementalFlow::compile(&good, false).is_ok());

        let mut bad = LogicalPlan::new();
        let src = bad.source("docs");
        let reduce = bad
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |_: &Record| "all".to_string(),
                    Aggregate::Count { into: "n".into() },
                ),
            )
            .unwrap();
        let post = bad.add(reduce, Operator::map("post", Package::Base, |r| r)).unwrap();
        bad.sink(post, "out").unwrap();
        let diags = LiveSession::preflight(&bad, &store);
        assert!(
            diags.iter().any(|d| d.code == "WS012"
                && d.severity == websift_analyze::Severity::Error),
            "{diags:?}"
        );
        assert!(matches!(
            IncrementalFlow::compile(&bad, false),
            Err(LiveError::ReduceNotTerminal { .. })
        ));
    }

    /// A misrouted store sink shows up in both paths: WS011 statically,
    /// `MisroutedStoreSink` from the routing check.
    #[test]
    fn preflight_flags_misrouted_store_sinks_as_ws011() {
        let store = ExtractionStore::new("serve", 4);
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        plan.store_sink(src, "other", "entities").unwrap();
        let diags = LiveSession::preflight(&plan, &store);
        assert!(diags.iter().any(|d| d.code == "WS011"), "{diags:?}");
        assert!(matches!(
            check_store_routing(&plan, &store),
            Err(LiveError::MisroutedStoreSink { .. })
        ));
    }
}
