//! The delta execution path: a compiled incremental view of a logical
//! plan whose terminal Reduce state is *retained* across rounds.
//!
//! A live session cannot afford to recompute a Reduce over the whole
//! cumulative corpus every crawl round. For a terminal **combinable**
//! Reduce (PR 5's typed [`Aggregate`]s) it does not have to: the reduce
//! is split out of the plan, each round's delta pass runs only the
//! map-side prefix over the new records, and the pre-reduce stream is
//! folded into a retained per-key [`AggState`] map. Because a built-in
//! aggregate's group result is exactly `seed → fold each record in
//! encounter order → finish`, folding rounds sequentially into retained
//! state is *byte-identical* to recomputing the reduce over the
//! concatenated stream — the same argument that made partial
//! aggregation invisible, applied across rounds instead of chunks.
//!
//! `Aggregate::Custom` reduces are opaque closures: nothing can be
//! retained, so live mode either rejects them with a typed
//! [`LiveError::NonCombinableReduce`] or — under an explicit
//! `allow_recompute` opt-in — keeps the cumulative pre-reduce records
//! and reruns the closure every round (the slow path the WS012
//! diagnostic warns about).

use std::collections::BTreeMap;

use websift_flow::{
    AggState, Kind, LogicalPlan, NodeOp, OpFunc, Operator, Record,
};
use websift_resilience::{CodecError, Reader, Snapshot, Writer};

use crate::LiveError;

/// Retained state for one split-out terminal Reduce.
enum Retained {
    /// Combinable: per-key aggregate partials, folded in place.
    Combinable(BTreeMap<String, AggState>),
    /// Custom closure under `allow_recompute`: the cumulative pre-reduce
    /// record stream, re-reduced from scratch on demand.
    Recompute(Vec<Record>),
}

/// One split-out Reduce: the sink it fed, the operator (key + aggregate),
/// and the state retained across rounds.
struct RetainedReduce {
    sink: String,
    op: Operator,
    retained: Retained,
}

/// A logical plan compiled for delta execution: terminal Reduces are
/// split out of the executable plan and their state is retained here.
pub struct IncrementalFlow {
    delta_plan: LogicalPlan,
    source: String,
    reduces: Vec<RetainedReduce>,
}

impl IncrementalFlow {
    /// Compiles `plan` for delta execution. Every Reduce must directly
    /// feed a sink (aggregates are final results, not intermediates, in
    /// live mode); non-combinable (`Aggregate::Custom`) reduces are a
    /// typed error unless `allow_recompute` opts into the cumulative
    /// re-reduce slow path.
    pub fn compile(plan: &LogicalPlan, allow_recompute: bool) -> Result<IncrementalFlow, LiveError> {
        plan.validate().map_err(LiveError::PlanInvalid)?;
        let source = plan
            .sources()
            .first()
            .map(|s| s.to_string())
            .ok_or_else(|| LiveError::PlanInvalid("plan has no source".into()))?;

        // Node-id image in the delta plan; reduce nodes map to their
        // input's image so their sink child rewires to the pre-reduce
        // stream.
        let mut image: Vec<usize> = Vec::with_capacity(plan.len());
        let mut delta = LogicalPlan::new();
        let mut reduces: Vec<RetainedReduce> = Vec::new();
        // reduce node id (original plan) -> index into `reduces`
        let mut pending: BTreeMap<usize, usize> = BTreeMap::new();

        for node in plan.nodes() {
            let mapped = match &node.op {
                NodeOp::Source(name) => delta.source(name),
                NodeOp::Op(op) if op.kind == Kind::Reduce => {
                    let children = plan.children(node.id);
                    let terminal = children.len() == 1
                        && matches!(plan.nodes()[children[0]].op, NodeOp::Sink(_));
                    if !terminal {
                        return Err(LiveError::ReduceNotTerminal { name: op.name.clone() });
                    }
                    if !op.combinable_reduce() && !allow_recompute {
                        return Err(LiveError::NonCombinableReduce { name: op.name.clone() });
                    }
                    let retained = if op.combinable_reduce() {
                        Retained::Combinable(BTreeMap::new())
                    } else {
                        Retained::Recompute(Vec::new())
                    };
                    pending.insert(
                        node.id,
                        reduces.len(),
                    );
                    reduces.push(RetainedReduce {
                        sink: String::new(), // filled when the sink child is reached
                        op: op.clone(),
                        retained,
                    });
                    // the reduce contributes no delta-plan node: its sink
                    // child reads the pre-reduce stream
                    image[node.input.expect("validated: op has input")]
                }
                NodeOp::Op(op) => {
                    let input = image[node.input.expect("validated: op has input")];
                    delta
                        .add(input, op.clone())
                        .map_err(|e| LiveError::PlanInvalid(e.to_string()))?
                }
                NodeOp::Sink(name) => {
                    let parent = node.input.expect("validated: sink has input");
                    if let Some(&idx) = pending.get(&parent) {
                        reduces[idx].sink = name.clone();
                    }
                    let input = image[parent];
                    delta
                        .sink(input, name)
                        .map_err(|e| LiveError::PlanInvalid(e.to_string()))?
                }
            };
            image.push(mapped);
        }

        Ok(IncrementalFlow { delta_plan: delta, source, reduces })
    }

    /// The executable per-round plan: the original plan with terminal
    /// Reduces removed, their sinks rewired to the pre-reduce streams.
    pub fn delta_plan(&self) -> &LogicalPlan {
        &self.delta_plan
    }

    /// The plan's source dataset name.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Sink names whose delta output must be [`IncrementalFlow::absorb`]ed
    /// rather than treated as finished results, in plan order.
    pub fn retained_sinks(&self) -> Vec<&str> {
        self.reduces.iter().map(|r| r.sink.as_str()).collect()
    }

    /// Folds one round's pre-reduce delta stream for `sink` into the
    /// retained state. Records are folded in stream order, so after N
    /// rounds the per-key state equals a serial reduce over the
    /// concatenated stream — byte-for-byte, including the codec bytes.
    /// Returns the number of records absorbed.
    pub fn absorb(&mut self, sink: &str, records: Vec<Record>) -> Result<usize, LiveError> {
        let reduce = self
            .reduces
            .iter_mut()
            .find(|r| r.sink == sink)
            .ok_or_else(|| LiveError::StateMismatch {
                what: format!("no retained reduce feeds sink '{sink}'"),
            })?;
        let n = records.len();
        match (&mut reduce.retained, reduce.op.func()) {
            (Retained::Combinable(state), OpFunc::Reduce { key, aggregate }) => {
                for record in &records {
                    let k = key(record);
                    let slot = state.entry(k).or_insert_with(|| aggregate.seed());
                    aggregate.fold(slot, record);
                }
            }
            (Retained::Recompute(all), _) => all.extend(records),
            _ => unreachable!("retained operator is always a Reduce"),
        }
        Ok(n)
    }

    /// Materializes the finished reduce output for `sink` from retained
    /// state: keys in sorted order, exactly the order and bytes a batch
    /// Reduce over the cumulative stream produces.
    pub fn finished(&self, sink: &str) -> Result<Vec<Record>, LiveError> {
        let reduce = self
            .reduces
            .iter()
            .find(|r| r.sink == sink)
            .ok_or_else(|| LiveError::StateMismatch {
                what: format!("no retained reduce feeds sink '{sink}'"),
            })?;
        match (&reduce.retained, reduce.op.func()) {
            (Retained::Combinable(state), OpFunc::Reduce { aggregate, .. }) => Ok(state
                .iter()
                .flat_map(|(key, st)| aggregate.finish(key, st.clone()))
                .collect()),
            // the slow path: rerun the opaque closure over everything
            (Retained::Recompute(all), _) => Ok(reduce.op.apply(all.clone())),
            _ => unreachable!("retained operator is always a Reduce"),
        }
    }

    /// Total number of retained aggregate keys (cumulative records on the
    /// recompute path).
    pub fn retained_keys(&self) -> usize {
        self.reduces
            .iter()
            .map(|r| match &r.retained {
                Retained::Combinable(state) => state.len(),
                Retained::Recompute(all) => all.len(),
            })
            .sum()
    }

    /// Deterministic codec bytes of all retained state, keys in sorted
    /// order — the "retained `AggState` bytes" a watermark frame records.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize(self.reduces.len());
        for reduce in &self.reduces {
            w.str(&reduce.sink);
            w.str(&reduce.op.name);
            match &reduce.retained {
                Retained::Combinable(state) => {
                    w.u8(0);
                    w.usize(state.len());
                    for (key, st) in state {
                        w.str(key);
                        st.encode(&mut w);
                    }
                }
                Retained::Recompute(all) => {
                    w.u8(1);
                    all.encode(&mut w);
                }
            }
        }
        w.into_bytes()
    }

    /// Restores retained state captured by [`IncrementalFlow::state_bytes`]
    /// into this (freshly compiled) flow, verifying the plan shape still
    /// matches the watermark.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), LiveError> {
        let mut r = Reader::new(bytes);
        let n = r.usize()?;
        if n != self.reduces.len() {
            return Err(LiveError::StateMismatch {
                what: format!("watermark retains {n} reduces, plan has {}", self.reduces.len()),
            });
        }
        for reduce in &mut self.reduces {
            let sink = r.str()?;
            let op = r.str()?;
            if sink != reduce.sink || op != reduce.op.name {
                return Err(LiveError::StateMismatch {
                    what: format!(
                        "watermark reduce '{op}' -> '{sink}' does not match plan reduce '{}' -> '{}'",
                        reduce.op.name, reduce.sink
                    ),
                });
            }
            reduce.retained = match r.u8()? {
                0 => {
                    let keys = r.usize()?;
                    let mut state = BTreeMap::new();
                    for _ in 0..keys {
                        let key = r.str()?;
                        state.insert(key, AggState::decode(&mut r)?);
                    }
                    Retained::Combinable(state)
                }
                1 => Retained::Recompute(Vec::<Record>::decode(&mut r)?),
                tag => return Err(LiveError::Codec(CodecError::BadTag { what: "Retained", tag })),
            };
        }
        if !r.is_empty() {
            return Err(LiveError::Codec(CodecError::Truncated {
                what: "trailing retained-state bytes",
            }));
        }
        Ok(())
    }
}
