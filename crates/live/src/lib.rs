//! Incremental crawl-to-query execution ("websift-live").
//!
//! The batch pipeline answers "what did the web say when we last
//! crawled it?"; the paper's web-scale framing wants the other
//! question — "what does the web say *now*?" — without paying a full
//! recompute per refresh. This crate turns the existing pieces into a
//! long-running **live session**:
//!
//! - the focused crawler is stepped one round at a time
//!   ([`websift_crawler::CrawlSession`]), delivering only the pages
//!   accepted since the previous step;
//! - a [`IncrementalFlow`] runs the extraction plan as a **delta pass**
//!   over just those records, folding pre-reduce streams into retained
//!   per-key aggregate state instead of recomputing reduces (the PR-5
//!   combinability machinery, applied across rounds);
//! - `store:` sinks drain into the serving [`websift_serve`] store with
//!   the live round stamped as the postings' crawl round, so queries
//!   can filter by freshness (`since <round>`);
//! - after every round the session seals a [`Watermark`] — a single
//!   deterministic frame embedding the crawler checkpoint, retained
//!   aggregate state, and store snapshot — from which
//!   [`LiveSession::resume_from`] replays the session byte-identically:
//!   same store digests, same metrics, same trace timestamps.
//!
//! Determinism is the load-bearing property. Both crawler stepping and
//! delta folding were built to be bit-identical to their batch
//! counterparts, so the differential suite can assert
//! `incremental ≡ batch recompute ≡ kill + resume` on codec bytes, not
//! on approximate equality.

pub mod incremental;
pub mod session;
pub mod watermark;

pub use incremental::IncrementalFlow;
pub use session::{LiveOptions, LiveRound, LiveSession};
pub use watermark::{LiveMetrics, Watermark, WatermarkParts, WATERMARK_TAG, WATERMARK_VERSION};

use websift_flow::ExecutionError;

/// Failures of live compilation, execution, or replay.
#[derive(Debug)]
pub enum LiveError {
    /// The plan has a non-combinable (`Aggregate::Custom`) reduce and
    /// [`LiveOptions::allow_recompute`] was not set: live mode cannot
    /// retain opaque closure state across rounds.
    NonCombinableReduce { name: String },
    /// A reduce feeds another operator. Live mode retains reduce state
    /// *instead of* executing the reduce per round, so reduces must be
    /// terminal (directly feeding one sink).
    ReduceNotTerminal { name: String },
    /// A `store:` sink names a store other than the session's.
    MisroutedStoreSink { sink: String, expected: String },
    /// The plan failed [`websift_flow::LogicalPlan::validate`] or could
    /// not be rebuilt for delta execution.
    PlanInvalid(String),
    /// A watermark's recorded digest or shape does not match the
    /// rebuilt state — the frame belongs to a different session, plan,
    /// or corpus.
    StateMismatch { what: String },
    /// The per-round delta pass failed.
    Flow(ExecutionError),
    /// A frame could not be decoded.
    Codec(websift_resilience::CodecError),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::NonCombinableReduce { name } => write!(
                f,
                "reduce '{name}' uses a custom aggregate, which cannot be folded \
                 incrementally; set LiveOptions::allow_recompute to accept a full \
                 recompute per live round"
            ),
            LiveError::ReduceNotTerminal { name } => write!(
                f,
                "reduce '{name}' feeds another operator; live mode requires reduces \
                 to feed a sink directly"
            ),
            LiveError::MisroutedStoreSink { sink, expected } => write!(
                f,
                "store sink '{sink}' does not route to the session store '{expected}'"
            ),
            LiveError::PlanInvalid(why) => write!(f, "plan unusable for live execution: {why}"),
            LiveError::StateMismatch { what } => write!(f, "watermark replay mismatch: {what}"),
            LiveError::Flow(e) => write!(f, "delta pass failed: {e}"),
            LiveError::Codec(e) => write!(f, "frame decode failed: {e}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<ExecutionError> for LiveError {
    fn from(e: ExecutionError) -> LiveError {
        LiveError::Flow(e)
    }
}
