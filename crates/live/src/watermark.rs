//! Sealed per-round watermark frames (`WSWM` v1).
//!
//! After every completed round a live session seals a **watermark**: a
//! single self-describing frame capturing everything needed to replay
//! the session from that point deterministically —
//!
//! - the crawler frontier as a sealed `WSCK` crawl-checkpoint frame plus
//!   its state digest,
//! - the retained incremental aggregate state
//!   ([`crate::IncrementalFlow::state_bytes`]),
//! - the serving store as a sealed `WSST` snapshot frame plus its
//!   content digest,
//! - the session's cumulative [`LiveMetrics`].
//!
//! Frames embed the already-sealed sub-frames verbatim, so corruption
//! anywhere is caught twice: once by the outer `WSWM` tag/version check
//! and once when the inner frame is opened. Encoding is
//! byte-deterministic (everything rides the checkpoint codec), so a
//! session resumed from round k and an uninterrupted session agree on
//! watermark bytes for every subsequent round — the property the replay
//! differential suite pins.

use websift_resilience::{codec, CodecError, Reader, Snapshot, Writer};

/// Frame tag for a sealed watermark.
pub const WATERMARK_TAG: [u8; 4] = *b"WSWM";
/// Current watermark format version.
pub const WATERMARK_VERSION: u16 = 1;

/// Cumulative session metrics, carried inside every watermark so a
/// resumed session continues the counters rather than restarting them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveMetrics {
    /// Completed rounds.
    pub rounds: u32,
    /// Relevant documents delivered by the crawler across all rounds.
    pub new_documents: u64,
    /// Records absorbed into retained aggregate state across all rounds.
    pub delta_records: u64,
    /// Total simulated cost of all delta passes.
    pub incremental_cost_secs: f64,
    /// Total simulated crawl cost across all rounds.
    pub crawl_cost_secs: f64,
    /// Simulated crawl-to-queryable latency of the most recent round.
    pub freshness_secs: f64,
    /// Retained aggregate keys after the most recent round.
    pub retained_keys: u64,
}

impl Snapshot for LiveMetrics {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.rounds);
        w.u64(self.new_documents);
        w.u64(self.delta_records);
        w.f64(self.incremental_cost_secs);
        w.f64(self.crawl_cost_secs);
        w.f64(self.freshness_secs);
        w.u64(self.retained_keys);
    }

    fn decode(r: &mut Reader<'_>) -> Result<LiveMetrics, CodecError> {
        Ok(LiveMetrics {
            rounds: r.u32()?,
            new_documents: r.u64()?,
            delta_records: r.u64()?,
            incremental_cost_secs: r.f64()?,
            crawl_cost_secs: r.f64()?,
            freshness_secs: r.f64()?,
            retained_keys: r.u64()?,
        })
    }
}

/// The decoded contents of a watermark frame.
#[derive(Debug, Clone)]
pub struct WatermarkParts {
    /// Completed rounds at seal time (the next round to run).
    pub rounds: u32,
    /// The crawler's internal round counter (idle-forwarded rounds make
    /// this run ahead of `rounds`).
    pub crawl_round: u64,
    /// Sealed `WSCK` crawl-checkpoint frame.
    pub crawl_frame: Vec<u8>,
    /// Digest of the crawler state, verified on resume.
    pub frontier_digest: u64,
    /// Retained incremental aggregate state bytes.
    pub agg_state: Vec<u8>,
    /// Sealed `WSST` store-snapshot frame.
    pub store_frame: Vec<u8>,
    /// The store's content digest at seal time, verified on resume.
    pub store_digest: u64,
    /// Cumulative session metrics.
    pub metrics: LiveMetrics,
}

impl Snapshot for WatermarkParts {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.rounds);
        w.u64(self.crawl_round);
        w.bytes(&self.crawl_frame);
        w.u64(self.frontier_digest);
        w.bytes(&self.agg_state);
        w.bytes(&self.store_frame);
        w.u64(self.store_digest);
        self.metrics.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WatermarkParts, CodecError> {
        Ok(WatermarkParts {
            rounds: r.u32()?,
            crawl_round: r.u64()?,
            crawl_frame: r.bytes()?,
            frontier_digest: r.u64()?,
            agg_state: r.bytes()?,
            store_frame: r.bytes()?,
            store_digest: r.u64()?,
            metrics: LiveMetrics::decode(r)?,
        })
    }
}

/// A sealed watermark frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watermark {
    frame: Vec<u8>,
}

impl Watermark {
    /// Seals `parts` into a `WSWM` v1 frame.
    pub fn seal(parts: &WatermarkParts) -> Watermark {
        let mut w = Writer::new();
        parts.encode(&mut w);
        Watermark { frame: codec::seal(WATERMARK_TAG, WATERMARK_VERSION, &w.into_bytes()) }
    }

    /// Adopts sealed frame bytes, verifying tag, version, checksum, and
    /// full payload decode up front so later [`Watermark::parts`] calls
    /// cannot fail on a frame accepted here.
    pub fn from_bytes(frame: Vec<u8>) -> Result<Watermark, CodecError> {
        let payload = codec::open(WATERMARK_TAG, WATERMARK_VERSION, &frame)?;
        let mut r = Reader::new(payload);
        WatermarkParts::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Truncated { what: "trailing watermark bytes" });
        }
        Ok(Watermark { frame })
    }

    /// The sealed frame bytes (what goes to stable storage).
    pub fn as_bytes(&self) -> &[u8] {
        &self.frame
    }

    /// Decodes the frame contents.
    pub fn parts(&self) -> WatermarkParts {
        let payload = codec::open(WATERMARK_TAG, WATERMARK_VERSION, &self.frame)
            .expect("verified at construction");
        let mut r = Reader::new(payload);
        WatermarkParts::decode(&mut r).expect("verified at construction")
    }

    /// Completed rounds at seal time, without a full decode.
    pub fn rounds(&self) -> u32 {
        self.parts().rounds
    }

    /// Digest over the sealed frame bytes.
    pub fn digest(&self) -> u64 {
        codec::digest(&self.frame)
    }

    /// Size of the sealed frame in bytes.
    pub fn size_bytes(&self) -> usize {
        self.frame.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_parts() -> WatermarkParts {
        WatermarkParts {
            rounds: 3,
            crawl_round: 5,
            crawl_frame: vec![1, 2, 3, 4],
            frontier_digest: 0xDEAD_BEEF,
            agg_state: vec![9, 8, 7],
            store_frame: vec![5, 5, 5, 5, 5],
            store_digest: 0xCAFE,
            metrics: LiveMetrics {
                rounds: 3,
                new_documents: 120,
                delta_records: 4_096,
                incremental_cost_secs: 1.25,
                crawl_cost_secs: 30.5,
                freshness_secs: 0.75,
                retained_keys: 900,
            },
        }
    }

    #[test]
    fn watermark_round_trips() {
        let sealed = Watermark::seal(&sample_parts());
        let reopened = Watermark::from_bytes(sealed.as_bytes().to_vec()).unwrap();
        assert_eq!(sealed, reopened);
        let parts = reopened.parts();
        assert_eq!(parts.rounds, 3);
        assert_eq!(parts.crawl_round, 5);
        assert_eq!(parts.crawl_frame, vec![1, 2, 3, 4]);
        assert_eq!(parts.frontier_digest, 0xDEAD_BEEF);
        assert_eq!(parts.agg_state, vec![9, 8, 7]);
        assert_eq!(parts.store_frame, vec![5, 5, 5, 5, 5]);
        assert_eq!(parts.store_digest, 0xCAFE);
        assert_eq!(parts.metrics, sample_parts().metrics);
        assert_eq!(reopened.rounds(), 3);
    }

    #[test]
    fn sealing_is_deterministic() {
        let a = Watermark::seal(&sample_parts());
        let b = Watermark::seal(&sample_parts());
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn corrupted_frame_is_rejected() {
        let sealed = Watermark::seal(&sample_parts());
        let mut bytes = sealed.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(Watermark::from_bytes(bytes).is_err());
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let sealed = Watermark::seal(&sample_parts());
        let mut bytes = sealed.as_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert!(Watermark::from_bytes(bytes).is_err());
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let sealed = Watermark::seal(&sample_parts());
        let bytes = sealed.as_bytes();
        assert!(Watermark::from_bytes(bytes[..bytes.len() - 1].to_vec()).is_err());
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut w = Writer::new();
        sample_parts().encode(&mut w);
        let mut payload = w.into_bytes();
        payload.push(0);
        let frame = codec::seal(WATERMARK_TAG, WATERMARK_VERSION, &payload);
        assert!(Watermark::from_bytes(frame).is_err());
    }
}
