//! Classifier / extractor evaluation: confusion matrices, precision, recall,
//! F1, and k-fold cross-validation splits.
//!
//! Used to reproduce the paper's quality numbers for the focus classifier
//! ("precision of 98% at a recall of 83% in 10-fold cross validation") and
//! the boilerplate detector.

use serde::Serialize;

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ConfusionMatrix {
    pub true_positives: u64,
    pub false_positives: u64,
    pub true_negatives: u64,
    pub false_negatives: u64,
}

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PrScores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl ConfusionMatrix {
    /// Records one prediction against its gold label (`true` = positive).
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Merges another matrix into this one (e.g. across CV folds).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Precision `TP / (TP + FP)`; 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 0 when no gold positives exist.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    pub fn scores(&self) -> PrScores {
        PrScores {
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
        }
    }
}

/// Produces `k` (train, test) index partitions over `n` items, in order.
///
/// Fold `i` tests on the contiguous block `[i*n/k, (i+1)*n/k)`. Callers that
/// need randomized folds should shuffle their data first; keeping the split
/// deterministic here makes experiments reproducible.
pub fn kfold_indices(n: usize, k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2, got {k}");
    assert!(n >= k, "k-fold needs at least k items ({k}), got {n}");
    let mut folds = Vec::with_capacity(k);
    for i in 0..k {
        let start = i * n / k;
        let end = (i + 1) * n / k;
        let test: Vec<usize> = (start..end).collect();
        let train: Vec<usize> = (0..start).chain(end..n).collect();
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut cm = ConfusionMatrix::default();
        for _ in 0..10 {
            cm.record(true, true);
            cm.record(false, false);
        }
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn degenerate_cases() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn known_scores() {
        let cm = ConfusionMatrix {
            true_positives: 8,
            false_positives: 2,
            true_negatives: 5,
            false_negatives: 4,
        };
        assert!((cm.precision() - 0.8).abs() < 1e-12);
        assert!((cm.recall() - 8.0 / 12.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((cm.f1() - f1).abs() < 1e-12);
        assert!((cm.accuracy() - 13.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix {
            true_positives: 1,
            false_positives: 2,
            true_negatives: 3,
            false_negatives: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.false_negatives, 8);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn kfold_partitions_cover_everything_once() {
        let folds = kfold_indices(103, 10);
        assert_eq!(folds.len(), 10);
        let mut seen = [0u8; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                seen[i] += 1;
            }
            // train and test are disjoint
            for &i in test {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn kfold_rejects_k1() {
        kfold_indices(10, 1);
    }
}
