//! Statistics substrate for the websift workspace.
//!
//! The SIGMOD'16 study this workspace reproduces leans on a number of
//! classical statistical tools: descriptive statistics over linguistic
//! measurements, the Mann-Whitney-Wilcoxon rank test for cross-corpus
//! significance claims, the Jensen-Shannon divergence for comparing entity
//! frequency distributions, precision/recall evaluation with k-fold
//! cross-validation for the focus classifier and boilerplate detector, and
//! heavy-tailed samplers for the synthetic corpus and web-graph generators.
//!
//! Everything here is implemented from scratch on top of `rand`; no external
//! statistics crates are used.

pub mod descriptive;
pub mod divergence;
pub mod eval;
pub mod histogram;
pub mod mannwhitney;
pub mod sampling;

pub use descriptive::Summary;
pub use divergence::{jensen_shannon, kullback_leibler};
pub use eval::{kfold_indices, ConfusionMatrix, PrScores};
pub use histogram::Histogram;
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use sampling::{Categorical, Zipf};
