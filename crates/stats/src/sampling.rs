//! Samplers for heavy-tailed and categorical distributions.
//!
//! The synthetic corpora and web graph need Zipfian term frequencies,
//! log-normal document lengths, and fast weighted choices; all are
//! implemented here from scratch on top of a generic `rand::Rng`.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Sampling is inverse-CDF via binary search over a precomputed cumulative
/// table — O(log n) per draw, exact, and cheap to build for the vocabulary
/// sizes used in this workspace (up to ~1e6 ranks).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Categorical distribution over arbitrary non-negative weights using
/// Walker's alias method: O(n) construction, O(1) sampling.
#[derive(Debug, Clone)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Builds the alias table. Panics if `weights` is empty, contains a
    /// negative weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Categorical {
        assert!(!weights.is_empty(), "Categorical needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|&w| w >= 0.0) && total > 0.0,
            "Categorical weights must be non-negative with positive sum"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are 1.0 up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Categorical { prob, alias }
    }

    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index in `0..len`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Samples a log-normal variate with the given parameters of the underlying
/// normal (`mu`, `sigma`), via Box-Muller.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Standard normal variate via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would take ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a geometric number of trials until first success (support 1..),
/// with success probability `p` in `(0, 1]`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric needs p in (0,1], got {p}");
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > z.pmf(1));
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut zero = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        let expected = z.pmf(0);
        let observed = zero as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 3];
        let n = 40_000;
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item must never be drawn");
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0 = {frac0}");
    }

    #[test]
    fn categorical_uniform() {
        let c = Categorical::new(&[1.0; 4]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        for &ct in &counts {
            let frac = ct as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn categorical_rejects_negative() {
        Categorical::new(&[1.0, -0.5]);
    }

    #[test]
    fn log_normal_median_near_exp_mu() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut samples: Vec<f64> = (0..10_000).map(|_| log_normal(&mut rng, 3.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let expected = 3.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn geometric_mean_near_inverse_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = 0.25;
        let mean: f64 =
            (0..20_000).map(|_| geometric(&mut rng, p) as f64).sum::<f64>() / 20_000.0;
        assert!((mean - 4.0).abs() < 0.15, "mean = {mean}");
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }
}
