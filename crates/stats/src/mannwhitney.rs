//! Mann-Whitney U test (a.k.a. Wilcoxon rank-sum test).
//!
//! The paper assesses all cross-corpus differences in linguistic measures
//! "using the Mann-Whitney-Wilcoxon signed rank test", reporting `P < 0.01`
//! throughout Section 4.3. This module implements the two-sided test with
//! the normal approximation (including tie correction), which is the
//! appropriate regime for the large samples involved.

use serde::Serialize;

/// Outcome of a two-sided Mann-Whitney U test.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standardized test statistic (z-score under H0).
    pub z: f64,
    /// Two-sided P-value from the normal approximation.
    pub p_value: f64,
    /// Effect size: common-language effect size `U / (n1*n2)`, i.e. the
    /// probability that a random observation from sample 1 exceeds a random
    /// observation from sample 2 (ties counted half).
    pub effect_size: f64,
}

impl MannWhitneyResult {
    /// Convenience predicate for the significance level the paper uses.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a two-sided Mann-Whitney U test on two independent samples.
///
/// Returns `None` if either sample is empty. Uses average ranks for ties and
/// the tie-corrected normal approximation for the P-value; for the sample
/// sizes in this workspace (hundreds to millions of observations) the
/// approximation error is negligible.
pub fn mann_whitney_u(sample1: &[f64], sample2: &[f64]) -> Option<MannWhitneyResult> {
    let n1 = sample1.len();
    let n2 = sample2.len();
    if n1 == 0 || n2 == 0 {
        return None;
    }

    // Pool and rank with average ranks for ties.
    let mut pooled: Vec<(f64, usize)> = sample1
        .iter()
        .map(|&v| (v, 0usize))
        .chain(sample2.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in sample"));

    let n = pooled.len();
    let mut rank_sum1 = 0.0f64;
    let mut tie_term = 0.0f64; // sum of t^3 - t over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let group = (j - i + 1) as f64;
        // ranks are 1-based; average rank of the tie group:
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                rank_sum1 += avg_rank;
            }
        }
        if group > 1.0 {
            tie_term += group.powi(3) - group;
        }
        i = j + 1;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = rank_sum1 - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let nf = n as f64;
    let var_u = if nf > 1.0 {
        n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)))
    } else {
        0.0
    };

    let (z, p) = if var_u <= 0.0 {
        // All observations identical: no evidence against H0.
        (0.0, 1.0)
    } else {
        // Continuity correction of 0.5 toward the mean.
        let diff = u1 - mean_u;
        let corrected = if diff > 0.0 {
            diff - 0.5
        } else if diff < 0.0 {
            diff + 0.5
        } else {
            0.0
        };
        let z = corrected / var_u.sqrt();
        (z, 2.0 * standard_normal_sf(z.abs()))
    };

    Some(MannWhitneyResult {
        u: u1,
        z,
        p_value: p.min(1.0),
        effect_size: u1 / (n1f * n2f),
    })
}

/// Survival function `P(Z > z)` of the standard normal distribution,
/// computed via the complementary error function.
pub fn standard_normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function, Abramowitz & Stegun 7.1.26-style rational
/// approximation refined by Numerical-Recipes' `erfc` (max error ~1.2e-7,
/// ample for significance testing).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [5.0; 30];
        let b = [5.0; 30];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_separated_samples_significant() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| (i + 100) as f64).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
        assert!(r.significant_at(0.01));
        // All of b exceeds all of a, so U1 = 0 and effect size 0.
        assert_eq!(r.u, 0.0);
        assert_eq!(r.effect_size, 0.0);
    }

    #[test]
    fn symmetric_in_direction() {
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| i as f64 + 5.0).collect();
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert!((r1.z + r2.z).abs() < 1e-12);
        assert!((r1.effect_size + r2.effect_size - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_known_example() {
        // Example with known U: a = {1,2,3}, b = {4,5,6} gives U1 = 0;
        // a = {6,7,8}, b = {1,2,3} gives U1 = 9 (= n1*n2).
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(r.u, 0.0);
        let r = mann_whitney_u(&[6.0, 7.0, 8.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(r.u, 9.0);
    }

    #[test]
    fn ties_use_average_ranks() {
        // a = {1, 2}, b = {2, 3}: the 2s tie at ranks 2,3 -> avg 2.5.
        // rank_sum1 = 1 + 2.5 = 3.5, U1 = 3.5 - 3 = 0.5
        let r = mann_whitney_u(&[1.0, 2.0], &[2.0, 3.0]).unwrap();
        assert!((r.u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299207).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842700793).abs() < 1e-6);
        assert!(erfc(5.0) < 1.6e-12);
    }

    #[test]
    fn normal_sf_reference() {
        // P(Z > 1.96) ~ 0.025
        assert!((standard_normal_sf(1.96) - 0.0249979).abs() < 1e-5);
        assert!((standard_normal_sf(0.0) - 0.5).abs() < 1e-7);
    }
}
