//! Information-theoretic divergences between discrete distributions.
//!
//! Section 4.3.2 of the paper compares the entity-name frequency
//! distributions of the four corpora with the Jensen-Shannon divergence
//! (JSD), reporting e.g. `0.4463 <= JSD(rel, irrel) <= 0.6548`. This module
//! provides KL and JS divergences over sparse count maps keyed by arbitrary
//! hashable items (entity names in the paper's use).

use std::collections::HashMap;
use std::hash::Hash;

/// Kullback-Leibler divergence `D(P || Q)` in bits (log base 2) between two
/// discrete distributions given as normalized probability maps.
///
/// Items with `p = 0` contribute nothing. If some item has `p > 0` but
/// `q = 0` the divergence is infinite; callers comparing raw count maps
/// should prefer [`jensen_shannon`], which is always finite.
pub fn kullback_leibler<K: Eq + Hash>(p: &HashMap<K, f64>, q: &HashMap<K, f64>) -> f64 {
    let mut d = 0.0;
    for (k, &pv) in p {
        if pv <= 0.0 {
            continue;
        }
        match q.get(k) {
            Some(&qv) if qv > 0.0 => d += pv * (pv / qv).log2(),
            _ => return f64::INFINITY,
        }
    }
    d
}

/// Jensen-Shannon divergence between two count maps, in bits.
///
/// Counts are normalized internally; the result is bounded in `[0, 1]`
/// (with log base 2), `0` for identical distributions and `1` for
/// distributions with disjoint support — exactly the convention the paper
/// uses ("values bounded ... 0 <= JSD <= 1").
pub fn jensen_shannon<K: Eq + Hash + Clone>(a: &HashMap<K, u64>, b: &HashMap<K, u64>) -> f64 {
    let ta: u64 = a.values().sum();
    let tb: u64 = b.values().sum();
    if ta == 0 || tb == 0 {
        return if ta == tb { 0.0 } else { 1.0 };
    }
    let mut d = 0.0;
    // Iterate the union of supports.
    let mut seen: HashMap<&K, ()> = HashMap::with_capacity(a.len() + b.len());
    for k in a.keys().chain(b.keys()) {
        if seen.insert(k, ()).is_some() {
            continue;
        }
        let pa = *a.get(k).unwrap_or(&0) as f64 / ta as f64;
        let pb = *b.get(k).unwrap_or(&0) as f64 / tb as f64;
        let m = 0.5 * (pa + pb);
        if pa > 0.0 {
            d += 0.5 * pa * (pa / m).log2();
        }
        if pb > 0.0 {
            d += 0.5 * pb * (pb / m).log2();
        }
    }
    // Clamp tiny negative rounding residue.
    d.clamp(0.0, 1.0)
}

/// Normalizes a count map into a probability map.
pub fn normalize<K: Eq + Hash + Clone>(counts: &HashMap<K, u64>) -> HashMap<K, f64> {
    let total: u64 = counts.values().sum();
    if total == 0 {
        return HashMap::new();
    }
    counts
        .iter()
        .map(|(k, &v)| (k.clone(), v as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn jsd_identical_is_zero() {
        let a = counts(&[("x", 10), ("y", 5)]);
        assert!(jensen_shannon(&a, &a) < 1e-12);
    }

    #[test]
    fn jsd_disjoint_is_one() {
        let a = counts(&[("x", 10)]);
        let b = counts(&[("y", 10)]);
        assert!((jensen_shannon(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsd_symmetric_and_bounded() {
        let a = counts(&[("x", 8), ("y", 2), ("z", 1)]);
        let b = counts(&[("x", 1), ("y", 7), ("w", 3)]);
        let d1 = jensen_shannon(&a, &b);
        let d2 = jensen_shannon(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0 && d1 < 1.0);
    }

    #[test]
    fn jsd_empty_handling() {
        let a = counts(&[]);
        let b = counts(&[("x", 1)]);
        assert_eq!(jensen_shannon(&a, &a), 0.0);
        assert_eq!(jensen_shannon(&a, &b), 1.0);
    }

    #[test]
    fn kl_known_value() {
        // P = (0.5, 0.5), Q = (0.25, 0.75): D = 0.5*log2(2) + 0.5*log2(2/3)
        let p: HashMap<&str, f64> = [("a", 0.5), ("b", 0.5)].into_iter().collect();
        let q: HashMap<&str, f64> = [("a", 0.25), ("b", 0.75)].into_iter().collect();
        let expected = 0.5f64 * 2.0f64.log2() + 0.5 * (0.5f64 / 0.75).log2();
        assert!((kullback_leibler(&p, &q) - expected).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_on_missing_support() {
        let p: HashMap<&str, f64> = [("a", 1.0)].into_iter().collect();
        let q: HashMap<&str, f64> = [("b", 1.0)].into_iter().collect();
        assert!(kullback_leibler(&p, &q).is_infinite());
    }

    #[test]
    fn normalize_sums_to_one() {
        let a = counts(&[("x", 3), ("y", 1)]);
        let p = normalize(&a);
        let total: f64 = p.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((p["x"] - 0.75).abs() < 1e-12);
    }
}
