//! Fixed-width histograms for summarizing measurement distributions.
//!
//! The figure-6/7 style plots of the paper are distribution plots; our
//! experiment harness renders them as text histograms and bucketized series.

use serde::Serialize;

/// A fixed-bucket-width histogram over `f64` observations.
///
/// Observations below `min` clamp into the first bucket, observations at or
/// above `max` clamp into the last; this mirrors the "long tail collapsed
/// into the final bin" presentation common in corpus statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[min, max)` with `buckets` equal bins.
    pub fn new(min: f64, max: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(max > min, "histogram range must be non-empty");
        Histogram {
            min,
            max,
            counts: vec![0; buckets],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let nbuckets = self.counts.len();
        let idx = if value < self.min {
            self.underflow += 1;
            0
        } else if value >= self.max {
            self.overflow += 1;
            nbuckets - 1
        } else {
            let width = (self.max - self.min) / nbuckets as f64;
            (((value - self.min) / width) as usize).min(nbuckets - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn record_all(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.record(v);
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations that fell below/above the nominal range and
    /// were clamped.
    pub fn clamped(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lower(&self, i: usize) -> f64 {
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.min + width * i as f64
    }

    /// Returns `(bucket_lower, fraction_of_total)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bucket_lower(i), c as f64 / total))
            .collect()
    }

    /// Renders a compact ASCII sketch of the distribution, used by the
    /// experiment binaries to print figure-like output.
    pub fn ascii(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as f64 / peak as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>12.1} | {:<width$} {}\n",
                self.bucket_lower(i),
                "#".repeat(bar),
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0); // bucket 0
        h.record(1.9); // bucket 0
        h.record(2.0); // bucket 1
        h.record(9.99); // bucket 4
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.clamped(), (0, 0));
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-5.0);
        h.record(100.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.clamped(), (1, 1));
    }

    #[test]
    fn normalized_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record_all([0.5, 1.5, 2.5, 3.5]);
        let sum: f64 = h.normalized().iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.bucket_lower(2), 2.0);
    }

    #[test]
    fn ascii_renders_every_bucket() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "histogram range must be non-empty")]
    fn rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
