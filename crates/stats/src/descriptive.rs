//! Descriptive statistics over `f64` samples.

use serde::Serialize;

/// A five-number-plus summary of a sample: count, mean, standard deviation,
/// min, quartiles, and max.
///
/// The paper reports document-length, sentence-length, and incidence
/// distributions per corpus (Fig. 6); `Summary` is the unit in which those
/// distributions are compared.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `data`. Returns `None` for an empty sample.
    ///
    /// Quartiles use linear interpolation between closest ranks (the same
    /// convention as R's default `type = 7`).
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[count - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Quantile of an already-sorted sample with linear interpolation
/// (R `type = 7`). `q` must lie in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// Population variance of the sample; 0.0 for fewer than two observations.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 1.5811388).abs() < 1e-6);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 40.0);
        assert!((quantile_sorted(&sorted, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn summary_unsorted_input() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 4.571428571).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        quantile_sorted(&[1.0], 1.5);
    }
}
