//! Workspace determinism lints — the source-scanning rules behind
//! `repo_lint`.
//!
//! PRs 1–2 bought byte-for-byte determinism (checkpoints, JSONL traces,
//! merged histograms) with nothing stopping the next change from silently
//! breaking it. These lints enforce the invariants at the source level:
//!
//! - **`wall_clock`** — no `Instant::now` / `SystemTime` anywhere except
//!   the files on [`WALL_CLOCK_ALLOWLIST`] (real-time measurement points),
//!   and even there every occurrence carries an inline justification;
//! - **`hash_iteration`** — in the modules that feed checkpoint, JSONL,
//!   or snapshot bytes ([`DETERMINISTIC_OUTPUT_MODULES`]), every
//!   `HashMap`/`HashSet` mention must justify (inline) why iteration
//!   order cannot reach the output — typically "keys are sorted before
//!   encoding";
//! - **`untrusted_unwrap`** — no `.unwrap()` / `.expect(` in the modules
//!   that parse untrusted input ([`UNTRUSTED_INPUT_FILES`]): a panic on a
//!   malformed script or page is a bug, not an error path;
//! - **`nondet_parallelism`** — every read of the host's core count
//!   (`available_parallelism`) must justify inline why the value can only
//!   size physical thread pools and never reaches simulated seconds, byte
//!   accounting, or any checkpoint/JSONL/digest bytes;
//! - **`lossy_cast`** — no narrowing `as` casts in the modules that
//!   encode or decode durable frames ([`CODEC_MODULES`]): a value that
//!   silently wraps at encode time replays as a *different* value, which
//!   is exactly the corruption the sealed-frame digests exist to catch —
//!   use `try_from` with a typed error instead;
//! - **`hot_loop_alloc`** — no `to_string()` / `format!(` /
//!   `String::new` inside a declared hot region (the fused-stage worker
//!   loop and the text-kernel inner loops). Hot regions are delimited in
//!   source with begin/end comment markers — `lint:hot_loop` followed by
//!   `(begin): <label>` opens one, the same prefix followed by `(end)`
//!   closes it — so the rule guards exactly the loops the batching work
//!   de-allocated, not whole files: a per-record allocation reintroduced
//!   there silently undoes the arena/fast-path wins.
//!
//! The escape hatch is an inline comment on the flagged line or the line
//! directly above it:
//!
//! ```text
//! // lint:allow(<rule>): <non-empty justification>
//! ```
//!
//! An allow without a justification is itself a finding — which is also
//! how "no new allowlist entry without a justification" is enforced.
//!
//! The patterns below are spelled as `concat!` pieces so the lint does
//! not flag its own definition when it scans this file.

use std::path::{Path, PathBuf};

/// One lint finding, `file:line` addressable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

pub const RULE_WALL_CLOCK: &str = "wall_clock";
pub const RULE_HASH_ITERATION: &str = "hash_iteration";
pub const RULE_UNTRUSTED_UNWRAP: &str = "untrusted_unwrap";
pub const RULE_NONDET_PARALLELISM: &str = "nondet_parallelism";
pub const RULE_LOSSY_CAST: &str = "lossy_cast";
pub const RULE_HOT_LOOP_ALLOC: &str = "hot_loop_alloc";

const WALL_CLOCK_PATTERNS: &[&str] = &[concat!("Instant", "::now"), concat!("System", "Time")];
const HASH_PATTERNS: &[&str] = &[concat!("Hash", "Map"), concat!("Hash", "Set")];
const UNWRAP_PATTERNS: &[&str] = &[concat!(".unwrap", "()"), concat!(".expect", "(")];
const PARALLELISM_PATTERNS: &[&str] =
    &[concat!("available_", "parallelism"), concat!("num_", "cpus")];
/// Narrowing targets: a cast *to* one of these from a wider integer (or
/// from f64 to f32) can silently truncate. Widening casts (`as u64`,
/// `as f64`, `as i64`) are not flagged.
const LOSSY_CAST_PATTERNS: &[&str] = &[
    concat!(" as ", "u8"),
    concat!(" as ", "u16"),
    concat!(" as ", "u32"),
    concat!(" as ", "i8"),
    concat!(" as ", "i16"),
    concat!(" as ", "i32"),
    concat!(" as ", "f32"),
    concat!(" as ", "usize"),
    concat!(" as ", "isize"),
];
/// Per-record allocators that must not appear inside a declared hot
/// region (see [`RULE_HOT_LOOP_ALLOC`]).
const HOT_ALLOC_PATTERNS: &[&str] = &[
    concat!(".to_", "string()"),
    concat!("format", "!("),
    concat!("String", "::new"),
    concat!("String", "::from"),
    concat!(".to_", "owned()"),
];
/// Region delimiters for the hot-loop rule, assembled at runtime so this
/// file's own mentions do not open a region. A begin marker carries a
/// label naming the loop (`: fused worker`); the matching end marker
/// closes it.
const HOT_BEGIN: &str = concat!("lint:hot_loop", "(begin)");
const HOT_END: &str = concat!("lint:hot_loop", "(end)");

/// Files allowed to contain wall-clock calls, each with the justification
/// for why real time is acceptable there. Every occurrence inside these
/// files still needs its own inline `lint:allow(wall_clock)` comment; a
/// new entry here without a justification string fails the lint's own
/// self-check ([`allowlist_is_justified`]).
pub const WALL_CLOCK_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/flow/src/executor.rs",
        "wall_ms is runtime-only diagnostics, excluded from checkpoints and digests",
    ),
    (
        "crates/bench/src/experiments/scaling_exps.rs",
        "Fig-3 microbenchmarks time real tool invocations",
    ),
    (
        "crates/bench/src/experiments/recovery_exps.rs",
        "recovery experiments report real re-execution wall time",
    ),
    (
        "crates/bench/src/experiments/throughput_exps.rs",
        "the throughput harness exists to measure real wall-clock records/sec",
    ),
    (
        "crates/bench/src/experiments/serve_exps.rs",
        "the serving harness measures real query latency and wall-clock QPS",
    ),
    (
        "crates/bench/src/experiments/live_exps.rs",
        "the live harness reports real per-round crawl-to-queryable wall freshness",
    ),
    (
        "crates/bench/src/experiments/analyze_exps.rs",
        "reports the real wall cost of the static analysis itself, non-JSON mode only",
    ),
    (
        "crates/flow/src/shuffle.rs",
        "per-chunk wall_ms mirrors the executor's runtime-only diagnostics; stripped from frames' deterministic surfaces",
    ),
    (
        "crates/bench/src/experiments/shuffle_exps.rs",
        "the shuffle harness measures real scale-out records/sec across shard counts",
    ),
];

/// Modules whose bytes end up in checkpoints, JSONL traces, or snapshots.
/// Any hash-container mention here must justify its ordering story.
pub const DETERMINISTIC_OUTPUT_MODULES: &[&str] = &[
    "crates/resilience/src/checkpoint.rs",
    "crates/resilience/src/codec.rs",
    "crates/observe/src/registry.rs",
    "crates/observe/src/trace.rs",
    "crates/observe/src/report.rs",
    "crates/observe/src/json.rs",
    "crates/bench/src/report.rs",
    "crates/serve/src/snapshot.rs",
    "crates/live/src/watermark.rs",
    "crates/live/src/incremental.rs",
    "crates/flow/src/transport.rs",
    "crates/flow/src/shuffle.rs",
    "crates/resilience/src/frame.rs",
];

/// Modules that parse untrusted input (scripts, crawled pages, shuffle
/// frames off the wire): matched by file name, panics on input are
/// forbidden.
pub const UNTRUSTED_INPUT_FILES: &[&str] =
    &["parser.rs", "meteor.rs", "html.rs", "query.rs", "transport.rs", "frame.rs"];

/// Modules that encode/decode durable frames (checkpoints, snapshots,
/// watermarks, retained aggregate state). Lossy `as` casts here are
/// silent frame corruption; [`RULE_LOSSY_CAST`] forbids them.
pub const CODEC_MODULES: &[&str] = &[
    "crates/resilience/src/codec.rs",
    "crates/resilience/src/checkpoint.rs",
    "crates/serve/src/snapshot.rs",
    "crates/live/src/watermark.rs",
    "crates/live/src/incremental.rs",
];

/// Returns `Some(justified)` when `line` carries an inline allow for
/// `rule`: `justified` is true when a non-empty justification follows.
fn allow_on_line(line: &str, rule: &str) -> Option<bool> {
    let marker = format!("lint:allow({rule})");
    let at = line.find(&marker)?;
    let rest = &line[at + marker.len()..];
    Some(rest.strip_prefix(':').is_some_and(|j| !j.trim().is_empty()))
}

/// Checks line `i` (0-based) of `lines` for an allow covering it: the
/// line itself or the line directly above.
fn allowed(lines: &[&str], i: usize, rule: &str) -> Option<bool> {
    allow_on_line(lines[i], rule).or_else(|| {
        if i > 0 {
            allow_on_line(lines[i - 1], rule)
        } else {
            None
        }
    })
}

fn is_comment_only(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#!") || t.starts_with("#[")
}

/// Lints one file's content. `rel` is the workspace-relative path with
/// forward slashes.
pub fn lint_file(rel: &str, content: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());
    let file_name = rel.rsplit('/').next().unwrap_or(rel);
    let wall_clock_listed = WALL_CLOCK_ALLOWLIST.iter().any(|(p, _)| *p == rel);
    let deterministic_output = DETERMINISTIC_OUTPUT_MODULES.contains(&rel);
    let untrusted = UNTRUSTED_INPUT_FILES.contains(&file_name);
    let codec = CODEC_MODULES.contains(&rel);

    let check = |findings: &mut Vec<LintFinding>,
                     i: usize,
                     rule: &'static str,
                     message: String| {
        match allowed(&lines, i, rule) {
            Some(true) => {}
            Some(false) => findings.push(LintFinding {
                rule,
                file: rel.to_string(),
                line: i + 1,
                message: format!(
                    "lint:allow({rule}) needs a justification: `// lint:allow({rule}): <reason>`"
                ),
            }),
            None => findings.push(LintFinding {
                rule,
                file: rel.to_string(),
                line: i + 1,
                message,
            }),
        }
    };

    let mut hot_region = false;
    for (i, line) in lines.iter().enumerate() {
        // Hot-region delimiters live in comments, so handle them before
        // the comment-only skip.
        if let Some(at) = line.find(HOT_BEGIN) {
            let labeled = line[at + HOT_BEGIN.len()..]
                .strip_prefix(':')
                .is_some_and(|l| !l.trim().is_empty());
            if hot_region || !labeled {
                findings.push(LintFinding {
                    rule: RULE_HOT_LOOP_ALLOC,
                    file: rel.to_string(),
                    line: i + 1,
                    message: if hot_region {
                        "nested hot_loop(begin): close the previous region first".to_string()
                    } else {
                        format!("hot_loop(begin) needs a label: `// {HOT_BEGIN}: <loop name>`")
                    },
                });
            }
            hot_region = true;
            continue;
        }
        if line.contains(HOT_END) {
            if !hot_region {
                findings.push(LintFinding {
                    rule: RULE_HOT_LOOP_ALLOC,
                    file: rel.to_string(),
                    line: i + 1,
                    message: "hot_loop(end) without a matching begin".to_string(),
                });
            }
            hot_region = false;
            continue;
        }
        if is_comment_only(line) {
            continue;
        }
        if hot_region && HOT_ALLOC_PATTERNS.iter().any(|p| line.contains(p)) {
            check(
                &mut findings,
                i,
                RULE_HOT_LOOP_ALLOC,
                "per-record allocation inside a declared hot loop: hoist it out, use the \
                 batch arena / reusable scratch, or justify with \
                 `// lint:allow(hot_loop_alloc): <reason>`"
                    .to_string(),
            );
        }
        // wall_clock applies to every file, test code included: a test
        // that reads the clock is a flaky test waiting to happen.
        if WALL_CLOCK_PATTERNS.iter().any(|p| line.contains(p)) {
            if wall_clock_listed {
                check(
                    &mut findings,
                    i,
                    RULE_WALL_CLOCK,
                    "wall-clock read needs an inline `// lint:allow(wall_clock): <reason>`"
                        .to_string(),
                );
            } else {
                findings.push(LintFinding {
                    rule: RULE_WALL_CLOCK,
                    file: rel.to_string(),
                    line: i + 1,
                    message: "wall-clock read outside the allowlist; deterministic code must \
                              use the simulated clock (add the file to WALL_CLOCK_ALLOWLIST in \
                              crates/analyze/src/lint.rs with a justification if real time is \
                              genuinely required)"
                        .to_string(),
                });
            }
        }
        // nondet_parallelism also applies everywhere: a core-count read in
        // test code can silently make a "deterministic" assertion
        // machine-dependent.
        if PARALLELISM_PATTERNS.iter().any(|p| line.contains(p)) {
            check(
                &mut findings,
                i,
                RULE_NONDET_PARALLELISM,
                "host core-count read: justify that the value only sizes physical thread \
                 pools and never reaches simulated output with \
                 `// lint:allow(nondet_parallelism): <reason>`"
                    .to_string(),
            );
        }
        if i >= test_start {
            continue; // remaining rules skip `#[cfg(test)]` code
        }
        if deterministic_output
            && !line.trim_start().starts_with("use ")
            && HASH_PATTERNS.iter().any(|p| line.contains(p))
        {
            check(
                &mut findings,
                i,
                RULE_HASH_ITERATION,
                "hash container in a deterministic-output module: justify why iteration \
                 order cannot reach checkpoint/JSONL/snapshot bytes with \
                 `// lint:allow(hash_iteration): <reason>`"
                    .to_string(),
            );
        }
        if untrusted && UNWRAP_PATTERNS.iter().any(|p| line.contains(p)) {
            check(
                &mut findings,
                i,
                RULE_UNTRUSTED_UNWRAP,
                "panic on untrusted input: return a typed error instead of unwrap/expect"
                    .to_string(),
            );
        }
        if codec && LOSSY_CAST_PATTERNS.iter().any(|p| line.contains(p)) {
            check(
                &mut findings,
                i,
                RULE_LOSSY_CAST,
                "lossy `as` cast in a codec module: a silently wrapped value replays as a \
                 different frame — use try_from with a typed error, or justify with \
                 `// lint:allow(lossy_cast): <reason>`"
                    .to_string(),
            );
        }
    }
    if hot_region {
        findings.push(LintFinding {
            rule: RULE_HOT_LOOP_ALLOC,
            file: rel.to_string(),
            line: lines.len(),
            message: "hot_loop(begin) region never closed with hot_loop(end)".to_string(),
        });
    }
    findings
}

/// Recursively collects `.rs` files under `root`, skipping `vendor/`,
/// `target/`, and hidden directories. Paths come back sorted so findings
/// are deterministic.
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Lints every Rust source file in the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for path in rust_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Ok(content) = std::fs::read_to_string(&path) else { continue };
        findings.extend(lint_file(&rel, &content));
    }
    findings
}

/// Self-check: every wall-clock allowlist entry must carry a non-empty
/// justification (satisfies "fail on any new allowlist entry without a
/// justification comment").
pub fn allowlist_is_justified() -> Result<(), String> {
    for (path, why) in WALL_CLOCK_ALLOWLIST {
        if why.trim().is_empty() {
            return Err(format!("WALL_CLOCK_ALLOWLIST entry '{path}' has no justification"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Patterns are assembled at runtime so these test sources do not
    // themselves trip the workspace scan.
    fn wall(expr: &str) -> String {
        format!("let t = {}{}({expr});\n", "Instant", "::now")
    }

    #[test]
    fn wall_clock_outside_allowlist_is_flagged() {
        let findings = lint_file("crates/foo/src/lib.rs", &wall(""));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_WALL_CLOCK);
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("outside the allowlist"));
    }

    #[test]
    fn wall_clock_in_allowlisted_file_still_needs_inline_allow() {
        let rel = "crates/flow/src/executor.rs";
        let bare = lint_file(rel, &wall(""));
        assert_eq!(bare.len(), 1);
        assert!(bare[0].message.contains("inline"));

        let allowed = format!("// lint:allow(wall_clock): wall_ms is runtime-only\n{}", wall(""));
        assert!(lint_file(rel, &allowed).is_empty());

        let unjustified = format!("// lint:allow(wall_clock)\n{}", wall(""));
        let findings = lint_file(rel, &unjustified);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("justification"));
    }

    #[test]
    fn hash_iteration_scoped_to_deterministic_modules() {
        let hash_line = format!("let m: {}{}<u32, u32> = Default::default();\n", "Hash", "Map");
        assert!(lint_file("crates/flow/src/executor.rs", &hash_line).is_empty());
        let findings = lint_file("crates/resilience/src/checkpoint.rs", &hash_line);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_HASH_ITERATION);
        // `use` declarations and justified lines pass
        let used = format!("use std::collections::{}{};\n", "Hash", "Map");
        assert!(lint_file("crates/resilience/src/checkpoint.rs", &used).is_empty());
        let justified = format!("{} // lint:allow(hash_iteration): sorted before encode\n",
            hash_line.trim_end());
        assert!(lint_file("crates/resilience/src/checkpoint.rs", &justified).is_empty());
    }

    #[test]
    fn untrusted_unwrap_flagged_outside_tests_only() {
        let body = format!("fn f(x: Option<u8>) -> u8 {{ x{}{} }}\n", ".unwrap", "()");
        let findings = lint_file("crates/flow/src/meteor.rs", &body);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_UNTRUSTED_UNWRAP);
        // the same code under #[cfg(test)] is fine
        let tested = format!("#[cfg(test)]\nmod tests {{\n    {body}}}\n");
        assert!(lint_file("crates/flow/src/meteor.rs", &tested).is_empty());
        // and files outside the untrusted set are fine
        assert!(lint_file("crates/flow/src/executor.rs", &body).is_empty());
    }

    #[test]
    fn allow_comment_on_previous_line_covers_the_next() {
        let content = format!("// lint:allow(untrusted_unwrap): length checked above\nlet y = x{}{};\n",
            ".unwrap", "()");
        assert!(lint_file("crates/corpus/src/html.rs", &content).is_empty());
    }

    #[test]
    fn allowlist_entries_are_justified() {
        allowlist_is_justified().unwrap();
    }

    #[test]
    fn parallelism_read_needs_justified_inline_allow() {
        let read = format!(
            "let n = std::thread::{}{}().map(usize::from).unwrap_or(8);\n",
            "available_", "parallelism"
        );
        let findings = lint_file("crates/flow/src/executor.rs", &read);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_NONDET_PARALLELISM);
        assert!(findings[0].message.contains("core-count"));

        let justified = format!(
            "// lint:allow(nondet_parallelism): physical worker cap only\n{read}"
        );
        assert!(lint_file("crates/flow/src/executor.rs", &justified).is_empty());

        let unjustified = format!("// lint:allow(nondet_parallelism)\n{read}");
        let findings = lint_file("crates/flow/src/executor.rs", &unjustified);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("justification"));
    }

    #[test]
    fn lossy_cast_scoped_to_codec_modules() {
        let narrow = format!("self.buf.push(v{}{});\n", " as ", "u8");
        // outside codec modules: fine
        assert!(lint_file("crates/flow/src/executor.rs", &narrow).is_empty());
        // inside: flagged
        let findings = lint_file("crates/resilience/src/codec.rs", &narrow);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_LOSSY_CAST);
        assert!(findings[0].message.contains("try_from"));
        // widening casts are not lossy
        let widen = format!("let n = v{}{};\n", " as ", "u64");
        assert!(lint_file("crates/resilience/src/codec.rs", &widen).is_empty());
        // the escape hatch works, and needs a justification
        let justified = format!(
            "// lint:allow(lossy_cast): value is a bool, 0 or 1 by construction\n{narrow}"
        );
        assert!(lint_file("crates/resilience/src/codec.rs", &justified).is_empty());
        let unjustified = format!("// lint:allow(lossy_cast)\n{narrow}");
        let findings = lint_file("crates/resilience/src/codec.rs", &unjustified);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("justification"));
        // test code is exempt, as for the other scoped rules
        let tested = format!("#[cfg(test)]\nmod tests {{\n    {narrow}}}\n");
        assert!(lint_file("crates/resilience/src/codec.rs", &tested).is_empty());
    }

    #[test]
    fn hot_loop_alloc_flagged_only_inside_declared_regions() {
        let begin = format!("// {}{}: fused worker", "lint:hot_loop", "(begin)");
        let end = format!("// {}{}", "lint:hot_loop", "(end)");
        let alloc = format!("let s = x{}{};\n", ".to_", "string()");

        // the same allocation outside any region is fine
        assert!(lint_file("crates/flow/src/executor.rs", &alloc).is_empty());

        // inside a region: flagged, with the arena hint
        let hot = format!("{begin}\nfor r in batch {{\n    {alloc}}}\n{end}\n");
        let findings = lint_file("crates/flow/src/executor.rs", &hot);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_HOT_LOOP_ALLOC);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("batch arena"));

        // format! and String::new are covered too
        let fmt = format!("{begin}\nlet s = {}{}\"x{{y}}\");\n{end}\n", "format", "!(");
        assert_eq!(lint_file("crates/flow/src/executor.rs", &fmt).len(), 1);
        let snew = format!("{begin}\nlet s = {}{}();\n{end}\n", "String", "::new");
        assert_eq!(lint_file("crates/flow/src/executor.rs", &snew).len(), 1);

        // the escape hatch works and demands a justification
        let justified = format!(
            "{begin}\n// lint:allow(hot_loop_alloc): cold error path\n{alloc}{end}\n"
        );
        assert!(lint_file("crates/flow/src/executor.rs", &justified).is_empty());
        let unjustified = format!("{begin}\n// lint:allow(hot_loop_alloc)\n{alloc}{end}\n");
        let findings = lint_file("crates/flow/src/executor.rs", &unjustified);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("justification"));
    }

    #[test]
    fn hot_loop_markers_must_be_labeled_and_balanced() {
        let begin = format!("// {}{}: k", "lint:hot_loop", "(begin)");
        let end = format!("// {}{}", "lint:hot_loop", "(end)");

        // begin without a label
        let bare = format!("// {}{}\n{end}\n", "lint:hot_loop", "(begin)");
        let findings = lint_file("crates/flow/src/executor.rs", &bare);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("label"));

        // end without begin
        let findings = lint_file("crates/flow/src/executor.rs", &format!("{end}\n"));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("without a matching begin"));

        // begin never closed
        let findings = lint_file("crates/flow/src/executor.rs", &format!("{begin}\n"));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("never closed"));

        // nested begin
        let nested = format!("{begin}\n{begin}\n{end}\n");
        let findings = lint_file("crates/flow/src/executor.rs", &nested);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("nested"));

        // balanced, labeled, empty region: clean
        let ok = format!("{begin}\n{end}\n");
        assert!(lint_file("crates/flow/src/executor.rs", &ok).is_empty());
    }

    #[test]
    fn parallelism_rule_covers_test_code_too() {
        let body = format!(
            "#[cfg(test)]\nmod tests {{\n    fn n() -> usize {{ {}{}().into() }}\n}}\n",
            "num_", "cpus"
        );
        let findings = lint_file("crates/flow/src/lib.rs", &body);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RULE_NONDET_PARALLELISM);
    }
}
