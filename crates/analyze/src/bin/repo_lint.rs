//! `repo_lint` — workspace determinism lints as a CI gate.
//!
//! Scans every `.rs` file in the workspace (excluding `vendor/` and
//! `target/`) for the rules in `websift_analyze::lint` and prints
//! `file:line: [rule] message` findings. Exits non-zero when anything is
//! flagged, so `ci.sh` can use it as a hard gate.
//!
//! Usage: `repo_lint [workspace-root]` (defaults to the workspace this
//! binary was built from).

use std::path::PathBuf;
use websift_analyze::lint::{allowlist_is_justified, lint_workspace};

fn main() {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // crates/analyze -> workspace root
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let root = root.canonicalize().unwrap_or(root);

    if let Err(msg) = allowlist_is_justified() {
        eprintln!("repo_lint: {msg}");
        std::process::exit(1);
    }

    let findings = lint_workspace(&root);
    if findings.is_empty() {
        println!("repo_lint: workspace clean ({})", root.display());
        return;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("repo_lint: {} finding(s)", findings.len());
    std::process::exit(1);
}
