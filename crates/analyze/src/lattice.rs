//! Abstract domains for the field-flow plan analysis.
//!
//! The plan analyzer in `websift-flow::fieldflow` runs a forward abstract
//! interpretation over the logical plan; this module holds the lattices it
//! interprets into, kept here so any layer (serving's static query checker,
//! the live session's pre-flight) can consume the inferred facts without
//! depending on plan types:
//!
//! - [`Presence`] — is a record field definitely there, possibly there, or
//!   absent after an operator? Join goes to `Possible`, the least precise
//!   element: two branches disagreeing about a field can only promise
//!   "maybe".
//! - [`FieldType`] — the value type a writer declared for a field, with
//!   `Unknown` as top (join of two different concrete types).
//! - [`FieldFact`] — one field's presence + type + last producer, the unit
//!   the per-edge schema maps field names to.
//! - [`Interval`] / [`CostEnvelope`] — closed `[lo, hi]` ranges over
//!   cardinality and byte estimates, propagated through per-operator
//!   selectivity models.
//!
//! Everything here is a join-semilattice: `join` is commutative,
//! associative, and idempotent, which is what makes the interpretation
//! order-independent (the tests below pin those laws).

use std::collections::BTreeMap;

/// Three-valued field presence. `Absent` and `Definite` are the precise
/// elements; `Possible` is the top they join to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Presence {
    Absent,
    Possible,
    Definite,
}

impl Presence {
    /// Least upper bound: agreement keeps the precise value, disagreement
    /// (or any `Possible` input) yields `Possible`.
    pub fn join(self, other: Presence) -> Presence {
        if self == other {
            self
        } else {
            Presence::Possible
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Presence::Absent => "absent",
            Presence::Possible => "possible",
            Presence::Definite => "definite",
        }
    }
}

/// The value type a field carries, mirroring the record model's `Value`
/// variants. `Unknown` is the lattice top: an undeclared write, or the
/// join of two conflicting declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FieldType {
    Bool,
    Int,
    Float,
    Str,
    Array,
    Object,
    Unknown,
}

impl FieldType {
    /// Least upper bound: equal types stay, different types widen to
    /// `Unknown`.
    pub fn join(self, other: FieldType) -> FieldType {
        if self == other {
            self
        } else {
            FieldType::Unknown
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            FieldType::Bool => "bool",
            FieldType::Int => "int",
            FieldType::Float => "float",
            FieldType::Str => "str",
            FieldType::Array => "array",
            FieldType::Object => "object",
            FieldType::Unknown => "unknown",
        }
    }
}

/// Everything the analysis knows about one field on one plan edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldFact {
    pub presence: Presence,
    pub ty: FieldType,
    /// Name of the operator that last wrote the field (`None` for source
    /// schema fields, or when two joined branches disagree).
    pub producer: Option<String>,
}

impl FieldFact {
    pub fn definite(ty: FieldType, producer: Option<&str>) -> FieldFact {
        FieldFact { presence: Presence::Definite, ty, producer: producer.map(str::to_string) }
    }

    /// Pointwise join; producers that disagree are dropped.
    pub fn join(&self, other: &FieldFact) -> FieldFact {
        FieldFact {
            presence: self.presence.join(other.presence),
            ty: self.ty.join(other.ty),
            producer: if self.producer == other.producer { self.producer.clone() } else { None },
        }
    }
}

/// Per-edge record schema: field name → inferred fact. Fields not in the
/// map are `Absent`.
pub type FieldSchema = BTreeMap<String, FieldFact>;

/// A closed interval `[lo, hi]` over non-negative estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval { lo: lo.min(hi), hi: lo.max(hi) }
    }

    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Elementwise product — composing a selectivity `[lo, hi]` onto an
    /// estimate (both ends non-negative, so lo*lo / hi*hi is the hull).
    pub fn scale(self, by: Interval) -> Interval {
        Interval { lo: self.lo * by.lo, hi: self.hi * by.hi }
    }

    /// Convex hull — the interval join.
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval { lo: self.lo + other.lo, hi: self.hi + other.hi }
    }
}

/// Cardinality + byte estimates for the records flowing over one plan
/// edge. Absolute when the analysis was seeded with a source estimate,
/// otherwise relative to one source record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEnvelope {
    /// Record count flowing over the edge.
    pub records: Interval,
    /// Total bytes flowing over the edge.
    pub bytes: Interval,
}

impl CostEnvelope {
    pub fn new(records: Interval, bytes: Interval) -> CostEnvelope {
        CostEnvelope { records, bytes }
    }

    pub fn join(self, other: CostEnvelope) -> CostEnvelope {
        CostEnvelope {
            records: self.records.join(other.records),
            bytes: self.bytes.join(other.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRESENCES: [Presence; 3] = [Presence::Absent, Presence::Possible, Presence::Definite];
    const TYPES: [FieldType; 7] = [
        FieldType::Bool,
        FieldType::Int,
        FieldType::Float,
        FieldType::Str,
        FieldType::Array,
        FieldType::Object,
        FieldType::Unknown,
    ];

    #[test]
    fn presence_join_laws() {
        for a in PRESENCES {
            assert_eq!(a.join(a), a, "idempotent");
            for b in PRESENCES {
                assert_eq!(a.join(b), b.join(a), "commutative");
                for c in PRESENCES {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associative");
                }
            }
        }
        assert_eq!(Presence::Absent.join(Presence::Definite), Presence::Possible);
        assert_eq!(Presence::Possible.join(Presence::Definite), Presence::Possible);
    }

    #[test]
    fn field_type_join_laws() {
        for a in TYPES {
            assert_eq!(a.join(a), a, "idempotent");
            for b in TYPES {
                assert_eq!(a.join(b), b.join(a), "commutative");
                // Unknown is absorbing top
                assert_eq!(a.join(FieldType::Unknown), FieldType::Unknown);
            }
        }
        assert_eq!(FieldType::Int.join(FieldType::Str), FieldType::Unknown);
    }

    #[test]
    fn fact_join_merges_pointwise() {
        let a = FieldFact::definite(FieldType::Int, Some("writer-a"));
        let b = FieldFact::definite(FieldType::Str, Some("writer-b"));
        let joined = a.join(&b);
        assert_eq!(joined.presence, Presence::Definite);
        assert_eq!(joined.ty, FieldType::Unknown);
        assert_eq!(joined.producer, None);
        // agreement preserves everything
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn interval_arithmetic() {
        let base = Interval::point(100.0);
        let filtered = base.scale(Interval::new(0.0, 1.0));
        assert_eq!(filtered, Interval { lo: 0.0, hi: 100.0 });
        let fanned = filtered.scale(Interval::new(0.0, 8.0));
        assert_eq!(fanned.hi, 800.0);
        assert_eq!(base + Interval::point(1.0), Interval::point(101.0));
        assert_eq!(
            Interval::new(1.0, 2.0).join(Interval::new(0.5, 1.5)),
            Interval { lo: 0.5, hi: 2.0 }
        );
        // constructor normalizes flipped bounds
        assert_eq!(Interval::new(5.0, 2.0), Interval { lo: 2.0, hi: 5.0 });
    }

    #[test]
    fn envelope_join_is_componentwise() {
        let a = CostEnvelope::new(Interval::point(10.0), Interval::point(1000.0));
        let b = CostEnvelope::new(Interval::new(0.0, 5.0), Interval::new(0.0, 4000.0));
        let j = a.join(b);
        assert_eq!(j.records, Interval { lo: 0.0, hi: 10.0 });
        assert_eq!(j.bytes, Interval { lo: 0.0, hi: 4000.0 });
    }
}
