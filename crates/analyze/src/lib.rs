//! Diagnostics core for websift's static analyses.
//!
//! The paper's costliest pitfalls — the OpenNLP 1.4-vs-1.5 class-loader
//! conflict, operators applied before the annotations they read existed,
//! flows admitted that could never fit worker memory — were all discovered
//! at *runtime*, after hours of cluster time. Every one of them is
//! statically decidable from the operators' semantic annotations. This
//! crate holds the shared diagnostic vocabulary those analyses speak:
//!
//! - [`Diagnostic`] — a structured finding (`code`, `severity`, plan
//!   `node`, 1-based script `line`, human message);
//! - deterministic ordering ([`sort_diagnostics`]) and JSON export
//!   ([`diagnostics_to_json`]) through the hand-rolled deterministic
//!   writer, so diagnostic dumps are byte-stable across runs;
//! - [`lint`] — the workspace source lints (wall-clock, hash-iteration,
//!   untrusted-input `unwrap`) behind the `repo_lint` binary;
//! - [`lattice`] — the abstract domains (field presence/type lattices,
//!   cost-envelope intervals) the field-flow plan analysis interprets into.
//!
//! The plan analyzer itself lives in `websift-flow::analyze` (it needs the
//! plan and cluster types); this crate stays dependency-light so any layer
//! can emit diagnostics.

pub mod lattice;
pub mod lint;

use websift_observe::json::{array, ObjectWriter};

/// How bad a finding is. `Error` diagnostics reject a plan; `Warning`
/// diagnostics are advisory (dead writes, unreachable nodes, unused
/// variables); `Info` diagnostics surface silent behaviour the author
/// may not have intended (a `Custom` aggregate disabling partial
/// aggregation). Declaration order gives `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured finding from a static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `WS001` (see DESIGN.md for the index).
    pub code: String,
    pub severity: Severity,
    /// Plan node the finding anchors to, when one exists.
    pub node: Option<usize>,
    /// 1-based Meteor script line, when the plan came from a script.
    pub line: Option<usize>,
    pub message: String,
}

impl Diagnostic {
    pub fn new(code: &str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            node: None,
            line: None,
            message: message.into(),
        }
    }

    pub fn error(code: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, message)
    }

    pub fn warning(code: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warning, message)
    }

    pub fn info(code: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Info, message)
    }

    pub fn with_node(mut self, node: usize) -> Diagnostic {
        self.node = Some(node);
        self
    }

    pub fn with_line(mut self, line: usize) -> Diagnostic {
        self.line = Some(line);
        self
    }

    /// Renders the diagnostic as a JSON object; absent `node`/`line` are
    /// omitted rather than emitted as `null`.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("code", &self.code).str("severity", self.severity.as_str());
        if let Some(node) = self.node {
            w.u64("node", node as u64);
        }
        if let Some(line) = self.line {
            w.u64("line", line as u64);
        }
        w.str("message", &self.message).finish()
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        } else if let Some(node) = self.node {
            write!(f, " node {node}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Sorts diagnostics into the canonical deterministic order: plan order
/// first (diagnostics without a node sort last), then code, then message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let ka = (a.node.unwrap_or(usize::MAX), a.line.unwrap_or(usize::MAX));
        let kb = (b.node.unwrap_or(usize::MAX), b.line.unwrap_or(usize::MAX));
        ka.cmp(&kb)
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Renders a slice of diagnostics as a JSON array (compact, byte-stable
/// for equal inputs).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    array(diags.iter().map(Diagnostic::to_json))
}

/// True when any diagnostic is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_omits_absent_fields() {
        let d = Diagnostic::error("WS001", "field 'x' missing");
        assert_eq!(
            d.to_json(),
            r#"{"code":"WS001","severity":"error","message":"field 'x' missing"}"#
        );
        let d = d.with_node(3).with_line(7);
        assert_eq!(
            d.to_json(),
            r#"{"code":"WS001","severity":"error","node":3,"line":7,"message":"field 'x' missing"}"#
        );
    }

    #[test]
    fn sorting_is_canonical_and_stable() {
        let mut diags = vec![
            Diagnostic::warning("WS006", "b").with_node(5),
            Diagnostic::error("WS001", "a").with_node(2),
            Diagnostic::error("WS007", "cluster-wide"),
            Diagnostic::warning("WS003", "a").with_node(2),
        ];
        sort_diagnostics(&mut diags);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["WS001", "WS003", "WS006", "WS007"]);
        // re-sorting a shuffled clone yields identical bytes
        let mut again = vec![diags[3].clone(), diags[0].clone(), diags[2].clone(), diags[1].clone()];
        sort_diagnostics(&mut again);
        assert_eq!(diagnostics_to_json(&again), diagnostics_to_json(&diags));
    }

    #[test]
    fn severity_ranks_and_displays() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert!(has_errors(&[Diagnostic::error("WS002", "x")]));
        assert!(!has_errors(&[Diagnostic::warning("WS003", "x")]));
        assert!(!has_errors(&[Diagnostic::info("WS010", "x")]));
        let d = Diagnostic::warning("WS005", "unused").with_line(4);
        assert_eq!(d.to_string(), "warning [WS005] line 4: unused");
        let d = Diagnostic::info("WS010", "custom aggregate").with_node(2);
        assert_eq!(d.to_string(), "info [WS010] node 2: custom aggregate");
    }
}
