//! Cost profiler: attributes simulated seconds and bytes to a tree of
//! scopes and exports folded stacks (flamegraph format).
//!
//! Scopes are named paths like `["flow", "op:ner_person", "startup"]`.
//! [`Profiler::record`] charges *self* cost to the leaf; *total* cost of
//! an interior scope is its self cost plus all descendants, computed at
//! read time so recording stays a single tree walk.
//!
//! The folded-stack export writes one line per scope with non-zero self
//! time — `flow;op:ner_person;startup 41200000` — with values in
//! integer simulated microseconds, so the output is byte-deterministic
//! and directly consumable by `flamegraph.pl` / speedscope.

use parking_lot::Mutex;
use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct Node {
    self_secs: f64,
    self_bytes: u64,
    calls: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn total_secs(&self) -> f64 {
        self.self_secs + self.children.values().map(Node::total_secs).sum::<f64>()
    }

    fn total_bytes(&self) -> u64 {
        self.self_bytes + self.children.values().map(Node::total_bytes).sum::<u64>()
    }
}

/// Aggregated statistics for one scope in the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeStat {
    /// Path from the root, e.g. `["crawl", "round", "fetch"]`.
    pub path: Vec<String>,
    /// Simulated seconds charged directly to this scope.
    pub self_secs: f64,
    /// Self plus all descendant seconds.
    pub total_secs: f64,
    /// Bytes charged directly to this scope.
    pub self_bytes: u64,
    /// Self plus all descendant bytes.
    pub total_bytes: u64,
    /// Number of `record` calls landing on this scope.
    pub calls: u64,
}

impl ScopeStat {
    /// `a;b;c` rendering of the path.
    pub fn folded_path(&self) -> String {
        self.path.join(";")
    }
}

/// The profiler: a mutex-guarded scope tree.
#[derive(Debug, Default)]
pub struct Profiler {
    root: Mutex<Node>,
}

impl Profiler {
    /// Charges `secs` simulated seconds and `bytes` to the scope at
    /// `path`, creating intermediate scopes as needed. An empty path
    /// charges the (invisible) root and is ignored in exports.
    pub fn record(&self, path: &[&str], secs: f64, bytes: u64) {
        let mut root = self.root.lock();
        let mut node = &mut *root;
        for part in path {
            node = node.children.entry((*part).to_string()).or_default();
        }
        node.self_secs += secs;
        node.self_bytes += bytes;
        node.calls += 1;
    }

    /// Every scope with any recorded activity, in depth-first
    /// lexicographic order (deterministic).
    pub fn scopes(&self) -> Vec<ScopeStat> {
        let root = self.root.lock();
        let mut out = Vec::new();
        let mut path = Vec::new();
        collect(&root, &mut path, &mut out);
        out
    }

    /// Total simulated seconds across the whole tree.
    pub fn total_secs(&self) -> f64 {
        self.root.lock().total_secs()
    }

    /// Folded-stack (flamegraph collapsed) export: one
    /// `path;to;scope <microseconds>` line per scope with non-zero self
    /// time, sorted lexicographically. Values are rounded to integer
    /// simulated microseconds.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for scope in self.scopes() {
            let usecs = (scope.self_secs * 1e6).round() as u64;
            if usecs == 0 {
                continue;
            }
            out.push_str(&scope.folded_path());
            out.push(' ');
            out.push_str(&usecs.to_string());
            out.push('\n');
        }
        out
    }
}

fn collect(node: &Node, path: &mut Vec<String>, out: &mut Vec<ScopeStat>) {
    for (name, child) in &node.children {
        path.push(name.clone());
        out.push(ScopeStat {
            path: path.clone(),
            self_secs: child.self_secs,
            total_secs: child.total_secs(),
            self_bytes: child.self_bytes,
            total_bytes: child.total_bytes(),
            calls: child.calls,
        });
        collect(child, path, out);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_and_total_attribution() {
        let p = Profiler::default();
        p.record(&["flow"], 1.0, 0);
        p.record(&["flow", "op:a"], 2.0, 100);
        p.record(&["flow", "op:a", "startup"], 0.5, 0);
        p.record(&["flow", "op:b"], 4.0, 200);

        let scopes = p.scopes();
        let get = |path: &str| {
            scopes
                .iter()
                .find(|s| s.folded_path() == path)
                .unwrap_or_else(|| panic!("missing scope {path}"))
        };
        assert_eq!(get("flow").self_secs, 1.0);
        assert_eq!(get("flow").total_secs, 7.5);
        assert_eq!(get("flow").total_bytes, 300);
        assert_eq!(get("flow;op:a").total_secs, 2.5);
        assert_eq!(get("flow;op:a;startup").calls, 1);
        assert_eq!(p.total_secs(), 7.5);
    }

    #[test]
    fn folded_output_is_sorted_and_parseable() {
        let p = Profiler::default();
        p.record(&["z", "late"], 0.25, 0);
        p.record(&["a", "early"], 1.5, 0);
        p.record(&["a"], 0.0, 10); // zero self time → omitted
        let folded = p.folded();
        assert_eq!(folded, "a;early 1500000\nz;late 250000\n");
        for line in folded.lines() {
            let (path, value) = line.rsplit_once(' ').unwrap();
            assert!(!path.is_empty());
            value.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn repeated_records_accumulate() {
        let p = Profiler::default();
        for _ in 0..3 {
            p.record(&["crawl", "round", "fetch"], 0.1, 50);
        }
        let s = &p.scopes()[2];
        assert_eq!(s.folded_path(), "crawl;round;fetch");
        assert_eq!(s.calls, 3);
        assert_eq!(s.self_bytes, 150);
        assert!((s.self_secs - 0.3).abs() < 1e-12);
    }
}
