//! The metrics registry: counters, gauges, and log-scaled histograms
//! keyed by metric name plus a label set.
//!
//! The registry itself is a mutex-guarded map, but handles returned by
//! [`MetricsRegistry::counter`] / [`gauge`](MetricsRegistry::gauge) /
//! [`histogram`](MetricsRegistry::histogram) are `Arc`-backed atomics:
//! callers look a metric up once and then record through the handle
//! without touching the registry lock again — the "lock-cheap" property
//! the crawler round loop and the executor's per-node path rely on.
//!
//! Snapshots ([`RegistrySnapshot`]) are sorted by `(name, labels)` so
//! equal registry states always encode to equal bytes, which lets
//! checkpoint frames carry registry state under the same bit-identical
//! resume contract as the rest of the pipeline state.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use websift_resilience::{CodecError, Reader, Snapshot, Writer};

/// Number of buckets in a log-scaled histogram: bucket 0 collects
/// non-positive values, buckets 1..=63 cover powers of two from 2^-31 up
/// to 2^31 (values beyond either end clamp into the edge buckets).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A sorted label set. Sorting at construction makes label order
/// irrelevant to identity, snapshots, and rendered output.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    pub fn new(pairs: &[(&str, &str)]) -> Labels {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        Labels(v)
    }

    pub fn empty() -> Labels {
        Labels(Vec::new())
    }

    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value of one label key, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `k1=v1,k2=v2` rendering for tables and folded stacks.
    pub fn render(&self) -> String {
        self.0
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl Snapshot for Labels {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Labels, CodecError> {
        Ok(Labels(Snapshot::decode(r)?))
    }
}

/// Monotonically increasing integer metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`, returning the new total.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Adds one, returning the new total.
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Last-write-wins floating-point metric (frontier size, harvest rate,
/// simulated clock readings).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket index of a value: 0 for non-positive, otherwise the (clamped)
/// binary exponent shifted into 1..=63. Pure bit arithmetic — no float
/// logarithms — so identical on every platform.
fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0;
    }
    if v.is_infinite() {
        return HISTOGRAM_BUCKETS - 1;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i64;
    // subnormals (biased == 0) have true exponent <= -1023; they clamp
    // into the lowest positive bucket anyway
    let e = if biased == 0 { -1023 } else { biased - 1023 };
    (e.clamp(-31, 31) + 32) as usize
}

/// Lower edge of bucket `i` (for report rendering).
pub fn bucket_floor(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    (2.0f64).powi(i as i32 - 32)
}

/// The mergeable, snapshot-able state of a log-scaled histogram. Merge
/// is associative and count-preserving: bucket counts and totals add,
/// min/max combine — there is deliberately no floating-point sum, whose
/// addition order would break associativity.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramState {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub min: f64,
    pub max: f64,
}

impl Default for HistogramState {
    fn default() -> HistogramState {
        HistogramState {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistogramState {
    pub fn record(&mut self, v: f64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` (associative, count-preserving).
    pub fn merge(&mut self, other: &HistogramState) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bucket edge under which at least `q` (0..=1) of the
    /// observations fall — a coarse log-scale quantile for reports.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target.max(1) {
                return bucket_floor(i + 1).min(self.max);
            }
        }
        self.max
    }
}

impl Snapshot for HistogramState {
    fn encode(&self, w: &mut Writer) {
        self.buckets.encode(w);
        w.u64(self.count);
        w.f64(self.min);
        w.f64(self.max);
    }

    fn decode(r: &mut Reader<'_>) -> Result<HistogramState, CodecError> {
        Ok(HistogramState {
            buckets: Snapshot::decode(r)?,
            count: r.u64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

/// Concurrent histogram handle. Bucket counts and count are atomics;
/// min/max update through compare-and-swap loops (min/max are
/// commutative and associative, so thread interleaving cannot change
/// the final state).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }
}

impl Histogram {
    pub fn record(&self, v: f64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        update_extreme(&self.0.min_bits, v, |new, cur| new < cur);
        update_extreme(&self.0.max_bits, v, |new, cur| new > cur);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn state(&self) -> HistogramState {
        HistogramState {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            min: f64::from_bits(self.0.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.0.max_bits.load(Ordering::Relaxed)),
        }
    }

    fn load(&self, state: &HistogramState) {
        for (slot, &v) in self.0.buckets.iter().zip(&state.buckets) {
            slot.store(v, Ordering::Relaxed);
        }
        self.0.count.store(state.count, Ordering::Relaxed);
        self.0.min_bits.store(state.min.to_bits(), Ordering::Relaxed);
        self.0.max_bits.store(state.max.to_bits(), Ordering::Relaxed);
    }
}

fn update_extreme(slot: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = slot.load(Ordering::Relaxed);
    while better(v, f64::from_bits(cur)) {
        match slot.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// One metric's value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramState),
}

impl Snapshot for MetricValue {
    fn encode(&self, w: &mut Writer) {
        match self {
            MetricValue::Counter(v) => {
                w.u8(0);
                w.u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.u8(1);
                w.f64(*v);
            }
            MetricValue::Histogram(h) => {
                w.u8(2);
                h.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<MetricValue, CodecError> {
        match r.u8()? {
            0 => Ok(MetricValue::Counter(r.u64()?)),
            1 => Ok(MetricValue::Gauge(r.f64()?)),
            2 => Ok(MetricValue::Histogram(Snapshot::decode(r)?)),
            tag => Err(CodecError::BadTag { what: "MetricValue", tag }),
        }
    }
}

/// A byte-deterministic snapshot of every registered metric, sorted by
/// `(name, labels)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub entries: Vec<(String, Labels, MetricValue)>,
}

impl RegistrySnapshot {
    /// Looks one metric up by name and labels.
    pub fn get(&self, name: &str, labels: &Labels) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(n, l, _)| n == name && l == labels)
            .map(|(_, _, v)| v)
    }

    /// All entries whose metric name equals `name`.
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a (String, Labels, MetricValue)> {
        self.entries.iter().filter(move |(n, _, _)| n == name)
    }

    /// Merges `other` into `self`, keyed by `(name, labels)`: counters
    /// add, histograms merge bucket-wise ([`HistogramState::merge`]), and
    /// gauges take `other`'s value (last write wins — per-shard gauges
    /// report the same point-in-time fact, not a partition of it). Entries
    /// only in `other` are inserted. The result stays sorted by
    /// `(name, labels)`, so merging per-shard snapshots in shard order is
    /// deterministic and byte-stable.
    ///
    /// Kind mismatches (one side's counter is the other's gauge) keep
    /// `self`'s value: a merge must never invent a third kind.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, labels, value) in &other.entries {
            let at = self
                .entries
                .binary_search_by(|(n, l, _)| n.cmp(name).then_with(|| l.cmp(labels)));
            match at {
                Err(insert_at) => {
                    self.entries.insert(insert_at, (name.clone(), labels.clone(), value.clone()));
                }
                Ok(i) => match (&mut self.entries[i].2, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => {}
                },
            }
        }
    }
}

impl Snapshot for RegistrySnapshot {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.entries.len());
        for (name, labels, value) in &self.entries {
            w.str(name);
            labels.encode(w);
            value.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<RegistrySnapshot, CodecError> {
        let len = r.usize()?;
        let mut entries = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            let name = r.str()?;
            let labels = Labels::decode(r)?;
            let value = MetricValue::decode(r)?;
            entries.push((name, labels, value));
        }
        Ok(RegistrySnapshot { entries })
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry proper: name + labels → metric handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // lint:allow(hash_iteration): snapshot() sorts by (name, labels) before export
    inner: Mutex<HashMap<(String, Labels), Metric>>,
}

impl MetricsRegistry {
    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &Labels) -> Counter {
        let mut inner = self.inner.lock();
        let metric = inner
            .entry((name.to_string(), labels.clone()))
            .or_insert_with(|| Metric::Counter(Counter::default()));
        match metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Gauge {
        let mut inner = self.inner.lock();
        let metric = inner
            .entry((name.to_string(), labels.clone()))
            .or_insert_with(|| Metric::Gauge(Gauge::default()));
        match metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Gets or creates the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Histogram {
        let mut inner = self.inner.lock();
        let metric = inner
            .entry((name.to_string(), labels.clone()))
            .or_insert_with(|| Metric::Histogram(Histogram::default()));
        match metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshots every metric, sorted by `(name, labels)` so equal
    /// states produce equal bytes.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        let mut entries: Vec<(String, Labels, MetricValue)> = inner
            .iter()
            .map(|((name, labels), metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.state()),
                };
                (name.clone(), labels.clone(), value)
            })
            .collect();
        entries.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        RegistrySnapshot { entries }
    }

    /// Restores every metric in `snapshot`, creating missing ones —
    /// the resume half of checkpointed registry state.
    pub fn restore(&self, snapshot: &RegistrySnapshot) {
        for (name, labels, value) in &snapshot.entries {
            match value {
                MetricValue::Counter(v) => self.counter(name, labels).set(*v),
                MetricValue::Gauge(v) => self.gauge(name, labels).set(*v),
                MetricValue::Histogram(state) => self.histogram(name, labels).load(state),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_resilience::checkpoint::{decode_from_slice, encode_to_vec};

    #[test]
    fn counter_and_gauge_roundtrip_through_handles() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("pages", &Labels::new(&[("kind", "relevant")]));
        c.add(5);
        c.inc();
        assert_eq!(c.value(), 6);
        // second lookup sees the same storage
        assert_eq!(reg.counter("pages", &Labels::new(&[("kind", "relevant")])).value(), 6);

        let g = reg.gauge("frontier", &Labels::empty());
        g.set(12.5);
        assert_eq!(reg.gauge("frontier", &Labels::empty()).value(), 12.5);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let a = Labels::new(&[("b", "2"), ("a", "1")]);
        let b = Labels::new(&[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "a=1,b=2");
        assert_eq!(a.get("b"), Some("2"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::default();
        reg.counter("x", &Labels::empty());
        reg.gauge("x", &Labels::empty());
    }

    #[test]
    fn histogram_buckets_are_log_scaled() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(1.0), 32);
        assert_eq!(bucket_of(1.5), 32);
        assert_eq!(bucket_of(2.0), 33);
        assert_eq!(bucket_of(0.5), 31);
        assert_eq!(bucket_of(1e-300), 1); // clamps low
        assert_eq!(bucket_of(1e300), HISTOGRAM_BUCKETS - 1); // clamps high
        assert!(bucket_floor(32) == 1.0 && bucket_floor(33) == 2.0);
    }

    #[test]
    fn histogram_state_counts_and_extremes() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("latency", &Labels::empty());
        for v in [0.25, 1.0, 1.9, 700.0] {
            h.record(v);
        }
        let s = h.state();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 700.0);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
        assert_eq!(s.buckets[32], 2); // 1.0 and 1.9 share [1, 2)
        assert!(s.quantile_bound(0.5) <= 2.0);
    }

    #[test]
    fn snapshot_is_sorted_and_restores() {
        let reg = MetricsRegistry::default();
        reg.counter("z", &Labels::empty()).add(9);
        reg.counter("a", &Labels::new(&[("k", "2")])).add(1);
        reg.counter("a", &Labels::new(&[("k", "1")])).add(2);
        reg.gauge("g", &Labels::empty()).set(3.5);
        reg.histogram("h", &Labels::empty()).record(2.0);

        let snap = reg.snapshot();
        let names: Vec<String> = snap
            .entries
            .iter()
            .map(|(n, l, _)| format!("{n}{{{}}}", l.render()))
            .collect();
        assert_eq!(names, vec!["a{k=1}", "a{k=2}", "g{}", "h{}", "z{}"]);

        let restored = MetricsRegistry::default();
        restored.restore(&snap);
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn snapshot_codec_roundtrips() {
        let reg = MetricsRegistry::default();
        reg.counter("c", &Labels::new(&[("x", "y")])).add(7);
        reg.gauge("g", &Labels::empty()).set(-2.25);
        reg.histogram("h", &Labels::empty()).record(5.0);
        let snap = reg.snapshot();
        let bytes = encode_to_vec(&snap);
        let back: RegistrySnapshot = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HistogramState::default();
        let mut b = HistogramState::default();
        a.record(1.0);
        a.record(4.0);
        b.record(0.5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.min, 0.5);
        assert_eq!(merged.max, 4.0);
    }

    #[test]
    fn snapshot_merge_combines_per_shard_registries() {
        let shard0 = MetricsRegistry::default();
        shard0.counter("records", &Labels::empty()).add(10);
        shard0.gauge("watermark", &Labels::empty()).set(3.0);
        shard0.histogram("latency", &Labels::empty()).record(1.0);
        shard0.counter("only0", &Labels::empty()).add(1);

        let shard1 = MetricsRegistry::default();
        shard1.counter("records", &Labels::empty()).add(5);
        shard1.gauge("watermark", &Labels::empty()).set(4.0);
        shard1.histogram("latency", &Labels::empty()).record(9.0);
        shard1.counter("only1", &Labels::empty()).add(2);

        let mut merged = shard0.snapshot();
        merged.merge(&shard1.snapshot());

        assert_eq!(
            merged.get("records", &Labels::empty()),
            Some(&MetricValue::Counter(15)),
            "counters add"
        );
        assert_eq!(
            merged.get("watermark", &Labels::empty()),
            Some(&MetricValue::Gauge(4.0)),
            "gauges take the merged-in value"
        );
        match merged.get("latency", &Labels::empty()) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!((h.count, h.min, h.max), (2, 1.0, 9.0), "histograms merge")
            }
            other => panic!("latency is a histogram, got {other:?}"),
        }
        assert_eq!(merged.get("only0", &Labels::empty()), Some(&MetricValue::Counter(1)));
        assert_eq!(merged.get("only1", &Labels::empty()), Some(&MetricValue::Counter(2)));

        // merging keeps the (name, labels) sort, so the merged snapshot's
        // bytes are identical to a registry that saw both shards' updates
        let both = MetricsRegistry::default();
        both.restore(&merged);
        assert_eq!(both.snapshot(), merged);
    }
}
