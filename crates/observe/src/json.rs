//! A tiny hand-rolled JSON writer.
//!
//! The vendored `serde` is an offline stub (marker traits only), so the
//! JSONL trace export and the bench harness's `BENCH_RESULTS.json` write
//! JSON through these helpers instead. Output is deterministic: strings
//! escape the same way everywhere, and floats format via Rust's
//! shortest-roundtrip `Display`, which is a pure function of the bit
//! pattern.

use std::fmt::Write as _;

/// Appends a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Returns the JSON encoding of a string (convenience over
/// [`write_str`]).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// Builder for a single JSON object; fields appear in insertion order.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    fields: usize,
}

impl ObjectWriter {
    pub fn new() -> ObjectWriter {
        ObjectWriter { buf: String::from("{"), fields: 0 }
    }

    fn key(&mut self, key: &str) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        self.fields += 1;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Inserts pre-rendered JSON (an array or nested object) verbatim.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    pub fn finish(&mut self) -> String {
        let mut out = std::mem::take(&mut self.buf);
        out.push('}');
        out
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Renders an array of JSON string literals.
pub fn str_array<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    array(items.into_iter().map(escape))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn floats_format() {
        let mut s = String::new();
        write_f64(&mut s, 1.5);
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "1.5null");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let obj = ObjectWriter::new()
            .str("name", "fetch")
            .u64("count", 3)
            .f64("secs", 0.25)
            .raw("tags", &str_array(["a", "b"]))
            .finish();
        assert_eq!(
            obj,
            r#"{"name":"fetch","count":3,"secs":0.25,"tags":["a","b"]}"#
        );
        assert_eq!(array(vec!["1".to_string(), "2".to_string()]), "[1,2]");
    }
}
