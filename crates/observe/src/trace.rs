//! Structured tracing with logical-clock timestamps.
//!
//! Every [`TraceEvent`] is stamped with *simulated seconds* taken from
//! the pipeline's deterministic cost clocks (`CrawlReport::
//! simulated_secs`, `FlowMetrics::simulated_secs`), never a wall clock.
//! Two same-seed runs therefore record identical event sequences, and
//! [`Tracer::to_jsonl`] exports them byte-identically — the property the
//! determinism tests pin down.
//!
//! The collector is a fixed-capacity ring buffer: when full, the oldest
//! events are evicted and counted in [`Tracer::dropped`], so tracing a
//! long crawl can never grow memory without bound. Sequence numbers keep
//! increasing across evictions, which makes dropped prefixes visible in
//! the export.

use crate::json::{str_array, write_f64, write_str};
use crate::registry::Labels;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Default ring capacity — enough for every event the bundled
/// experiments emit, small enough to cap memory for long crawls.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One recorded span or instantaneous event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (keeps counting across ring evictions).
    pub seq: u64,
    /// Logical-clock timestamp in simulated seconds.
    pub t_secs: f64,
    /// Span duration in simulated seconds; `None` for point events.
    pub dur_secs: Option<f64>,
    pub name: String,
    pub labels: Labels,
}

impl TraceEvent {
    /// One JSONL line: `{"seq":…,"t":…,"dur":…,"name":…,"labels":[…]}`.
    /// `dur` is omitted for point events; labels render as `"k=v"`
    /// strings so the line stays flat and grep-able.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t\":");
        write_f64(&mut out, self.t_secs);
        if let Some(dur) = self.dur_secs {
            out.push_str(",\"dur\":");
            write_f64(&mut out, dur);
        }
        out.push_str(",\"name\":");
        write_str(&mut out, &self.name);
        if !self.labels.is_empty() {
            out.push_str(",\"labels\":");
            let rendered: Vec<String> = self
                .labels
                .pairs()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&str_array(rendered.iter().map(|s| s.as_str())));
        }
        out.push('}');
        out
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// Ring-buffered trace collector.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    fn push(&self, name: &str, t_secs: f64, dur_secs: Option<f64>, labels: Labels) -> u64 {
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            seq,
            t_secs,
            dur_secs,
            name: name.to_string(),
            labels,
        });
        seq
    }

    /// Records a point event at logical time `t_secs`; returns its seq.
    pub fn event(&self, name: &str, t_secs: f64, labels: Labels) -> u64 {
        self.push(name, t_secs, None, labels)
    }

    /// Records a completed span starting at `t_secs` lasting `dur_secs`
    /// simulated seconds; returns its seq.
    pub fn span(&self, name: &str, t_secs: f64, dur_secs: f64, labels: Labels) -> u64 {
        self.push(name, t_secs, Some(dur_secs), labels)
    }

    /// Events currently held (post-eviction).
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Copies out the retained events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// Exports the retained events as JSONL (one event per line,
    /// trailing newline). Byte-deterministic given the same recorded
    /// observations.
    pub fn to_jsonl(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::with_capacity(ring.events.len() * 64);
        for ev in &ring.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_spans_export_jsonl() {
        let t = Tracer::default();
        t.event("round_start", 0.0, Labels::new(&[("round", "0")]));
        t.span("fetch", 0.0, 1.25, Labels::empty());
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.to_jsonl(),
            "{\"seq\":0,\"t\":0,\"name\":\"round_start\",\"labels\":[\"round=0\"]}\n\
             {\"seq\":1,\"t\":0,\"dur\":1.25,\"name\":\"fetch\"}\n"
        );
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.event("e", i as f64, Labels::empty());
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn same_observations_export_identical_bytes() {
        let record = |t: &Tracer| {
            t.span("fetch", 0.5, 0.125, Labels::new(&[("host", "a.example")]));
            t.event("dedup_hit", 0.625, Labels::empty());
        };
        let (a, b) = (Tracer::default(), Tracer::default());
        record(&a);
        record(&b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }
}
