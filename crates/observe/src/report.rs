//! End-of-run report sink: renders the registry and profiler into a
//! human-readable summary table.
//!
//! The rendering is deterministic (sorted metric order, fixed float
//! formatting), so summaries can be diffed across runs the same way the
//! JSONL traces can.

use crate::registry::MetricValue;
use crate::Observer;
use std::fmt::Write as _;

/// Number of hottest profiler scopes shown in the summary.
const TOP_SCOPES: usize = 12;

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders a summary over `obs`: one row per metric, then the hottest
/// profiler scopes by total simulated time, then trace volume.
pub fn render_summary(obs: &Observer) -> String {
    let mut out = String::new();
    out.push_str("== metrics ==\n");
    let snap = obs.registry().snapshot();
    if snap.entries.is_empty() {
        out.push_str("(none)\n");
    }
    for (name, labels, value) in &snap.entries {
        let key = if labels.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{}}}", labels.render())
        };
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{key} = {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{key} = {}", fmt_f64(*v));
            }
            MetricValue::Histogram(h) => {
                if h.is_empty() {
                    let _ = writeln!(out, "{key} : count=0");
                } else {
                    let _ = writeln!(
                        out,
                        "{key} : count={} min={} p50<={} max={}",
                        h.count,
                        fmt_f64(h.min),
                        fmt_f64(h.quantile_bound(0.5)),
                        fmt_f64(h.max),
                    );
                }
            }
        }
    }

    let mut scopes = obs.profiler().scopes();
    if !scopes.is_empty() {
        out.push_str("== hottest scopes (by total simulated secs) ==\n");
        scopes.sort_by(|a, b| {
            b.total_secs
                .partial_cmp(&a.total_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        for s in scopes.iter().take(TOP_SCOPES) {
            let _ = writeln!(
                out,
                "{:<48} total={}s self={}s calls={}",
                s.folded_path(),
                fmt_f64(s.total_secs),
                fmt_f64(s.self_secs),
                s.calls,
            );
        }
    }

    let (len, dropped) = (obs.tracer().len(), obs.tracer().dropped());
    if len > 0 || dropped > 0 {
        let _ = writeln!(out, "== trace == {len} events retained, {dropped} dropped");
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Labels, Observer};

    #[test]
    fn summary_covers_all_three_substrates() {
        let obs = Observer::new();
        obs.registry().counter("pages_fetched", &Labels::empty()).add(10);
        obs.registry()
            .gauge("harvest_rate", &Labels::new(&[("round", "1")]))
            .set(0.75);
        obs.registry().histogram("latency", &Labels::empty()).record(1.5);
        obs.profiler().record(&["crawl", "fetch"], 2.0, 0);
        obs.tracer().event("round_start", 0.0, Labels::empty());

        let s = obs.summary();
        assert!(s.contains("pages_fetched = 10"));
        assert!(s.contains("harvest_rate{round=1} = 0.7500"));
        assert!(s.contains("latency : count=1"));
        assert!(s.contains("crawl;fetch"));
        assert!(s.contains("1 events retained"));
    }

    #[test]
    fn empty_observer_renders() {
        let obs = Observer::new();
        assert!(obs.summary().contains("(none)"));
    }
}
