//! Deterministic observability for the websift pipeline.
//!
//! The paper's entire Section 4 is an observability artifact: the
//! startup-dominated dictionary taggers, the superlinear CRF costs, the
//! OOM-infeasible flows, and the network-overload war story all came from
//! measuring per-operator cost and resource pressure. This crate is the
//! unified instrumentation substrate the rest of the workspace reports
//! through:
//!
//! - [`registry`] — a lock-cheap **metrics registry**: counters, gauges,
//!   and log-scaled histograms with mergeable state, keyed by metric name
//!   plus a label set. Handles are `Arc`-backed atomics, so the hot path
//!   after the first lookup is a single atomic op. Registry state
//!   snapshots through the `websift-resilience` codec, which lets
//!   checkpoint frames carry it and resumed runs continue their counters
//!   bit-identically.
//! - [`trace`] — **structured tracing**: spans and events stamped with
//!   *logical-clock* timestamps (simulated seconds, never wall clock), a
//!   ring-buffered collector, and JSONL export. Because every timestamp
//!   comes from the deterministic simulated clocks, two same-seed runs
//!   export byte-identical event streams.
//! - [`profile`] — a **cost profiler** attributing self/total simulated
//!   seconds and bytes to a tree of scopes, with folded-stack
//!   (flamegraph-format) export.
//! - [`report`] — the end-of-run **report sink** rendering a summary
//!   table over the registry and the hottest profiler scopes.
//! - [`json`] — the tiny JSON writer behind the JSONL trace export and
//!   the bench harness's `BENCH_RESULTS.json`.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads wall clocks, random state, or iteration
//! order of unordered containers on its output paths. All exports
//! (registry snapshots, JSONL traces, folded stacks, report tables) are
//! byte-deterministic functions of the recorded observations, and
//! histogram merge is associative and count-preserving, so partitioned
//! observation streams can be combined in any grouping.

pub mod json;
pub mod profile;
pub mod registry;
pub mod report;
pub mod trace;

pub use profile::{Profiler, ScopeStat};
pub use registry::{
    Counter, Gauge, Histogram, HistogramState, Labels, MetricValue, MetricsRegistry,
    RegistrySnapshot,
};
pub use trace::{TraceEvent, Tracer};

/// The bundle the pipeline threads through itself: one registry, one
/// tracer, one profiler. Cheap to share (`Arc<Observer>`), safe to use
/// from worker threads, and deterministic as long as observations are
/// recorded from deterministic points (the crawler's round loop and the
/// flow executor's drive loop both are).
#[derive(Debug, Default)]
pub struct Observer {
    registry: MetricsRegistry,
    tracer: Tracer,
    profiler: Profiler,
}

impl Observer {
    pub fn new() -> Observer {
        Observer::default()
    }

    /// An observer whose trace ring buffer holds `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Observer {
        Observer {
            registry: MetricsRegistry::default(),
            tracer: Tracer::with_capacity(capacity),
            profiler: Profiler::default(),
        }
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Renders the end-of-run summary table (see [`report`]).
    pub fn summary(&self) -> String {
        report::render_summary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_bundles_the_three_substrates() {
        let obs = Observer::new();
        obs.registry().counter("x", &Labels::empty()).add(3);
        obs.tracer().event("e", 1.0, Labels::empty());
        obs.profiler().record(&["a", "b"], 0.5, 10);
        assert_eq!(obs.registry().counter("x", &Labels::empty()).value(), 3);
        assert_eq!(obs.tracer().len(), 1);
        assert!(obs.summary().contains('x'));
    }
}
