//! Property tests for the observability substrate's algebraic
//! invariants: histogram merge must be associative and
//! count-preserving, and snapshots must be byte-deterministic
//! functions of the recorded observations.

use proptest::prelude::*;
use websift_observe::registry::HISTOGRAM_BUCKETS;
use websift_observe::{HistogramState, Labels, MetricsRegistry};
use websift_resilience::checkpoint::encode_to_vec;

fn state_of(values: &[f64]) -> HistogramState {
    let mut s = HistogramState::default();
    for &v in values {
        s.record(v);
    }
    s
}

fn merged(a: &HistogramState, b: &HistogramState) -> HistogramState {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): the property that lets partitioned
    /// observation streams combine in any grouping.
    #[test]
    fn histogram_merge_is_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..40),
        ys in prop::collection::vec(-1e6f64..1e6, 0..40),
        zs in prop::collection::vec(-1e6f64..1e6, 0..40),
    ) {
        let (a, b, c) = (state_of(&xs), state_of(&ys), state_of(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.buckets, right.buckets);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.min.to_bits(), right.min.to_bits());
        prop_assert_eq!(left.max.to_bits(), right.max.to_bits());
    }

    /// Merging never loses or invents observations, and the merged
    /// state equals recording the concatenated stream directly.
    #[test]
    fn histogram_merge_preserves_counts(
        xs in prop::collection::vec(-1e6f64..1e6, 0..60),
        ys in prop::collection::vec(-1e6f64..1e6, 0..60),
    ) {
        let m = merged(&state_of(&xs), &state_of(&ys));
        prop_assert_eq!(m.count, (xs.len() + ys.len()) as u64);
        prop_assert_eq!(m.buckets.iter().sum::<u64>(), m.count);

        let combined: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let direct = state_of(&combined);
        prop_assert_eq!(&m.buckets, &direct.buckets);
        prop_assert_eq!(m.min.to_bits(), direct.min.to_bits());
        prop_assert_eq!(m.max.to_bits(), direct.max.to_bits());
    }

    /// Every value lands in exactly one of the 64 buckets and within
    /// the recorded [min, max] envelope.
    #[test]
    fn histogram_state_is_well_formed(
        xs in prop::collection::vec(-1e9f64..1e9, 1..80),
    ) {
        let s = state_of(&xs);
        prop_assert_eq!(s.buckets.len(), HISTOGRAM_BUCKETS);
        prop_assert_eq!(s.count, xs.len() as u64);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
    }

    /// Two registries fed the same observations in different orders
    /// snapshot to identical bytes.
    #[test]
    fn registry_snapshot_is_order_independent(
        names in prop::collection::vec("[a-d]{1,3}", 1..12),
        counts in prop::collection::vec(1u64..100, 1..12),
    ) {
        let forward = MetricsRegistry::default();
        let reverse = MetricsRegistry::default();
        let obs: Vec<(&String, &u64)> = names.iter().zip(&counts).collect();
        for (name, n) in &obs {
            forward.counter(name, &Labels::empty()).add(**n);
        }
        for (name, n) in obs.iter().rev() {
            reverse.counter(name, &Labels::empty()).add(**n);
        }
        prop_assert_eq!(
            encode_to_vec(&forward.snapshot()),
            encode_to_vec(&reverse.snapshot())
        );
    }
}
