//! Generative document models for the four corpora.
//!
//! This is the data substitute demanded by the reproduction: we do not have
//! Medline, PMC, or a 1 TB crawl, so we generate corpora whose *measurable
//! linguistic and entity statistics* reproduce what the paper reports —
//! document-length and sentence-length orderings (Fig. 6a/6b), negation /
//! pronoun / parenthesis incidence orderings (Fig. 6c, §4.3.1), per-corpus
//! entity densities (Fig. 7, Table 4), and the overlap structure of entity
//! vocabularies across corpora (Fig. 8) via per-corpus windows over the
//! shared lexicons.
//!
//! Every document is generated independently and deterministically from
//! `(corpus seed, document id)`, so corpora are reproducible and can be
//! generated in parallel or streamed without materializing everything.

use crate::document::{CorpusKind, Document, DocumentGold};
use crate::html::{wrap_page, HtmlConfig};
use crate::lexicon::{
    Lexicon, LexiconScale, ENGLISH_ADJECTIVES, ENGLISH_CONTENT_WORDS, ENGLISH_VERBS,
    FUNCTION_WORDS, GENERAL_MEDICAL_TERMS, NEGATION_WORDS, PRONOUNS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};
use websift_ner::EntityType;
use websift_stats::sampling::{log_normal, Zipf};

/// One generated sentence: text, gold entity spans, and the negation /
/// pronoun / parenthesis flags the linguistic analysis counts.
type SentencePieces = (String, Vec<(usize, usize, EntityType)>, bool, bool, bool);

/// Statistical profile of one corpus.
#[derive(Debug, Clone)]
pub struct CorpusProfile {
    /// Median number of sentences per document (log-normal).
    pub doc_sentences_median: f64,
    /// Log-normal sigma of the sentence count.
    pub doc_sentences_sigma: f64,
    /// Median words per sentence (log-normal).
    pub sentence_words_median: f64,
    pub sentence_words_sigma: f64,
    /// Per-sentence probability of a negation word.
    pub p_negation: f64,
    /// Per-sentence probability of a pronoun subject.
    pub p_pronoun: f64,
    /// Per-sentence probability of a parenthetical.
    pub p_paren: f64,
    /// Expected entity mentions per sentence, indexed by
    /// `EntityType::all()` order: [gene, drug, disease].
    pub entity_rate: [f64; 3],
    /// Rank-fraction window of the lexicon each entity type draws from —
    /// the knob that produces the Fig.-8 overlap structure.
    pub lexicon_window: [(f64, f64); 3],
    /// Zipf exponent for entity rank selection within the window.
    pub zipf_exponent: f64,
    /// Fraction of content nouns drawn from medical (vs general web)
    /// vocabulary.
    pub medical_vocab_fraction: f64,
    /// HTML wrapping (web corpora only).
    pub html: Option<HtmlConfig>,
    /// Probability that a web document carries an unpunctuated list/table
    /// blob in its genuine content (source of pathological "sentences").
    pub p_blob: f64,
    /// Per-sentence probability of an arbitrary (non-entity) three-letter
    /// acronym — ubiquitous on the web, rare in curated abstracts. These
    /// are what the abstract-trained ML gene taggers mis-tag en masse
    /// (§4.3.2's false-positive storm).
    pub p_acronym: f64,
    /// Probability that an inserted entity mention is a *novel surface
    /// variant* not present in any dictionary (misspellings, ad-hoc
    /// hyphenation, informal drug names) — rampant on the web, rare in
    /// edited text. Shape-driven ML taggers still catch these; dictionary
    /// automata cannot, which is what blows the ML distinct-name counts of
    /// Table 4 past the dictionary counts.
    pub p_entity_variant: f64,
    /// Fraction of documents at "the fringe of what we consider
    /// biomedical" (§4.1's false-positive analysis: supplement shops,
    /// medical devices) — their vocabulary mix and entity density deviate
    /// from the corpus norm, which is what keeps the focus classifier's
    /// precision/recall below 1.
    pub p_fringe: f64,
    /// Medical-vocabulary fraction of fringe documents.
    pub fringe_medical_vocab: f64,
    /// Multiplier on entity rates for fringe documents.
    pub fringe_entity_scale: f64,
}

impl CorpusProfile {
    /// The calibrated default profile for each corpus. Entity rates come
    /// from the paper's per-1000-sentence means (§4.3.2); incidence and
    /// length parameters are set to reproduce the orderings of Fig. 6 and
    /// §4.3.1.
    pub fn for_kind(kind: CorpusKind) -> CorpusProfile {
        match kind {
            CorpusKind::RelevantWeb => CorpusProfile {
                doc_sentences_median: 60.0,
                doc_sentences_sigma: 1.0, // largest variance (paper §4.3.1)
                sentence_words_median: 17.0,
                sentence_words_sigma: 0.45,
                p_negation: 0.14,
                p_pronoun: 0.18,
                p_paren: 0.25,
                entity_rate: [0.160, 0.122, 0.160],
                lexicon_window: [(0.05, 0.95), (0.05, 0.95), (0.05, 0.95)],
                zipf_exponent: 1.05,
                medical_vocab_fraction: 0.55,
                html: Some(HtmlConfig::default()),
                p_blob: 0.12,
                p_acronym: 0.45,
                p_entity_variant: 0.45,
                p_fringe: 0.22,
                fringe_medical_vocab: 0.25,
                fringe_entity_scale: 0.3,
            },
            CorpusKind::IrrelevantWeb => CorpusProfile {
                doc_sentences_median: 28.0,
                doc_sentences_sigma: 0.8,
                sentence_words_median: 13.0,
                sentence_words_sigma: 0.5,
                p_negation: 0.17,
                p_pronoun: 0.15,
                p_paren: 0.08,
                entity_rate: [0.0055, 0.0086, 0.0057],
                lexicon_window: [(0.75, 1.0), (0.55, 1.0), (0.78, 1.0)],
                zipf_exponent: 1.0,
                medical_vocab_fraction: 0.05,
                html: Some(HtmlConfig::default()),
                p_blob: 0.18,
                p_acronym: 0.40,
                p_entity_variant: 0.40,
                p_fringe: 0.15,
                fringe_medical_vocab: 0.42,
                fringe_entity_scale: 8.0,
            },
            CorpusKind::Medline => CorpusProfile {
                doc_sentences_median: 7.0,
                doc_sentences_sigma: 0.3,
                sentence_words_median: 22.0,
                sentence_words_sigma: 0.25,
                p_negation: 0.10,
                p_pronoun: 0.30,
                p_paren: 0.20,
                entity_rate: [0.519, 0.367, 0.256],
                lexicon_window: [(0.0, 0.55), (0.0, 0.55), (0.0, 0.55)],
                zipf_exponent: 1.1,
                medical_vocab_fraction: 0.85,
                html: None,
                p_blob: 0.0,
                p_acronym: 0.005,
                p_entity_variant: 0.10,
                p_fringe: 0.15,
                fringe_medical_vocab: 0.30,
                fringe_entity_scale: 0.2,
            },
            CorpusKind::Pmc => CorpusProfile {
                doc_sentences_median: 180.0,
                doc_sentences_sigma: 0.5,
                sentence_words_median: 26.0,
                sentence_words_sigma: 0.35,
                p_negation: 0.20,
                p_pronoun: 0.45,
                p_paren: 0.50,
                entity_rate: [0.093, 0.345, 0.147],
                lexicon_window: [(0.05, 0.60), (0.05, 0.60), (0.05, 0.60)],
                zipf_exponent: 1.1,
                medical_vocab_fraction: 0.80,
                html: None,
                p_blob: 0.0,
                p_acronym: 0.01,
                p_entity_variant: 0.12,
                p_fringe: 0.10,
                fringe_medical_vocab: 0.40,
                fringe_entity_scale: 0.5,
            },
        }
    }
}

/// A sentence with gold entity character spans, used to train the CRF
/// taggers (the analogue of the tagged Medline gold corpora BANNER et al.
/// were trained on).
#[derive(Debug, Clone)]
pub struct LabeledSentence {
    pub text: String,
    /// (byte start, byte end, type) of each gold entity mention.
    pub spans: Vec<(usize, usize, EntityType)>,
}

fn default_lexicon() -> Arc<Lexicon> {
    static LEX: OnceLock<Arc<Lexicon>> = OnceLock::new();
    LEX.get_or_init(|| Arc::new(Lexicon::generate(LexiconScale::default_scale())))
        .clone()
}

/// The corpus generator.
#[derive(Debug, Clone)]
pub struct Generator {
    kind: CorpusKind,
    profile: CorpusProfile,
    lexicon: Arc<Lexicon>,
    seed: u64,
    zipfs: [Zipf; 3],
    windows: [(usize, usize); 3],
}

impl Generator {
    /// Generator for `kind` with the default profile and the shared
    /// default-scale lexicon.
    pub fn new(kind: CorpusKind, seed: u64) -> Generator {
        Generator::with_lexicon(kind, seed, default_lexicon())
    }

    /// Generator over a specific lexicon.
    pub fn with_lexicon(kind: CorpusKind, seed: u64, lexicon: Arc<Lexicon>) -> Generator {
        let profile = CorpusProfile::for_kind(kind);
        Generator::assemble(kind, seed, lexicon, profile)
    }

    /// Replaces the profile (e.g. for ablations).
    pub fn with_profile(self, profile: CorpusProfile) -> Generator {
        Generator::assemble(self.kind, self.seed, self.lexicon, profile)
    }

    fn assemble(
        kind: CorpusKind,
        seed: u64,
        lexicon: Arc<Lexicon>,
        profile: CorpusProfile,
    ) -> Generator {
        let sizes = [
            lexicon.genes().len(),
            lexicon.drugs().len(),
            lexicon.diseases().len(),
        ];
        let mut windows = [(0usize, 0usize); 3];
        let mut zipfs: Vec<Zipf> = Vec::with_capacity(3);
        for t in 0..3 {
            let (lo, hi) = profile.lexicon_window[t];
            let start = (lo * sizes[t] as f64) as usize;
            let end = ((hi * sizes[t] as f64) as usize).max(start + 1).min(sizes[t]);
            windows[t] = (start, end);
            zipfs.push(Zipf::new(end - start, profile.zipf_exponent));
        }
        let zipfs: [Zipf; 3] = zipfs.try_into().expect("three zipfs");
        Generator {
            kind,
            profile,
            lexicon,
            seed,
            zipfs,
            windows,
        }
    }

    pub fn kind(&self) -> CorpusKind {
        self.kind
    }

    pub fn profile(&self) -> &CorpusProfile {
        &self.profile
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    fn doc_rng(&self, id: u64) -> StdRng {
        // SplitMix-style mix of (seed, id) for independent streams.
        let mut z = self
            .seed
            .wrapping_add(0x9e3779b97f4a7c15)
            .wrapping_add(id.wrapping_mul(0xbf58476d1ce4e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Samples an entity surface form of the given type, possibly mutated
    /// into a novel variant (see `CorpusProfile::p_entity_variant`).
    fn entity_surface<R: Rng + ?Sized>(&self, t: usize, rng: &mut R) -> String {
        let rank = self.windows[t].0 + self.zipfs[t].sample(rng);
        let mut name = match t {
            0 => self.lexicon.genes()[rank].clone(),
            1 => self.lexicon.drugs()[rank].clone(),
            _ => self.lexicon.diseases()[rank].clone(),
        };
        if rng.random::<f64>() < self.profile.p_entity_variant {
            match rng.random_range(0..3u8) {
                0 => name.push_str(&format!("{}", rng.random_range(2..90))),
                1 => name = format!("{name}-{}", (b'a' + rng.random_range(0..26u8)) as char),
                _ => {
                    // qualified sub-form ("x cardiitis", "brca1 beta")
                    if t == 2 {
                        name = format!("{name} type {}", rng.random_range(2..30));
                    } else if name.len() > 4 {
                        name.truncate(name.len() - 1);
                    } else {
                        name.push('x');
                    }
                }
            }
        }
        name
    }

    fn noun<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        self.noun_with(rng, self.profile.medical_vocab_fraction)
    }

    fn noun_with<R: Rng + ?Sized>(&self, rng: &mut R, medical_fraction: f64) -> &'static str {
        if rng.random::<f64>() < medical_fraction {
            GENERAL_MEDICAL_TERMS[rng.random_range(0..GENERAL_MEDICAL_TERMS.len())]
        } else {
            ENGLISH_CONTENT_WORDS[rng.random_range(0..ENGLISH_CONTENT_WORDS.len())]
        }
    }

    /// Generates one sentence, returning its text, gold spans, and flags
    /// (negated, pronoun, paren).
    fn sentence<R: Rng + ?Sized>(&self, rng: &mut R) -> SentencePieces {
        let p = &self.profile;
        self.sentence_styled(rng, p.medical_vocab_fraction, 1.0)
    }

    /// Sentence generation with a per-document style override (vocabulary
    /// mix, entity-rate multiplier) — fringe documents use this.
    fn sentence_styled<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        medical_fraction: f64,
        entity_scale: f64,
    ) -> SentencePieces {
        let p = &self.profile;
        let target_words = log_normal(rng, p.sentence_words_median.ln(), p.sentence_words_sigma)
            .round()
            .clamp(3.0, 400.0) as usize;

        // Pieces: Word(&str or String) | Entity
        enum Piece {
            W(String),
            E(String, EntityType),
        }
        let mut pieces: Vec<Piece> = Vec::with_capacity(target_words + 4);

        let pronoun = rng.random::<f64>() < p.p_pronoun;
        let negated = rng.random::<f64>() < p.p_negation;
        let paren = rng.random::<f64>() < p.p_paren;

        // Subject.
        if pronoun {
            pieces.push(Piece::W(PRONOUNS[rng.random_range(0..PRONOUNS.len())].to_string()));
        } else {
            pieces.push(Piece::W("the".to_string()));
            if rng.random::<f64>() < 0.5 {
                pieces.push(Piece::W(
                    ENGLISH_ADJECTIVES[rng.random_range(0..ENGLISH_ADJECTIVES.len())].to_string(),
                ));
            }
            pieces.push(Piece::W(self.noun_with(rng, medical_fraction).to_string()));
        }
        // Verb (optionally negated).
        if negated {
            let neg = NEGATION_WORDS[rng.random_range(0..NEGATION_WORDS.len())];
            match neg {
                "not" => {
                    pieces.push(Piece::W("does".to_string()));
                    pieces.push(Piece::W("not".to_string()));
                    pieces.push(Piece::W("change".to_string()));
                }
                _ => {
                    // "neither X nor Y" construction
                    pieces.push(Piece::W("affects".to_string()));
                    pieces.push(Piece::W("neither".to_string()));
                    pieces.push(Piece::W(self.noun_with(rng, medical_fraction).to_string()));
                    pieces.push(Piece::W("nor".to_string()));
                }
            }
        } else {
            pieces.push(Piece::W(
                ENGLISH_VERBS[rng.random_range(0..ENGLISH_VERBS.len())].to_string(),
            ));
        }
        pieces.push(Piece::W("the".to_string()));
        pieces.push(Piece::W(self.noun_with(rng, medical_fraction).to_string()));

        // Entity mentions.
        for (t, &base_rate) in p.entity_rate.iter().enumerate() {
            let rate = base_rate * entity_scale;
            let mut k = rate.floor() as usize;
            if rng.random::<f64>() < rate.fract() {
                k += 1;
            }
            for _ in 0..k {
                let surface = self.entity_surface(t, rng);
                let etype = EntityType::all()[t];
                let connector = match t {
                    0 => "of",
                    1 => "with",
                    _ => "in",
                };
                pieces.push(Piece::W(connector.to_string()));
                pieces.push(Piece::E(surface, etype));
            }
        }

        // Arbitrary web acronym (not a gold entity).
        if rng.random::<f64>() < p.p_acronym {
            let tla: String = (0..3)
                .map(|_| (b'A' + rng.random_range(0..26u8)) as char)
                .collect();
            pieces.push(Piece::W(tla));
        }

        // Filler to reach the target length.
        while pieces.len() < target_words {
            if rng.random::<f64>() < 0.4 {
                pieces.push(Piece::W(
                    FUNCTION_WORDS[rng.random_range(0..FUNCTION_WORDS.len())].to_string(),
                ));
            } else {
                pieces.push(Piece::W(self.noun_with(rng, medical_fraction).to_string()));
            }
        }

        // Parenthetical.
        if paren {
            let inner = self.noun_with(rng, medical_fraction);
            let at = rng.random_range(3..=pieces.len());
            pieces.insert(at, Piece::W(format!("({inner})")));
        }

        // Join, recording spans.
        let mut text = String::new();
        let mut spans = Vec::new();
        for (i, piece) in pieces.iter().enumerate() {
            if i > 0 {
                text.push(' ');
            }
            match piece {
                Piece::W(w) => {
                    if i == 0 {
                        // capitalize first word
                        let mut cs = w.chars();
                        if let Some(f) = cs.next() {
                            text.extend(f.to_uppercase());
                            text.push_str(cs.as_str());
                        }
                    } else {
                        text.push_str(w);
                    }
                }
                Piece::E(surface, etype) => {
                    let start = text.len();
                    text.push_str(surface);
                    spans.push((start, text.len(), *etype));
                }
            }
        }
        text.push('.');
        (text, spans, negated, pronoun, paren)
    }

    /// Generates an unpunctuated list blob (table/list content).
    fn blob<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let items = rng.random_range(30..120);
        let mut out = String::new();
        for i in 0..items {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.noun(rng));
            if rng.random::<f64>() < 0.2 {
                out.push(' ');
                out.push_str(&format!("{}", rng.random_range(1..1000)));
            }
        }
        out
    }

    /// Generates document `id`.
    pub fn document(&self, id: u64) -> Document {
        let mut rng = self.doc_rng(id);
        let p = &self.profile;
        let n_sentences = log_normal(&mut rng, p.doc_sentences_median.ln(), p.doc_sentences_sigma)
            .round()
            .clamp(1.0, 3000.0) as usize;

        let fringe = rng.random::<f64>() < p.p_fringe;
        let (vocab, entity_scale) = if fringe {
            (p.fringe_medical_vocab, p.fringe_entity_scale)
        } else {
            (p.medical_vocab_fraction, 1.0)
        };

        let mut gold = DocumentGold::default();
        let mut paragraphs: Vec<String> = Vec::new();
        let mut para = String::new();
        for i in 0..n_sentences {
            let (text, spans, neg, pron, paren) = self.sentence_styled(&mut rng, vocab, entity_scale);
            gold.sentences += 1;
            gold.negated_sentences += neg as usize;
            gold.pronoun_sentences += pron as usize;
            gold.paren_sentences += paren as usize;
            for (s, e, t) in spans {
                gold.entities.push((t, text[s..e].to_lowercase()));
            }
            if !para.is_empty() {
                para.push(' ');
            }
            para.push_str(&text);
            // paragraph break every ~6 sentences
            if (i + 1) % 6 == 0 || i + 1 == n_sentences {
                paragraphs.push(std::mem::take(&mut para));
            }
        }
        if !para.is_empty() {
            paragraphs.push(para);
        }
        // Optional unpunctuated blob in web content.
        if rng.random::<f64>() < p.p_blob {
            paragraphs.push(self.blob(&mut rng));
        }

        let title = format!(
            "{} of {} in {}",
            ["Effects", "Analysis", "Role", "Review", "Overview"][rng.random_range(0..5)],
            self.noun(&mut rng),
            self.noun(&mut rng)
        );

        let body = paragraphs.join("\n\n");
        let (html, url) = match &p.html {
            Some(cfg) => {
                let page = wrap_page(&title, &paragraphs, &[], cfg, &mut rng);
                (
                    Some(page.html),
                    Some(format!("http://site{}.example/page/{id}", id % 977)),
                )
            }
            None => (None, None),
        };

        Document {
            id,
            kind: self.kind,
            url,
            title,
            body,
            html,
            gold,
        }
    }

    /// Generates documents `0..n`.
    pub fn documents(&self, n: usize) -> Vec<Document> {
        (0..n as u64).map(|id| self.document(id)).collect()
    }

    /// Generates `n` gold-labeled sentences for CRF training.
    pub fn labeled_sentences(&self, n: usize) -> Vec<LabeledSentence> {
        let mut rng = self.doc_rng(u64::MAX / 2);
        (0..n)
            .map(|_| {
                let (text, spans, _, _, _) = self.sentence(&mut rng);
                LabeledSentence { text, spans }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::LexiconScale;

    fn tiny_gen(kind: CorpusKind) -> Generator {
        Generator::with_lexicon(kind, 7, Arc::new(Lexicon::generate(LexiconScale::tiny())))
    }

    #[test]
    fn documents_are_deterministic() {
        let g = tiny_gen(CorpusKind::Medline);
        let a = g.document(3);
        let b = g.document(3);
        assert_eq!(a.body, b.body);
        assert_eq!(a.gold.entities, b.gold.entities);
    }

    #[test]
    fn different_ids_differ() {
        let g = tiny_gen(CorpusKind::Medline);
        assert_ne!(g.document(1).body, g.document(2).body);
    }

    #[test]
    fn web_documents_have_html_and_url() {
        let g = tiny_gen(CorpusKind::RelevantWeb);
        let d = g.document(0);
        assert!(d.html.is_some());
        assert!(d.url.is_some());
        assert!(d.raw_len() > d.body.len());
    }

    #[test]
    fn medline_documents_are_plain() {
        let g = tiny_gen(CorpusKind::Medline);
        let d = g.document(0);
        assert!(d.html.is_none());
        assert!(!d.body.contains('<'));
    }

    #[test]
    fn doc_length_ordering_matches_fig6a() {
        // PMC > Relevant > Irrelevant > Medline in mean net-text length.
        let mut means = Vec::new();
        for kind in [
            CorpusKind::Pmc,
            CorpusKind::RelevantWeb,
            CorpusKind::IrrelevantWeb,
            CorpusKind::Medline,
        ] {
            let g = tiny_gen(kind);
            let docs = g.documents(30);
            let mean =
                docs.iter().map(|d| d.body.len() as f64).sum::<f64>() / docs.len() as f64;
            means.push(mean);
        }
        assert!(means[0] > means[1], "PMC {} vs rel {}", means[0], means[1]);
        assert!(means[1] > means[2], "rel {} vs irrel {}", means[1], means[2]);
        assert!(means[2] > means[3], "irrel {} vs medl {}", means[2], means[3]);
    }

    #[test]
    fn entity_rates_ordering_matches_fig7() {
        // Per-sentence gold entity rates: Medline > Relevant >> Irrelevant
        // for diseases (Fig. 7a direction).
        let mut rates = Vec::new();
        for kind in [CorpusKind::Medline, CorpusKind::RelevantWeb, CorpusKind::IrrelevantWeb] {
            let g = tiny_gen(kind);
            let docs = g.documents(20);
            let sentences: usize = docs.iter().map(|d| d.gold.sentences).sum();
            let diseases: usize = docs
                .iter()
                .flat_map(|d| &d.gold.entities)
                .filter(|(t, _)| *t == EntityType::Disease)
                .count();
            rates.push(diseases as f64 / sentences as f64);
        }
        assert!(rates[0] > rates[1], "medline {} vs rel {}", rates[0], rates[1]);
        assert!(rates[1] > rates[2] * 5.0, "rel {} vs irrel {}", rates[1], rates[2]);
    }

    #[test]
    fn labeled_sentences_have_valid_spans() {
        let g = tiny_gen(CorpusKind::Medline);
        let sents = g.labeled_sentences(50);
        assert_eq!(sents.len(), 50);
        let mut any_span = false;
        for s in &sents {
            for &(start, end, _) in &s.spans {
                any_span = true;
                assert!(start < end && end <= s.text.len());
                // span lies on char boundaries and is non-whitespace
                let frag = &s.text[start..end];
                assert!(!frag.trim().is_empty());
            }
        }
        assert!(any_span, "medline sentences should contain entities");
    }

    #[test]
    fn gold_counts_are_consistent() {
        let g = tiny_gen(CorpusKind::Pmc);
        let d = g.document(5);
        assert!(d.gold.sentences > 0);
        assert!(d.gold.negated_sentences <= d.gold.sentences);
        assert!(d.gold.pronoun_sentences <= d.gold.sentences);
    }

    #[test]
    fn irrelevant_docs_rarely_mention_entities() {
        let g = tiny_gen(CorpusKind::IrrelevantWeb);
        let docs = g.documents(20);
        let sentences: usize = docs.iter().map(|d| d.gold.sentences).sum();
        let entities: usize = docs.iter().map(|d| d.gold.entities.len()).sum();
        assert!(
            (entities as f64) < 0.1 * sentences as f64,
            "{entities} entities in {sentences} sentences"
        );
    }

    #[test]
    fn blob_documents_occur_in_web_corpora() {
        let g = tiny_gen(CorpusKind::RelevantWeb);
        let docs = g.documents(60);
        let with_blob = docs
            .iter()
            .filter(|d| {
                d.body
                    .split("\n\n")
                    .last()
                    .map(|p| p.len() > 200 && !p.contains('.'))
                    .unwrap_or(false)
            })
            .count();
        assert!(with_blob > 0, "expected some unpunctuated blobs");
    }
}
