//! Corpus substrate: lexicons and generative document models.
//!
//! The study compares four corpora (Table 3): the relevant and irrelevant
//! halves of a focused 1 TB crawl, 21.7 M Medline abstracts, and 250 K PMC
//! full texts. None of those datasets ship with this reproduction; instead
//! this crate generates statistically faithful substitutes:
//!
//! - [`lexicon`] — deterministic gene/drug/disease term banks standing in
//!   for Gene Ontology, DrugBank, and UMLS/MeSH, plus the Table-1 search
//!   keyword categories;
//! - [`document`] — the corpus/document model shared across the workspace;
//! - [`generator`] — per-corpus generative models calibrated to the
//!   paper's reported linguistic and entity statistics;
//! - [`html`] — web-page synthesis with boilerplate and markup defects at
//!   the defect rates the paper cites (95 % non-conformant, 13 % severe).

pub mod document;
pub mod generator;
pub mod html;
pub mod lexicon;

pub use document::{CorpusKind, Document, DocumentGold};
pub use generator::{CorpusProfile, Generator, LabeledSentence};
pub use html::{wrap_page, HtmlConfig, HtmlDoc, MarkupQuality};
pub use lexicon::{Lexicon, LexiconScale, SearchCategory};
