//! Document model shared across the workspace.

use serde::Serialize;
use websift_ner::EntityType;

/// The four corpora of the study (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CorpusKind {
    /// Crawled pages classified as biomedical ("relevant crawl").
    RelevantWeb,
    /// Crawled pages classified as out-of-domain ("irrelevant crawl").
    IrrelevantWeb,
    /// Medline abstracts.
    Medline,
    /// PMC open-access full texts.
    Pmc,
}

impl CorpusKind {
    pub fn all() -> [CorpusKind; 4] {
        [
            CorpusKind::RelevantWeb,
            CorpusKind::IrrelevantWeb,
            CorpusKind::Medline,
            CorpusKind::Pmc,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::RelevantWeb => "Relevant crawl",
            CorpusKind::IrrelevantWeb => "Irrelevant crawl",
            CorpusKind::Medline => "Medline",
            CorpusKind::Pmc => "PMC",
        }
    }

    /// Is this corpus made of web pages (and thus wrapped in HTML and run
    /// through the web-specific pipeline stages)?
    pub fn is_web(self) -> bool {
        matches!(self, CorpusKind::RelevantWeb | CorpusKind::IrrelevantWeb)
    }

    /// Paper-reported corpus statistics (Table 3): (size GB, documents,
    /// mean chars per document).
    pub fn paper_stats(self) -> (f64, u64, u64) {
        match self {
            CorpusKind::RelevantWeb => (373.0, 4_233_523, 88_384),
            CorpusKind::IrrelevantWeb => (607.0, 17_704_365, 37_625),
            CorpusKind::Medline => (21.0, 21_686_397, 865),
            CorpusKind::Pmc => (19.0, 250_440, 55_704),
        }
    }
}

/// Ground truth embedded by the generator, used by the evaluation harness
/// (never visible to the extraction pipeline itself).
#[derive(Debug, Clone, Default, Serialize)]
pub struct DocumentGold {
    /// Entity surface forms inserted into the text (normalized form).
    pub entities: Vec<(EntityType, String)>,
    /// Number of generated sentences.
    pub sentences: usize,
    /// Sentences generated with a negation word.
    pub negated_sentences: usize,
    /// Sentences generated with a pronoun subject.
    pub pronoun_sentences: usize,
    /// Sentences generated with a parenthetical.
    pub paren_sentences: usize,
}

/// One document of a corpus.
#[derive(Debug, Clone, Serialize)]
pub struct Document {
    pub id: u64,
    pub kind: CorpusKind,
    /// URL for web documents.
    pub url: Option<String>,
    pub title: String,
    /// Net (boilerplate-free) text. For web documents this is the gold net
    /// text the boilerplate detector is evaluated against.
    pub body: String,
    /// Raw HTML for web documents (with boilerplate and markup defects).
    pub html: Option<String>,
    /// Generator ground truth for evaluation.
    pub gold: DocumentGold,
}

impl Document {
    /// The raw size in bytes as stored (HTML if present, else body) — the
    /// quantity Table 3 sums into GB.
    pub fn raw_len(&self) -> usize {
        self.html.as_deref().map_or(self.body.len(), str::len)
    }

    /// The text the analysis pipeline starts from (HTML for web docs).
    pub fn raw_text(&self) -> &str {
        self.html.as_deref().unwrap_or(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert!(CorpusKind::RelevantWeb.is_web());
        assert!(!CorpusKind::Medline.is_web());
        assert_eq!(CorpusKind::all().len(), 4);
        assert_eq!(CorpusKind::Pmc.paper_stats().1, 250_440);
    }

    #[test]
    fn raw_len_prefers_html() {
        let doc = Document {
            id: 1,
            kind: CorpusKind::RelevantWeb,
            url: Some("http://x.example/p".into()),
            title: "t".into(),
            body: "short".into(),
            html: Some("<html>much longer content</html>".into()),
            gold: DocumentGold::default(),
        };
        assert_eq!(doc.raw_len(), doc.html.as_ref().unwrap().len());
        assert!(doc.raw_text().starts_with("<html>"));
    }
}
