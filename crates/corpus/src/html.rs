//! HTML synthesis with boilerplate and realistic markup defects.
//!
//! The paper stresses that real web pages are hostile input: "95% of HTML
//! documents on the web do not adhere to W3C HTML standards. 13% of the
//! analyzed websites had so severe issues that they could not be
//! transcoded" (citing Ofuonye et al.), and the boilerplate detectors are
//! "highly sensitive to markup errors, often resulting in crashes or empty
//! results". The generator below wraps net text in page chrome (navigation,
//! ads, sidebars, footers, scripts) and injects defects at those measured
//! rates so the crawler-side components face the same hostility.

use rand::Rng;
use serde::Serialize;

/// Defect severity injected into a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MarkupQuality {
    /// Standards-conformant (the rare ~5%).
    Clean,
    /// Minor defects: unclosed tags, stray brackets, unquoted attributes.
    Defective,
    /// Severe breakage: truncated/interleaved tags — the ~13% that "could
    /// not be transcoded".
    Severe,
}

/// Configuration for the HTML wrapper.
#[derive(Debug, Clone, Copy)]
pub struct HtmlConfig {
    /// Probability of any defect (paper: 0.95).
    pub p_defective: f64,
    /// Probability of severe breakage (paper: 0.13), subset of defective.
    pub p_severe: f64,
    /// Number of boilerplate navigation/ad blocks per page.
    pub boilerplate_blocks: usize,
}

impl Default for HtmlConfig {
    fn default() -> HtmlConfig {
        HtmlConfig {
            p_defective: 0.95,
            p_severe: 0.13,
            boilerplate_blocks: 6,
        }
    }
}

/// A synthesized page: markup plus the gold net text it embeds.
#[derive(Debug, Clone)]
pub struct HtmlDoc {
    pub html: String,
    /// The content text (gold standard for boilerplate detection).
    pub net_text: String,
    /// Boilerplate text (navigation labels, ads, footer chatter).
    pub boilerplate_text: String,
    pub quality: MarkupQuality,
}

const NAV_WORDS: &[&str] = &[
    "Home", "About", "Contact", "Products", "Services", "Blog", "News", "Login", "Register",
    "Search", "Sitemap", "Privacy", "Terms", "Help", "FAQ", "Careers", "Press", "Support",
];
const AD_PHRASES: &[&str] = &[
    "Buy now and save 50% on selected items",
    "Subscribe to our newsletter for weekly updates",
    "Click here for a free trial today",
    "Limited time offer ends soon",
    "Sponsored content from our partners",
    "Sign up now and get exclusive deals",
];
const FOOTER_PHRASES: &[&str] = &[
    "Copyright 2013 All rights reserved",
    "Powered by a content management system",
    "Follow us on social media",
    "This site uses cookies to improve your experience",
];

/// Text-dense promotional blocks: boilerplate that *looks* like content to
/// a shallow-feature detector (few links, enough words) — the source of
/// its precision loss.
const TEASER_BLOCKS: &[&str] = &[
    "Our editorial team reviews hundreds of submissions every month and picks      the most useful guides and stories for our readers so you never miss the      updates that matter most to you and your family throughout the year.",
    "Join the thousands of members who already receive our weekly digest with      hand picked articles practical tips and community highlights delivered      straight to their inbox every Friday morning without any extra cost.",
    "This portal has been serving its community for more than a decade with      carefully curated resources expert interviews and practical advice that      helps visitors make better decisions every single day of the week.",
];

/// Wraps `paragraphs` (the net text) plus `links` into a full page.
pub fn wrap_page<R: Rng + ?Sized>(
    title: &str,
    paragraphs: &[String],
    links: &[String],
    config: &HtmlConfig,
    rng: &mut R,
) -> HtmlDoc {
    let quality = {
        let r: f64 = rng.random();
        if r < config.p_severe {
            MarkupQuality::Severe
        } else if r < config.p_defective {
            MarkupQuality::Defective
        } else {
            MarkupQuality::Clean
        }
    };

    let mut html = String::with_capacity(paragraphs.iter().map(String::len).sum::<usize>() * 2);
    let mut boilerplate = String::new();

    html.push_str("<!DOCTYPE html>\n<html>\n<head>\n");
    html.push_str(&format!("<title>{title}</title>\n"));
    html.push_str("<script>var tracker = function(){ return 42; };</script>\n");
    html.push_str("<style>.nav { color: #333; } body { margin: 0; }</style>\n");
    html.push_str("</head>\n<body>\n");

    // Navigation block (link-dense, short text — the signature boilerplate
    // shape shallow-text-feature detectors key on).
    html.push_str("<div class=\"nav\"><ul>\n");
    for i in 0..config.boilerplate_blocks.max(3) {
        let w = NAV_WORDS[(i + rng.random_range(0..NAV_WORDS.len())) % NAV_WORDS.len()];
        html.push_str(&format!("<li><a href=\"/nav/{i}\">{w}</a></li>\n"));
        boilerplate.push_str(w);
        boilerplate.push(' ');
    }
    html.push_str("</ul></div>\n");

    // Ad block.
    for _ in 0..config.boilerplate_blocks / 3 {
        let ad = AD_PHRASES[rng.random_range(0..AD_PHRASES.len())];
        html.push_str(&format!(
            "<div class=\"ad\"><a href=\"http://ads.example/click\">{ad}</a></div>\n"
        ));
        boilerplate.push_str(ad);
        boilerplate.push(' ');
    }

    // A text-dense teaser block before the content: boilerplate that fools
    // shallow-feature detectors (precision loss).
    let teaser = TEASER_BLOCKS[rng.random_range(0..TEASER_BLOCKS.len())];
    html.push_str(&format!("<div class=\"teaser\">{teaser}</div>\n"));
    boilerplate.push_str(teaser);
    boilerplate.push(' ');

    // Main content. A fraction of paragraphs renders as lists/tables of
    // short items — real content that shallow detectors systematically
    // miss ("tables and lists, which often contain valuable facts, are not
    // recognized properly").
    html.push_str("<div id=\"content\">\n");
    html.push_str(&format!("<h1>{title}</h1>\n"));
    let mut net_text = String::new();
    for (i, p) in paragraphs.iter().enumerate() {
        if rng.random::<f64>() < 0.22 {
            html.push_str("<ul>\n");
            // real lists hold short fact fragments, not full sentences
            let words: Vec<&str> = p.split_whitespace().collect();
            for item in words.chunks(4) {
                html.push_str(&format!("<li>{}</li>\n", item.join(" ")));
            }
            html.push_str("</ul>\n");
        } else {
            html.push_str("<p>");
            html.push_str(p);
            html.push_str("</p>\n");
        }
        net_text.push_str(p);
        net_text.push('\n');
        // Embed outgoing content links between paragraphs.
        if let Some(link) = links.get(i) {
            html.push_str(&format!(
                "<p><a href=\"{link}\">related article</a></p>\n"
            ));
        }
    }
    html.push_str("</div>\n");

    // Inline analytics/config blobs proportional to the content: the bloat
    // that makes raw page bytes a small multiple of the net text (Table 3's
    // raw sizes vs Fig. 6a's net lengths).
    let bloat_len = net_text.len() * 3;
    html.push_str("<script>var cfg = \"");
    let mut filled = 0usize;
    while filled < bloat_len {
        html.push_str("a9f3c2e1-");
        filled += 9;
    }
    html.push_str("\";</script>\n");

    // Remaining links into a "related" sidebar.
    if links.len() > paragraphs.len() {
        html.push_str("<div class=\"sidebar\"><ul>\n");
        for link in &links[paragraphs.len()..] {
            html.push_str(&format!("<li><a href=\"{link}\">more</a></li>\n"));
        }
        html.push_str("</ul></div>\n");
    }

    // Footer.
    let footer = FOOTER_PHRASES[rng.random_range(0..FOOTER_PHRASES.len())];
    html.push_str(&format!("<div class=\"footer\">{footer}</div>\n"));
    boilerplate.push_str(footer);
    html.push_str("</body>\n</html>\n");

    let html = match quality {
        MarkupQuality::Clean => html,
        MarkupQuality::Defective => inject_minor_defects(html, rng),
        MarkupQuality::Severe => inject_severe_defects(html, rng),
    };

    HtmlDoc {
        html,
        net_text,
        boilerplate_text: boilerplate,
        quality,
    }
}

/// Minor defects: drop some closing tags, unquote some attributes, insert
/// stray `<br>` and `&nbsp;`.
fn inject_minor_defects<R: Rng + ?Sized>(html: String, rng: &mut R) -> String {
    let mut out = String::with_capacity(html.len());
    for line in html.lines() {
        let roll: f64 = rng.random();
        if roll < 0.10 && line.contains("</p>") {
            out.push_str(&line.replace("</p>", "")); // unclosed paragraph
        } else if roll < 0.15 && line.contains("</li>") {
            out.push_str(&line.replace("</li>", "<br>"));
        } else if roll < 0.18 && line.contains("href=\"") {
            // unquoted attribute
            let dequoted = line.replacen("href=\"", "href=", 1);
            out.push_str(&dequoted.replacen('\"', "", 1));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Severe defects: truncate the document mid-tag and interleave elements —
/// the "could not be transcoded" class.
fn inject_severe_defects<R: Rng + ?Sized>(html: String, rng: &mut R) -> String {
    let mut out = inject_minor_defects(html, rng);
    // interleave: swap a closing tag pair somewhere
    if let Some(p) = out.find("</div>") {
        out.replace_range(p..p + 6, "</b></div><i>");
    }
    // truncate mid-tag near the end; documents of 0-1 bytes have nothing
    // to cut (random_range panics on an empty range)
    if out.len() > 1 {
        let cut = out.len() - rng.random_range(1..out.len().min(40));
        let mut boundary = cut.min(out.len() - 1);
        while boundary > 0 && !out.is_char_boundary(boundary) {
            boundary -= 1;
        }
        out.truncate(boundary);
    }
    out.push_str("<di");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paragraphs() -> Vec<String> {
        vec![
            "The gene regulates the tumor in patients.".to_string(),
            "Aspirin reduces chronic pain significantly.".to_string(),
        ]
    }

    #[test]
    fn clean_page_contains_content_and_boilerplate() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = HtmlConfig {
            p_defective: 0.0,
            p_severe: 0.0,
            boilerplate_blocks: 6,
        };
        let doc = wrap_page("Test", &paragraphs(), &[], &cfg, &mut rng);
        assert_eq!(doc.quality, MarkupQuality::Clean);
        assert!(doc.html.contains("<p>The gene regulates"));
        assert!(doc.html.contains("class=\"nav\""));
        assert!(doc.net_text.contains("Aspirin reduces"));
        assert!(!doc.net_text.contains("Home"));
    }

    #[test]
    fn links_are_embedded() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = HtmlConfig::default();
        let links = vec![
            "http://a.example/1".to_string(),
            "http://b.example/2".to_string(),
            "http://c.example/3".to_string(),
        ];
        let doc = wrap_page("T", &paragraphs(), &links, &cfg, &mut rng);
        for l in &links {
            assert!(doc.html.contains(l.as_str()), "missing {l}");
        }
    }

    #[test]
    fn defect_rates_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = HtmlConfig::default();
        let mut severe = 0;
        let mut clean = 0;
        let n = 600;
        for _ in 0..n {
            let doc = wrap_page("T", &paragraphs(), &[], &cfg, &mut rng);
            match doc.quality {
                MarkupQuality::Severe => severe += 1,
                MarkupQuality::Clean => clean += 1,
                MarkupQuality::Defective => {}
            }
        }
        let severe_frac = severe as f64 / n as f64;
        let clean_frac = clean as f64 / n as f64;
        assert!((severe_frac - 0.13).abs() < 0.05, "severe {severe_frac}");
        assert!((clean_frac - 0.05).abs() < 0.04, "clean {clean_frac}");
    }

    #[test]
    fn severe_pages_are_truncated_mid_tag() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = HtmlConfig {
            p_defective: 1.0,
            p_severe: 1.0,
            boilerplate_blocks: 4,
        };
        let doc = wrap_page("T", &paragraphs(), &[], &cfg, &mut rng);
        assert_eq!(doc.quality, MarkupQuality::Severe);
        assert!(doc.html.ends_with("<di"));
    }

    #[test]
    fn severe_defects_survive_tiny_documents() {
        let mut rng = StdRng::seed_from_u64(6);
        for input in ["", "x", "ü"] {
            let out = inject_severe_defects(input.to_string(), &mut rng);
            assert!(out.ends_with("<di"), "{input:?} -> {out:?}");
        }
    }

    #[test]
    fn net_text_excludes_markup() {
        let mut rng = StdRng::seed_from_u64(5);
        let doc = wrap_page("T", &paragraphs(), &[], &HtmlConfig::default(), &mut rng);
        assert!(!doc.net_text.contains('<'));
    }
}
