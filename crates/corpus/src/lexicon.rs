//! Biomedical lexicons: deterministic, generative term banks.
//!
//! The paper draws its dictionaries from Gene Ontology / DrugBank /
//! UMLS-MeSH (700 K gene names, 51 K drug names, 61 K disease names) and
//! its search keywords from the NCI and Genetic Alliance glossaries
//! (Table 1). Those resources are licensed data we do not ship; instead
//! this module *generates* morphologically plausible, unique term banks of
//! configurable size. The generators are deterministic in the term index,
//! so every component of the system (corpus generator, dictionaries, seed
//! queries, gold annotations) agrees on what the "true" vocabulary is.

use serde::Serialize;

/// Sizes for the generated lexicons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LexiconScale {
    pub genes: usize,
    pub drugs: usize,
    pub diseases: usize,
}

impl LexiconScale {
    /// Paper-scale sizes (700 K / 51 K / 61 K).
    pub fn paper() -> LexiconScale {
        LexiconScale {
            genes: 700_000,
            drugs: 51_188,
            diseases: 61_438,
        }
    }

    /// Default working scale (1:100 of the paper) — large enough for
    /// realistic automata, small enough for fast tests and benches.
    pub fn default_scale() -> LexiconScale {
        LexiconScale {
            genes: 7_000,
            drugs: 512,
            diseases: 614,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> LexiconScale {
        LexiconScale {
            genes: 200,
            drugs: 60,
            diseases: 80,
        }
    }
}

/// The generated term banks.
#[derive(Debug, Clone)]
pub struct Lexicon {
    genes: Vec<String>,
    drugs: Vec<String>,
    diseases: Vec<String>,
    scale: LexiconScale,
}

const CONSONANT_PAIRS: &[&str] = &[
    "BR", "CR", "DR", "FR", "GR", "KR", "PR", "TR", "BL", "CL", "FL", "GL", "PL", "SL", "SM",
    "SN", "SP", "ST", "TW", "KN",
];

const DRUG_STEMS: &[&str] = &[
    "lora", "meti", "carbo", "dexa", "flu", "pred", "cyclo", "oxa", "keto", "ami", "beta", "gaba",
    "vala", "zopi", "sulfa", "tetra", "ribo", "lisi", "ator", "ome",
];
const DRUG_MID: &[&str] = &[
    "ni", "ra", "lo", "xi", "do", "ve", "mi", "ta", "pi", "zo", "ci", "fe", "ga", "ru", "se",
];
const DRUG_SUFFIXES: &[&str] = &[
    "mab", "nib", "pril", "statin", "olol", "azole", "cillin", "mycin", "dipine", "sartan",
    "oxacin", "tidine", "profen", "azepam", "triptan", "vir", "gliptin", "parin", "caine", "zide",
];

const DISEASE_ROOTS: &[&str] = &[
    "cardi", "neur", "hepat", "derm", "gastr", "nephr", "arthr", "oste", "my", "psych", "pulmon",
    "hemat", "angi", "enceph", "col", "bronch", "rhin", "ot", "mening", "thyroid",
];
const DISEASE_SUFFIXES: &[&str] = &[
    "itis", "oma", "osis", "opathy", "algia", "emia", "itis b", "odynia", "oma grade ii",
    "osclerosis",
];
const DISEASE_MODIFIERS: &[&str] = &[
    "", "chronic ", "acute ", "severe ", "juvenile ", "hereditary ", "idiopathic ", "recurrent ",
];

/// General biomedical terms (the "general terms" seed category of Table 1).
pub const GENERAL_MEDICAL_TERMS: &[&str] = &[
    "cancer", "chronic pain", "tumor", "therapy", "diagnosis", "syndrome", "infection",
    "inflammation", "treatment", "symptom", "prognosis", "remission", "biopsy", "metastasis",
    "antibody", "vaccine", "pathogen", "immune system", "clinical trial", "gene expression",
    "mutation", "protein", "enzyme", "receptor", "hormone", "chemotherapy", "radiation",
    "surgery", "transplant", "screening", "prevention", "epidemiology", "dose", "side effect",
    "placebo", "relapse", "lesion", "carcinoma", "lymphoma", "leukemia",
];

/// Common English vocabulary for synthesizing non-entity prose.
pub const ENGLISH_CONTENT_WORDS: &[&str] = &[
    "study", "result", "patient", "group", "level", "effect", "analysis", "method", "datum",
    "report", "case", "risk", "rate", "change", "increase", "decrease", "response", "sample",
    "test", "measure", "value", "factor", "model", "approach", "system", "process", "research",
    "evidence", "finding", "outcome", "period", "time", "year", "number", "part", "form",
    "work", "problem", "question", "example", "development", "information", "community",
    "family", "health", "care", "service", "support", "program", "review", "article", "page",
    "website", "comment", "news", "story", "product", "price", "offer", "market", "company",
    "business", "customer", "order", "account", "member", "user", "video", "photo", "game",
    "music", "travel", "food", "recipe", "sport", "team", "player", "season", "weather",
    "school", "student", "money", "house", "city", "country", "world", "people", "life",
];

/// English verbs/adjectives/function words for sentence assembly.
pub const ENGLISH_VERBS: &[&str] = &[
    "shows", "suggests", "indicates", "reduces", "increases", "affects", "causes", "improves",
    "reveals", "confirms", "supports", "requires", "provides", "includes", "contains",
    "describes", "reports", "presents", "compares", "demonstrates",
];
pub const ENGLISH_ADJECTIVES: &[&str] = &[
    "significant", "important", "common", "severe", "effective", "normal", "clinical", "large",
    "small", "high", "low", "new", "recent", "major", "specific", "general", "relevant", "useful",
    "good", "free",
];
pub const FUNCTION_WORDS: &[&str] = &[
    "the", "a", "of", "in", "and", "to", "with", "for", "on", "by", "from", "at", "as", "is",
    "are", "was", "were", "be", "that", "this", "which", "or", "an", "but", "can", "may",
];
pub const PRONOUNS: &[&str] = &["it", "they", "we", "these", "those", "he", "she", "them", "its", "their"];
pub const NEGATION_WORDS: &[&str] = &["not", "nor", "neither"];

impl Lexicon {
    /// Generates the lexicon at the given scale. Deterministic.
    pub fn generate(scale: LexiconScale) -> Lexicon {
        Lexicon {
            genes: (0..scale.genes).map(gene_name).collect(),
            drugs: (0..scale.drugs).map(drug_name).collect(),
            diseases: (0..scale.diseases).map(disease_name).collect(),
            scale,
        }
    }

    pub fn scale(&self) -> LexiconScale {
        self.scale
    }

    pub fn genes(&self) -> &[String] {
        &self.genes
    }

    pub fn drugs(&self) -> &[String] {
        &self.drugs
    }

    pub fn diseases(&self) -> &[String] {
        &self.diseases
    }

    /// Search terms for seed generation (Table 1): category → term list.
    /// `fraction` selects the first crawl's subset (the paper's bracketed
    /// counts used roughly 1/10 to 1/30 of each category).
    pub fn search_terms(&self, category: SearchCategory, count: usize) -> Vec<String> {
        let source: Vec<String> = match category {
            SearchCategory::General => GENERAL_MEDICAL_TERMS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            SearchCategory::Disease => self.diseases.clone(),
            SearchCategory::Drug => self.drugs.clone(),
            SearchCategory::Gene => self.genes.clone(),
        };
        source.into_iter().cycle().take(count).collect()
    }
}

/// The four seed keyword categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SearchCategory {
    General,
    Disease,
    Drug,
    Gene,
}

impl SearchCategory {
    pub fn all() -> [SearchCategory; 4] {
        [
            SearchCategory::General,
            SearchCategory::Disease,
            SearchCategory::Drug,
            SearchCategory::Gene,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            SearchCategory::General => "general terms",
            SearchCategory::Disease => "disease-specific",
            SearchCategory::Drug => "drug-specific",
            SearchCategory::Gene => "gene-specific",
        }
    }

    /// Table 1 term counts at paper scale: (total, first-crawl subset).
    pub fn paper_counts(self) -> (usize, usize) {
        match self {
            SearchCategory::General => (500, 166),
            SearchCategory::Disease => (5000, 468),
            SearchCategory::Drug => (4000, 325),
            SearchCategory::Gene => (6500, 246),
        }
    }
}

/// Deterministic gene symbol for index `i`: consonant-pair + letters +
/// numeric suffix, e.g. `BRCA1`, `STK38`, `KRT17`. Unique for all `i`.
/// Roughly one in six symbols is three characters long (`TNF`, `AK4`) —
/// real gene nomenclature is full of such short symbols, and they are what
/// makes three-letter acronyms on the web indistinguishable from genes for
/// shape-driven ML taggers (§4.3.2).
pub fn gene_name(i: usize) -> String {
    if i % 6 == 5 {
        // short symbols: two letters + digit (BK4), from a dedicated
        // counter space to stay unique. Deliberately never three pure
        // letters: the *shape* (all-caps, length 3) is what confuses the
        // ML taggers about web acronyms, while the dictionary automaton
        // must not literally contain arbitrary TLAs.
        let k = i / 6;
        let l1 = (b'A' + (k % 26) as u8) as char;
        let l2 = (b'A' + ((k / 26) % 26) as u8) as char;
        return format!("{l1}{l2}{}", k % 9 + 1);
    }
    let pair = CONSONANT_PAIRS[i % CONSONANT_PAIRS.len()];
    let letter1 = (b'A' + ((i / CONSONANT_PAIRS.len()) % 26) as u8) as char;
    let letter2 = (b'A' + ((i / (CONSONANT_PAIRS.len() * 26)) % 26) as u8) as char;
    let number = i / (CONSONANT_PAIRS.len() * 26 * 26);
    if number == 0 {
        format!("{pair}{letter1}{letter2}{}", i % 9 + 1)
    } else {
        format!("{pair}{letter1}{letter2}{number}{}", i % 9 + 1)
    }
}

/// Deterministic drug name for index `i`, e.g. `lorani-mab`-style
/// `Loranimab`. Unique for all `i`.
pub fn drug_name(i: usize) -> String {
    let stem = DRUG_STEMS[i % DRUG_STEMS.len()];
    let mid = DRUG_MID[(i / DRUG_STEMS.len()) % DRUG_MID.len()];
    let suffix = DRUG_SUFFIXES[(i / (DRUG_STEMS.len() * DRUG_MID.len())) % DRUG_SUFFIXES.len()];
    let round = i / (DRUG_STEMS.len() * DRUG_MID.len() * DRUG_SUFFIXES.len());
    let mut name = if round == 0 {
        format!("{stem}{mid}{suffix}")
    } else {
        format!("{stem}{mid}{round}{suffix}")
    };
    // Capitalize like a trade name.
    let first = name.remove(0);
    format!("{}{name}", first.to_uppercase())
}

/// Deterministic disease name for index `i`, e.g. `chronic cardiitis`,
/// `neuroma grade ii`. Unique for all `i`.
pub fn disease_name(i: usize) -> String {
    let root = DISEASE_ROOTS[i % DISEASE_ROOTS.len()];
    let suffix = DISEASE_SUFFIXES[(i / DISEASE_ROOTS.len()) % DISEASE_SUFFIXES.len()];
    let modifier =
        DISEASE_MODIFIERS[(i / (DISEASE_ROOTS.len() * DISEASE_SUFFIXES.len())) % DISEASE_MODIFIERS.len()];
    let round = i / (DISEASE_ROOTS.len() * DISEASE_SUFFIXES.len() * DISEASE_MODIFIERS.len());
    if round == 0 {
        format!("{modifier}{root}{suffix}")
    } else {
        format!("{modifier}{root}{suffix} type {round}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generated_names_are_unique() {
        for gen in [gene_name as fn(usize) -> String, drug_name, disease_name] {
            let names: Vec<String> = (0..5000).map(gen).collect();
            let set: HashSet<&String> = names.iter().collect();
            assert_eq!(set.len(), names.len(), "duplicate names from {names:?}");
        }
    }

    #[test]
    fn lexicon_sizes_match_scale() {
        let lex = Lexicon::generate(LexiconScale::tiny());
        assert_eq!(lex.genes().len(), 200);
        assert_eq!(lex.drugs().len(), 60);
        assert_eq!(lex.diseases().len(), 80);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Lexicon::generate(LexiconScale::tiny());
        let b = Lexicon::generate(LexiconScale::tiny());
        assert_eq!(a.genes(), b.genes());
        assert_eq!(a.drugs(), b.drugs());
    }

    #[test]
    fn gene_names_look_like_symbols() {
        let g = gene_name(0);
        assert!(g.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
        assert!(g.len() >= 3 && g.len() <= 8, "{g}");
    }

    #[test]
    fn drug_names_are_capitalized_words() {
        let d = drug_name(7);
        assert!(d.chars().next().unwrap().is_uppercase());
        assert!(d.chars().skip(1).all(|c| c.is_lowercase() || c.is_ascii_digit()));
    }

    #[test]
    fn disease_names_are_lowercase_phrases() {
        let d = disease_name(500);
        assert!(d.chars().next().unwrap().is_lowercase());
        assert!(!d.is_empty());
    }

    #[test]
    fn search_terms_counts() {
        let lex = Lexicon::generate(LexiconScale::tiny());
        let terms = lex.search_terms(SearchCategory::Disease, 30);
        assert_eq!(terms.len(), 30);
        let general = lex.search_terms(SearchCategory::General, 10);
        assert_eq!(general.len(), 10);
        assert!(general.contains(&"cancer".to_string()));
    }

    #[test]
    fn table1_counts() {
        assert_eq!(SearchCategory::General.paper_counts(), (500, 166));
        assert_eq!(SearchCategory::Gene.paper_counts(), (6500, 246));
        let total: usize = SearchCategory::all()
            .iter()
            .map(|c| c.paper_counts().0)
            .sum();
        assert_eq!(total, 16_000);
    }

    #[test]
    fn paper_scale_is_large() {
        let s = LexiconScale::paper();
        assert_eq!(s.genes, 700_000);
        assert_eq!(s.drugs, 51_188);
        assert_eq!(s.diseases, 61_438);
    }
}
