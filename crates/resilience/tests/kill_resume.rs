//! The tentpole acceptance test: a crawl (and a flow) killed mid-flight
//! and resumed from its last checkpoint must reproduce the final
//! statistics of an uninterrupted run *bit-identically* under the same
//! fault plan. These tests drive the real crawler and flow engine
//! through `websift-resilience`'s machinery end to end (dev-dependency
//! cycle: the crates under test depend on this crate's lib).

use std::collections::HashMap;
use websift_crawler::{
    train_focus_classifier, CrawlCheckpoint, CrawlConfig, FocusedCrawler, ResilienceOptions,
};
use websift_flow::{
    ExecutionConfig, Executor, FlowCheckpoint, FlowResilience, LogicalPlan, Operator, Record,
};
use websift_web::{PageId, SimulatedWeb, Url, WebGraph, WebGraphConfig};

fn crawl_setup() -> (SimulatedWeb, Vec<Url>) {
    let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
    let seeds: Vec<Url> = {
        let graph = web.graph();
        (0..graph.num_pages() as u32)
            .map(PageId)
            .filter(|&p| graph.page(p).relevant)
            .take(20)
            .map(|p| graph.url_of(p))
            .collect()
    };
    (web, seeds)
}

fn crawl_config() -> CrawlConfig {
    CrawlConfig {
        max_pages: 220,
        fetch_list_total: 50,
        threads: 4,
        ..CrawlConfig::default()
    }
}

#[test]
fn crawl_killed_and_resumed_is_bit_identical_to_uninterrupted() {
    let (web, seeds) = crawl_setup();
    let opts = ResilienceOptions::injected(0xDEAD_BEEF, 0.05, 2);

    let classifier = || train_focus_classifier(60, 1.5, 99);

    // Uninterrupted baseline under the same fault plan and cadence.
    let mut baseline = FocusedCrawler::new(&web, classifier(), crawl_config());
    let (base_report, base_ckpts) = baseline.crawl_resilient(seeds.clone(), &opts);
    assert!(!base_ckpts.is_empty(), "baseline took no checkpoints");

    // Kill after three rounds; work since the round-2 checkpoint is lost.
    let killed_opts = ResilienceOptions {
        stop_after_rounds: Some(3),
        ..opts.clone()
    };
    let mut victim = FocusedCrawler::new(&web, classifier(), crawl_config());
    let (_partial, mut ckpts) = victim.crawl_resilient(seeds, &killed_opts);
    let last = ckpts.pop().expect("killed crawl took no checkpoint");

    // Round-trip the checkpoint through bytes (the durable path).
    let restored = CrawlCheckpoint::from_bytes(last.round, last.as_bytes().to_vec())
        .expect("sealed checkpoint failed verification");
    let (resumed, resumed_report, _) =
        FocusedCrawler::resume_from(&web, &restored, crawl_config(), &opts, None)
            .expect("resume failed");

    // Bit-identical final CrawlDB statistics: full state digest plus the
    // report's floating-point accumulators compared by bit pattern.
    assert_eq!(
        baseline.state_digest(&base_report),
        resumed.state_digest(&resumed_report),
        "resumed crawl state diverged from the uninterrupted baseline"
    );
    assert_eq!(base_report.relevant.len(), resumed_report.relevant.len());
    assert_eq!(base_report.irrelevant.len(), resumed_report.irrelevant.len());
    assert_eq!(base_report.failed, resumed_report.failed);
    assert_eq!(base_report.duplicates, resumed_report.duplicates);
    assert_eq!(
        base_report.simulated_secs.to_bits(),
        resumed_report.simulated_secs.to_bits()
    );
    assert_eq!(
        base_report.harvest_rate().to_bits(),
        resumed_report.harvest_rate().to_bits()
    );
    assert_eq!(base_report.resilience, resumed_report.resilience);
}

fn flow_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("in");
    let tag = plan.add(
        src,
        Operator::map("tag", websift_flow::Package::Base, |mut r| {
            let n = r.text().map(str::len).unwrap_or(0);
            r.set("len", n);
            r
        }),
    )
    .expect("static plan");
    let keep = plan.add(
        tag,
        Operator::filter("keep", websift_flow::Package::Base, |r| {
            r.get("len").and_then(|v| v.as_int()).unwrap_or(0) % 3 != 0
        }),
    )
    .expect("static plan");
    plan.sink(keep, "out").expect("static plan");
    plan
}

fn flow_docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i).set("text", "x".repeat(10 + i % 17));
            r
        })
        .collect()
}

#[test]
fn flow_killed_and_resumed_is_bit_identical_to_uninterrupted() {
    let plan = flow_plan();
    let res = FlowResilience::injected(0xF10D, 0.25, 1);
    let exec = Executor::new(ExecutionConfig::local(4));
    let inputs = || {
        let mut m = HashMap::new();
        m.insert("in".to_string(), flow_docs(60));
        m
    };

    let baseline = exec
        .run_resilient(&plan, inputs(), &res)
        .expect("baseline flow failed")
        .output
        .expect("baseline must complete");

    let killed_res = FlowResilience {
        stop_after_nodes: Some(2),
        ..res.clone()
    };
    let killed = exec.run_resilient(&plan, inputs(), &killed_res).unwrap();
    assert!(killed.output.is_none());
    let ckpt = killed.checkpoints.last().expect("no checkpoint before kill");
    let restored = FlowCheckpoint::from_bytes(ckpt.next_node, ckpt.as_bytes().to_vec()).unwrap();

    let resumed = exec
        .resume_from(&plan, &restored, inputs(), &res)
        .expect("resume failed")
        .output
        .expect("resumed flow must complete");

    assert_eq!(baseline.sinks, resumed.sinks);
    assert_eq!(
        baseline.deterministic_digest(),
        resumed.deterministic_digest(),
        "resumed flow diverged from the uninterrupted baseline"
    );
}
