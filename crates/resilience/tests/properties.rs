//! Property tests for the resilience subsystem (satellite 3):
//!
//! 1. backoff delays are jitter-bounded — always within `[base_ms,
//!    cap_ms]` and under the `base * 3^attempt` decorrelated-jitter
//!    envelope — and pure in `(seed, site, attempt)`;
//! 2. checkpoint round-trips — a CrawlDB frontier serialized mid-crawl
//!    decodes to byte-identical state with fetch order preserved, and a
//!    crawl resumed from such a snapshot reports the same harvest rate
//!    as the uninterrupted baseline.

use proptest::prelude::*;
use websift_crawler::{
    train_focus_classifier, CrawlConfig, CrawlDb, CrawlDbConfig, FocusedCrawler, FrontierEntry,
    ResilienceOptions,
};
use websift_resilience::{BackoffPolicy, Reader, Writer};
use websift_web::{PageId, SimulatedWeb, Url, WebGraph, WebGraphConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backoff_delay_is_bounded_and_capped(
        seed in 0u64..u64::MAX,
        base in 1u64..2_000,
        cap_mult in 1u64..64,
        attempt in 1u32..9,
        site in "[a-z]{1,16}(\\.[a-z]{2,4})?",
    ) {
        let policy = BackoffPolicy {
            base_ms: base,
            cap_ms: base * cap_mult,
            max_retries: 8,
            seed,
        };
        let delay = policy.delay_ms(&site, attempt);
        prop_assert!(delay >= base, "delay {delay} under base {base}");
        prop_assert!(
            delay <= policy.cap_ms,
            "delay {delay} over cap {}",
            policy.cap_ms
        );
        let envelope = base.saturating_mul(3u64.saturating_pow(attempt));
        prop_assert!(
            delay <= envelope,
            "delay {delay} over 3^n envelope {envelope}"
        );
        // Pure: the same (seed, site, attempt) always yields the same
        // delay — the property the recovery invariant rests on.
        prop_assert_eq!(delay, policy.delay_ms(&site, attempt));
    }

    #[test]
    fn backoff_schedule_is_monotone_in_envelope(
        seed in 0u64..u64::MAX,
        site in "[a-z]{1,12}",
    ) {
        let policy = BackoffPolicy { seed, ..BackoffPolicy::default() };
        let schedule = policy.schedule(&site);
        prop_assert_eq!(schedule.len(), policy.max_retries as usize);
        for (i, &d) in schedule.iter().enumerate() {
            let envelope = policy
                .base_ms
                .saturating_mul(3u64.saturating_pow(i as u32 + 1));
            prop_assert!(d >= policy.base_ms && d <= policy.cap_ms.min(envelope));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frontier_snapshot_round_trips_mid_crawl(
        hosts in prop::collection::vec("[a-z]{3,8}\\.org", 2..6),
        paths in prop::collection::vec("/[a-z]{1,6}(/[a-z]{1,6}){0,3}", 4..40),
        fetched in 0usize..12,
    ) {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        db.add(paths.iter().enumerate().map(|(i, p)| FrontierEntry {
            url: Url::new(&hosts[i % hosts.len()], p),
            irrelevant_steps: (i % 4) as u32,
        }));
        // Drain part of the frontier so the snapshot captures a crawl
        // genuinely in flight (rotated host order, mixed statuses).
        let _ = db.next_fetch_list(2, fetched);

        let mut w = Writer::new();
        db.encode_snapshot(&mut w);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        let mut restored = CrawlDb::decode_snapshot(&mut r).expect("decode failed");
        prop_assert!(r.is_empty(), "snapshot left trailing bytes");

        // Byte-identity: re-encoding the restored DB reproduces the
        // exact snapshot, so digests over checkpoints are stable.
        let mut w2 = Writer::new();
        restored.encode_snapshot(&mut w2);
        prop_assert_eq!(&bytes, &w2.into_bytes());

        // Behavioral identity: the restored frontier hands out the same
        // fetch list in the same order as the original.
        prop_assert_eq!(db.next_fetch_list(3, 50), restored.next_fetch_list(3, 50));
    }
}

proptest! {
    // Each case runs two full (tiny) crawls; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn resumed_crawl_matches_baseline_harvest_rate(
        fault_seed in 0u64..u64::MAX,
        stop_after in 2u64..5,
    ) {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let seeds: Vec<Url> = {
            let graph = web.graph();
            (0..graph.num_pages() as u32)
                .map(PageId)
                .filter(|&p| graph.page(p).relevant)
                .take(15)
                .map(|p| graph.url_of(p))
                .collect()
        };
        let config = || CrawlConfig {
            max_pages: 160,
            fetch_list_total: 40,
            threads: 3,
            ..CrawlConfig::default()
        };
        let opts = ResilienceOptions::injected(fault_seed, 0.1, 1);

        let mut baseline =
            FocusedCrawler::new(&web, train_focus_classifier(60, 1.5, 99), config());
        let (base_report, _) = baseline.crawl_resilient(seeds.clone(), &opts);

        let killed_opts = ResilienceOptions {
            stop_after_rounds: Some(stop_after),
            ..opts.clone()
        };
        let mut victim =
            FocusedCrawler::new(&web, train_focus_classifier(60, 1.5, 99), config());
        let (_, ckpts) = victim.crawl_resilient(seeds, &killed_opts);
        let last = ckpts.last().expect("no checkpoint taken before the kill");

        let (resumed, resumed_report, _) = FocusedCrawler::resume_from(
            &web,
            last,
            config(),
            &opts,
            None,
        )
        .expect("resume failed");

        prop_assert_eq!(
            base_report.harvest_rate().to_bits(),
            resumed_report.harvest_rate().to_bits(),
            "harvest rate diverged after resume"
        );
        prop_assert_eq!(
            baseline.state_digest(&base_report),
            resumed.state_digest(&resumed_report)
        );
    }
}
