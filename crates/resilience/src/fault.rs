//! Seeded deterministic fault injection.
//!
//! A [`FaultPlan`] decides, for every potential failure point, whether a
//! fault fires there. The decision is a pure function of the plan's seed
//! and the *identity* of the point — a fault kind, a site string (URL,
//! host, `operator/partition`, node id, …) and an occurrence counter for
//! sites that are visited repeatedly (retries). No mutable RNG state is
//! shared between decision points, so the same plan produces the same
//! faults no matter how threads interleave or in what order call sites
//! consult it. That property is what makes kill-and-resume runs
//! comparable to uninterrupted ones.

/// The classes of failure the plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A fetch that would have succeeded returns a transient network
    /// error instead (connection reset, timeout). Retryable.
    FetchTransient,
    /// A worker thread panics in the middle of processing its unit of
    /// work (a host batch in the fetcher, a partition in the executor).
    WorkerPanic,
    /// A simulated cluster node drops out for the remainder of the run.
    NodeLoss,
    /// A read from a persistent store (CrawlDB / LinkDB / checkpoint
    /// storage) fails.
    StoreRead,
    /// A write to a persistent store fails.
    StoreWrite,
}

impl FaultKind {
    pub const ALL: [FaultKind; 5] = [
        FaultKind::FetchTransient,
        FaultKind::WorkerPanic,
        FaultKind::NodeLoss,
        FaultKind::StoreRead,
        FaultKind::StoreWrite,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::FetchTransient => 0,
            FaultKind::WorkerPanic => 1,
            FaultKind::NodeLoss => 2,
            FaultKind::StoreRead => 3,
            FaultKind::StoreWrite => 4,
        }
    }

    /// Stable name, used in reports and in the hash preimage.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FetchTransient => "fetch-transient",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::NodeLoss => "node-loss",
            FaultKind::StoreRead => "store-read",
            FaultKind::StoreWrite => "store-write",
        }
    }
}

/// A reproducible schedule of injected faults.
///
/// Rates are probabilities in `[0, 1]` per *decision point*. A rate of
/// zero (the default for every kind) means the corresponding question
/// [`FaultPlan::injects_at`] always answers `false`, so a plan with all
/// rates zero is behaviourally identical to running without one.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; 5],
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A plan with the given seed and every rate at zero.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rates: [0.0; 5] }
    }

    /// A plan injecting every fault kind at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for kind in FaultKind::ALL {
            plan = plan.with_rate(kind, rate);
        }
        plan
    }

    /// Sets the injection rate for one fault kind (clamped to `[0, 1]`).
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> FaultPlan {
        self.rates[kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// True if any kind has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Does a fault of `kind` fire at `site`, first occurrence?
    pub fn injects(&self, kind: FaultKind, site: &str) -> bool {
        self.injects_at(kind, site, 0)
    }

    /// Does a fault of `kind` fire at `site` on its `occurrence`-th
    /// visit? Pure: the answer never changes for the same arguments.
    pub fn injects_at(&self, kind: FaultKind, site: &str, occurrence: u64) -> bool {
        let rate = self.rates[kind.index()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        self.roll(kind, site, occurrence) < rate
    }

    /// The uniform `[0, 1)` draw behind [`FaultPlan::injects_at`],
    /// exposed for callers that need a deterministic choice among
    /// several outcomes (e.g. *which* node fails).
    pub fn roll(&self, kind: FaultKind, site: &str, occurrence: u64) -> f64 {
        let mut h = fnv1a_init(self.seed);
        h = fnv1a_bytes(h, kind.name().as_bytes());
        h = fnv1a_bytes(h, site.as_bytes());
        h = fnv1a_bytes(h, &occurrence.to_le_bytes());
        // finalize with splitmix to decorrelate nearby preimages
        bits_to_unit_f64(splitmix64(h))
    }
}

fn fnv1a_init(seed: u64) -> u64 {
    fnv1a_bytes(0xcbf29ce484222325, &seed.to_le_bytes())
}

fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // separator so ("ab","c") and ("a","bc") hash differently
    h ^= 0xff;
    h.wrapping_mul(0x100000001b3)
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

pub(crate) fn bits_to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::new(7);
        for kind in FaultKind::ALL {
            for occ in 0..100 {
                assert!(!plan.injects_at(kind, "example.org/page", occ));
            }
        }
        assert!(!plan.is_active());
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::uniform(7, 1.0);
        assert!(plan.injects(FaultKind::NodeLoss, "node-3"));
        assert!(plan.is_active());
    }

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::uniform(42, 0.5);
        for occ in 0..32 {
            let first = plan.injects_at(FaultKind::FetchTransient, "h/p", occ);
            for _ in 0..8 {
                assert_eq!(first, plan.injects_at(FaultKind::FetchTransient, "h/p", occ));
            }
        }
    }

    #[test]
    fn seed_and_site_change_the_schedule() {
        let a = FaultPlan::uniform(1, 0.5);
        let b = FaultPlan::uniform(2, 0.5);
        let mut diverged = false;
        for occ in 0..64 {
            if a.injects_at(FaultKind::WorkerPanic, "op/0", occ)
                != b.injects_at(FaultKind::WorkerPanic, "op/0", occ)
            {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds should produce different schedules");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let plan = FaultPlan::uniform(123, 0.2);
        let n = 10_000;
        let fired = (0..n)
            .filter(|&i| plan.injects_at(FaultKind::FetchTransient, "site", i))
            .count();
        let observed = fired as f64 / n as f64;
        assert!(
            (observed - 0.2).abs() < 0.02,
            "observed rate {observed} too far from 0.2"
        );
    }
}
