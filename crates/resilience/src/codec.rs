//! Byte-deterministic checkpoint codec.
//!
//! Checkpoints must satisfy a stronger contract than ordinary
//! serialization: a crawl killed and resumed from a checkpoint has to
//! reproduce *bit-identical* statistics to an uninterrupted run. That
//! rules out anything lossy (float formatting) or order-dependent on
//! hash-map iteration. This module provides a tiny little-endian codec —
//! [`Writer`] / [`Reader`] — with:
//!
//! - fixed-width integer encodings and `f64` via [`f64::to_bits`];
//! - length-prefixed strings and byte blobs;
//! - a sealed-frame layer ([`seal`] / [`open`]) adding a magic tag, a
//!   version byte, and an FNV-1a checksum so truncated or corrupted
//!   checkpoint files fail loudly instead of resuming from garbage.

use std::fmt;

/// Errors surfaced when decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated { what: &'static str },
    /// Frame does not start with the expected magic/tag.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// Frame version is newer than this decoder understands.
    BadVersion { expected: u16, found: u16 },
    /// Frame checksum mismatch — the bytes were corrupted.
    BadChecksum { expected: u64, found: u64 },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An enum discriminant had no mapping.
    BadTag { what: &'static str, tag: u8 },
    /// A decoded value does not fit the platform type it targets
    /// (e.g. a 64-bit length on a 32-bit host).
    Oversize { what: &'static str, value: u64 },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad checkpoint magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::BadVersion { expected, found } => {
                write!(f, "unsupported checkpoint version {found} (decoder speaks {expected})")
            }
            CodecError::BadChecksum { expected, found } => {
                write!(f, "checkpoint checksum mismatch: stored {expected:#018x}, computed {found:#018x}")
            }
            CodecError::BadUtf8 => write!(f, "checkpoint string field is not valid UTF-8"),
            CodecError::BadTag { what, tag } => {
                write!(f, "unknown {what} discriminant {tag} in checkpoint")
            }
            CodecError::Oversize { what, value } => {
                write!(f, "checkpoint {what} value {value} does not fit this platform")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Writer over a recycled buffer (cleared first), so hot encode paths
    /// can reuse capacity across calls instead of reallocating.
    pub fn from_vec(mut buf: Vec<u8>) -> Writer {
        buf.clear();
        Writer { buf }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Encoded via bit pattern: round-trips NaN payloads and signed
    /// zeros exactly, which keeps resumed accumulators bit-identical.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated { what });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Oversize { what: "usize", value: v })
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.usize()?;
        Ok(self.take(len, "bytes")?.to_vec())
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Wraps a payload in a verified frame: `tag | version | len | payload
/// | fnv64(payload)`.
pub fn seal(tag: [u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 22);
    out.extend_from_slice(&tag);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Verifies a [`seal`]ed frame and returns the payload slice.
pub fn open(tag: [u8; 4], version: u16, frame: &[u8]) -> Result<&[u8], CodecError> {
    let mut r = Reader::new(frame);
    let found_tag: [u8; 4] = r.take(4, "frame tag")?.try_into().unwrap();
    if found_tag != tag {
        return Err(CodecError::BadMagic { expected: tag, found: found_tag });
    }
    let found_version = r.u16()?;
    if found_version != version {
        return Err(CodecError::BadVersion { expected: version, found: found_version });
    }
    let len = r.usize()?;
    let payload = r.take(len, "frame payload")?;
    let stored = r.u64()?;
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(CodecError::BadChecksum { expected: stored, found: computed });
    }
    Ok(payload)
}

/// Content digest of a byte string — used to compare checkpoint/state
/// snapshots for the bit-identical-resume invariant.
pub fn digest(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX);
        w.i64(-42);
        w.usize(123);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn sealed_frames_verify() {
        let payload = b"checkpoint payload".to_vec();
        let frame = seal(*b"WSCP", 1, &payload);
        assert_eq!(open(*b"WSCP", 1, &frame).unwrap(), &payload[..]);

        assert!(matches!(
            open(*b"XXXX", 1, &frame),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            open(*b"WSCP", 2, &frame),
            Err(CodecError::BadVersion { .. })
        ));
        let mut corrupted = frame.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xff;
        assert!(matches!(
            open(*b"WSCP", 1, &corrupted),
            Err(CodecError::BadChecksum { .. })
        ));
        assert!(matches!(
            open(*b"WSCP", 1, &frame[..frame.len() - 2]),
            Err(CodecError::Truncated { .. })
        ));
    }
}
