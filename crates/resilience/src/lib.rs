//! Fault tolerance for the websift pipeline.
//!
//! The SIGMOD'16 experience report behind this repository is blunt about
//! what dominated the 80-day crawl and the cluster-scale flow runs: not
//! clever algorithms but *failures* — flaky fetches, worker crashes mid
//! operator, nodes dropping out of the simulated cluster, and the cost of
//! restarting long jobs from zero. This crate packages the three
//! mechanisms the paper's war stories call for, in a form the rest of the
//! workspace can wire in without taking on any non-deterministic
//! behaviour:
//!
//! - [`fault`] — a seeded, thread-interleaving-independent [`FaultPlan`]
//!   that injects transient fetch errors, worker panics, simulated node
//!   loss, and store read/write failures at reproducible points;
//! - [`retry`] — exponential backoff with decorrelated jitter
//!   ([`BackoffPolicy`]), per-host [`RetryBudget`]s, and a
//!   [`CircuitBreaker`] that quarantines persistently failing hosts;
//! - [`codec`] / [`checkpoint`] — a byte-deterministic serialization
//!   substrate ([`codec::Writer`] / [`codec::Reader`]) and the
//!   [`checkpoint::Snapshot`] trait, used by the crawler and the flow
//!   executor to snapshot state at segment/operator boundaries and resume
//!   bit-identically after a kill;
//! - [`frame`] — a streaming length-prefixed frame layer
//!   ([`frame::read_frame`] / [`frame::write_frame`]) used by the flow
//!   engine's worker shards to exchange records and partial aggregates
//!   over pipes, with checksums so a cut or corrupted channel fails as a
//!   typed error instead of resuming from garbage.
//!
//! Everything here is deterministic by construction: fault decisions are
//! pure functions of `(seed, kind, site, occurrence)`, backoff delays are
//! pure functions of `(seed, site, attempt)`, and checkpoints encode
//! floats via their IEEE-754 bit patterns so a resumed run reproduces the
//! exact accumulator values of an uninterrupted one.

pub mod checkpoint;
pub mod codec;
pub mod fault;
pub mod frame;
pub mod retry;

pub use checkpoint::Snapshot;
pub use codec::{CodecError, Reader, Writer};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use fault::{FaultKind, FaultPlan};
pub use retry::{BackoffPolicy, BreakerState, CircuitBreaker, RetryBudget};
