//! Retry with decorrelated-jitter backoff, per-host budgets, and a
//! circuit breaker for persistently failing hosts.
//!
//! All state here participates in crawl checkpoints, so every structure
//! is deterministic and snapshot-able: backoff delays are pure functions
//! of `(seed, site, attempt)`, and [`RetryBudget`] / [`CircuitBreaker`]
//! implement [`crate::Snapshot`].

use std::collections::HashMap;

use crate::checkpoint::Snapshot;
use crate::codec::{CodecError, Reader, Writer};
use crate::fault::{bits_to_unit_f64, splitmix64};

/// Exponential backoff with decorrelated jitter.
///
/// Delay for attempt *n* (1-based) follows the classic decorrelated
/// scheme `d_n = min(cap, uniform(base, 3 * d_{n-1}))` with `d_0 =
/// base`, except the uniform draw is a pure hash of `(seed, site,
/// attempt)` instead of shared RNG state — two callers asking for the
/// same site's schedule always get the same delays.
#[derive(Clone, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Minimum (and first) delay in simulated milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay.
    pub cap_ms: u64,
    /// Retries allowed per site before the failure is permanent.
    pub max_retries: u32,
    /// Seed decorrelating jitter across runs.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy { base_ms: 100, cap_ms: 30_000, max_retries: 4, seed: 0 }
    }
}

impl BackoffPolicy {
    /// Delay in ms before retry `attempt` (1-based) of `site`.
    ///
    /// Guarantees `base_ms <= delay <= cap_ms` (assuming `base_ms <=
    /// cap_ms`) and `delay <= base_ms * 3^attempt`.
    pub fn delay_ms(&self, site: &str, attempt: u32) -> u64 {
        let base = self.base_ms.max(1);
        let cap = self.cap_ms.max(base);
        let mut prev = base;
        let mut delay = base;
        for n in 1..=attempt {
            // uniform draw in [base, 3*prev], pure in (seed, site, n)
            let span = (prev.saturating_mul(3)).saturating_sub(base);
            let u = self.unit(site, n);
            delay = (base + (u * span as f64) as u64).min(cap);
            prev = delay;
        }
        delay
    }

    /// The full schedule of delays for a site, one per allowed retry.
    pub fn schedule(&self, site: &str) -> Vec<u64> {
        (1..=self.max_retries).map(|n| self.delay_ms(site, n)).collect()
    }

    fn unit(&self, site: &str, attempt: u32) -> f64 {
        let mut h = self.seed ^ 0x5bf0_3635_ce8f_70a3;
        for &b in site.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= attempt as u64;
        bits_to_unit_f64(splitmix64(h))
    }
}

/// Caps how many retries each host may consume in one crawl, so a few
/// pathological hosts cannot monopolize the fetch schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RetryBudget {
    per_host: u32,
    spent: HashMap<String, u32>,
}

impl RetryBudget {
    pub fn new(per_host: u32) -> RetryBudget {
        RetryBudget { per_host, spent: HashMap::new() }
    }

    /// Consumes one retry from `host`'s budget; `false` if exhausted.
    pub fn try_spend(&mut self, host: &str) -> bool {
        let spent = self.spent.entry(host.to_string()).or_insert(0);
        if *spent >= self.per_host {
            return false;
        }
        *spent += 1;
        true
    }

    pub fn spent(&self, host: &str) -> u32 {
        self.spent.get(host).copied().unwrap_or(0)
    }

    pub fn remaining(&self, host: &str) -> u32 {
        self.per_host.saturating_sub(self.spent(host))
    }

    /// Total retries consumed across all hosts.
    pub fn total_spent(&self) -> u64 {
        self.spent.values().map(|&n| n as u64).sum()
    }
}

impl Snapshot for RetryBudget {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.per_host);
        self.spent.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<RetryBudget, CodecError> {
        Ok(RetryBudget { per_host: r.u32()?, spent: Snapshot::decode(r)? })
    }
}

/// Breaker state for one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Quarantined until the given simulated time (ms).
    Open { until_ms: u64 },
    /// Cooldown elapsed; one probe request is allowed through.
    HalfOpen,
}

#[derive(Clone, Debug, PartialEq)]
struct HostBreaker {
    consecutive_failures: u32,
    state: BreakerState,
    trips: u32,
}

/// Per-host circuit breaker.
///
/// `failure_threshold` consecutive failures open the circuit for
/// `cooldown_ms` of simulated time; after the cooldown one probe is
/// allowed (half-open), and its outcome either closes the circuit or
/// re-opens it for another cooldown.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_ms: u64,
    hosts: HashMap<String, HostBreaker>,
}

impl CircuitBreaker {
    pub fn new(failure_threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown_ms,
            hosts: HashMap::new(),
        }
    }

    /// May a request to `host` proceed at simulated time `now_ms`?
    /// Transitions Open → HalfOpen when the cooldown has elapsed.
    pub fn allow(&mut self, host: &str, now_ms: u64) -> bool {
        let Some(hb) = self.hosts.get_mut(host) else { return true };
        match hb.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_ms } => {
                if now_ms >= until_ms {
                    hb.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful request: closes the circuit and clears the
    /// failure streak.
    pub fn record_success(&mut self, host: &str) {
        if let Some(hb) = self.hosts.get_mut(host) {
            hb.consecutive_failures = 0;
            hb.state = BreakerState::Closed;
        }
    }

    /// Records a failed request at `now_ms`; a half-open probe failure
    /// or a full failure streak (re)opens the circuit.
    pub fn record_failure(&mut self, host: &str, now_ms: u64) {
        let hb = self.hosts.entry(host.to_string()).or_insert(HostBreaker {
            consecutive_failures: 0,
            state: BreakerState::Closed,
            trips: 0,
        });
        hb.consecutive_failures += 1;
        let reopen = matches!(hb.state, BreakerState::HalfOpen)
            || hb.consecutive_failures >= self.failure_threshold;
        if reopen {
            hb.state = BreakerState::Open { until_ms: now_ms + self.cooldown_ms };
            hb.trips += 1;
            hb.consecutive_failures = 0;
        }
    }

    pub fn state(&self, host: &str) -> BreakerState {
        self.hosts.get(host).map(|hb| hb.state).unwrap_or(BreakerState::Closed)
    }

    /// Hosts currently quarantined (open circuit) at `now_ms`, sorted.
    pub fn quarantined(&self, now_ms: u64) -> Vec<&str> {
        let mut hosts: Vec<&str> = self
            .hosts
            .iter()
            .filter(|(_, hb)| matches!(hb.state, BreakerState::Open { until_ms } if now_ms < until_ms))
            .map(|(h, _)| h.as_str())
            .collect();
        hosts.sort_unstable();
        hosts
    }

    /// Total times any host's circuit has tripped open.
    pub fn total_trips(&self) -> u64 {
        self.hosts.values().map(|hb| hb.trips as u64).sum()
    }
}

impl Snapshot for BreakerState {
    fn encode(&self, w: &mut Writer) {
        match self {
            BreakerState::Closed => w.u8(0),
            BreakerState::Open { until_ms } => {
                w.u8(1);
                w.u64(*until_ms);
            }
            BreakerState::HalfOpen => w.u8(2),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<BreakerState, CodecError> {
        match r.u8()? {
            0 => Ok(BreakerState::Closed),
            1 => Ok(BreakerState::Open { until_ms: r.u64()? }),
            2 => Ok(BreakerState::HalfOpen),
            tag => Err(CodecError::BadTag { what: "BreakerState", tag }),
        }
    }
}

impl Snapshot for HostBreaker {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.consecutive_failures);
        self.state.encode(w);
        w.u32(self.trips);
    }

    fn decode(r: &mut Reader<'_>) -> Result<HostBreaker, CodecError> {
        Ok(HostBreaker {
            consecutive_failures: r.u32()?,
            state: Snapshot::decode(r)?,
            trips: r.u32()?,
        })
    }
}

impl Snapshot for CircuitBreaker {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.failure_threshold);
        w.u64(self.cooldown_ms);
        self.hosts.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<CircuitBreaker, CodecError> {
        Ok(CircuitBreaker {
            failure_threshold: r.u32()?,
            cooldown_ms: r.u64()?,
            hosts: Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_bounds_hold() {
        let policy = BackoffPolicy { base_ms: 50, cap_ms: 5_000, max_retries: 8, seed: 9 };
        let mut bound = policy.base_ms;
        for (i, d) in policy.schedule("example.org").into_iter().enumerate() {
            bound = bound.saturating_mul(3).min(policy.cap_ms);
            assert!(d >= policy.base_ms, "attempt {} below base: {d}", i + 1);
            assert!(d <= policy.cap_ms, "attempt {} above cap: {d}", i + 1);
            assert!(d <= bound, "attempt {} above 3^n envelope: {d} > {bound}", i + 1);
        }
    }

    #[test]
    fn backoff_is_pure_per_site() {
        let policy = BackoffPolicy::default();
        assert_eq!(policy.schedule("a.org"), policy.schedule("a.org"));
        // different sites should (almost surely) get different jitter
        assert_ne!(policy.schedule("a.org"), policy.schedule("b.org"));
    }

    #[test]
    fn budget_caps_spending() {
        let mut budget = RetryBudget::new(2);
        assert!(budget.try_spend("h"));
        assert!(budget.try_spend("h"));
        assert!(!budget.try_spend("h"));
        assert!(budget.try_spend("other"));
        assert_eq!(budget.spent("h"), 2);
        assert_eq!(budget.remaining("h"), 0);
        assert_eq!(budget.total_spent(), 3);
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        let mut cb = CircuitBreaker::new(3, 1_000);
        assert!(cb.allow("h", 0));
        cb.record_failure("h", 0);
        cb.record_failure("h", 10);
        assert!(cb.allow("h", 20), "below threshold stays closed");
        cb.record_failure("h", 20);
        assert_eq!(cb.state("h"), BreakerState::Open { until_ms: 1_020 });
        assert!(!cb.allow("h", 500));
        assert_eq!(cb.quarantined(500), vec!["h"]);
        // cooldown elapsed: one probe allowed
        assert!(cb.allow("h", 1_020));
        assert_eq!(cb.state("h"), BreakerState::HalfOpen);
        // probe fails: straight back to open
        cb.record_failure("h", 1_030);
        assert!(matches!(cb.state("h"), BreakerState::Open { .. }));
        assert_eq!(cb.total_trips(), 2);
        // probe succeeds after second cooldown: closed again
        assert!(cb.allow("h", 3_000));
        cb.record_success("h");
        assert_eq!(cb.state("h"), BreakerState::Closed);
        assert!(cb.quarantined(3_001).is_empty());
    }

    #[test]
    fn breaker_and_budget_roundtrip() {
        let mut cb = CircuitBreaker::new(2, 500);
        cb.record_failure("x.org", 10);
        cb.record_failure("x.org", 20);
        cb.record_failure("y.org", 30);
        let mut budget = RetryBudget::new(3);
        budget.try_spend("x.org");
        budget.try_spend("x.org");

        let mut w = Writer::new();
        cb.encode(&mut w);
        budget.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let cb2 = CircuitBreaker::decode(&mut r).unwrap();
        let budget2 = RetryBudget::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(cb, cb2);
        assert_eq!(budget, budget2);
    }
}
