//! The [`Snapshot`] trait: structured state that can round-trip through
//! the [`crate::codec`] byte format.
//!
//! Implementations must be *byte-deterministic*: encoding the same
//! logical state twice yields identical bytes. For unordered
//! collections (hash maps/sets) the impls here sort entries by key
//! before writing, so two states that compare equal always produce
//! equal checkpoints — which lets callers compare whole-state digests
//! ([`crate::codec::digest`]) instead of field-by-field equality.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

use crate::codec::{CodecError, Reader, Writer};

/// State that participates in checkpoints.
pub trait Snapshot: Sized {
    fn encode(&self, w: &mut Writer);
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh byte buffer.
pub fn encode_to_vec<T: Snapshot>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value, requiring the buffer to be fully consumed.
pub fn decode_from_slice<T: Snapshot>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::Truncated { what: "trailing bytes after value" });
    }
    Ok(value)
}

macro_rules! snapshot_primitive {
    ($($ty:ty => $write:ident / $read:ident),+ $(,)?) => {
        $(
            impl Snapshot for $ty {
                fn encode(&self, w: &mut Writer) {
                    w.$write(*self);
                }
                fn decode(r: &mut Reader<'_>) -> Result<$ty, CodecError> {
                    r.$read()
                }
            }
        )+
    };
}

snapshot_primitive! {
    u8 => u8 / u8,
    u16 => u16 / u16,
    u32 => u32 / u32,
    u64 => u64 / u64,
    i64 => i64 / i64,
    usize => usize / usize,
    f64 => f64 / f64,
    bool => bool / bool,
}

impl Snapshot for String {
    fn encode(&self, w: &mut Writer) {
        w.str(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<String, CodecError> {
        r.str()
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
        let len = r.usize()?;
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<VecDeque<T>, CodecError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Option<T>, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag { what: "Option", tag }),
        }
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<(A, B), CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Snapshot + Default + Copy, const N: usize> Snapshot for [T; N] {
    fn encode(&self, w: &mut Writer) {
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<[T; N], CodecError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
}

// lint:allow(hash_iteration): entries are sorted by key before encoding
impl<K, V> Snapshot for HashMap<K, V>
where
    K: Snapshot + Ord + Hash + Eq,
    V: Snapshot,
{
    fn encode(&self, w: &mut Writer) {
        // sorted by key so equal maps encode to equal bytes
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.usize(entries.len());
        for (k, v) in entries {
            k.encode(w);
            v.encode(w);
        }
    }

    // lint:allow(hash_iteration): decode only inserts; nothing iterates here
    fn decode(r: &mut Reader<'_>) -> Result<HashMap<K, V>, CodecError> {
        let len = r.usize()?;
        // lint:allow(hash_iteration): decode only inserts; nothing iterates here
        let mut out = HashMap::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// lint:allow(hash_iteration): items are sorted before encoding
impl<T> Snapshot for HashSet<T>
where
    T: Snapshot + Ord + Hash + Eq,
{
    fn encode(&self, w: &mut Writer) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.usize(items.len());
        for item in items {
            item.encode(w);
        }
    }

    // lint:allow(hash_iteration): decode only inserts; nothing iterates here
    fn decode(r: &mut Reader<'_>) -> Result<HashSet<T>, CodecError> {
        let len = r.usize()?;
        // lint:allow(hash_iteration): decode only inserts; nothing iterates here
        let mut out = HashSet::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collections_roundtrip() {
        let mut map: HashMap<String, Vec<u64>> = HashMap::new();
        map.insert("b".into(), vec![1, 2]);
        map.insert("a".into(), vec![]);
        let mut set: HashSet<u64> = HashSet::new();
        set.extend([9, 3, 7]);
        let deque: VecDeque<(String, u32)> =
            vec![("x".to_string(), 1u32), ("y".to_string(), 2)].into();
        let opt: Option<f64> = Some(3.25);
        let arr: [u64; 2] = [10, 20];

        let mut w = Writer::new();
        map.encode(&mut w);
        set.encode(&mut w);
        deque.encode(&mut w);
        opt.encode(&mut w);
        arr.encode(&mut w);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(HashMap::<String, Vec<u64>>::decode(&mut r).unwrap(), map);
        assert_eq!(HashSet::<u64>::decode(&mut r).unwrap(), set);
        assert_eq!(VecDeque::<(String, u32)>::decode(&mut r).unwrap(), deque);
        assert_eq!(Option::<f64>::decode(&mut r).unwrap(), opt);
        assert_eq!(<[u64; 2]>::decode(&mut r).unwrap(), arr);
        assert!(r.is_empty());
    }

    #[test]
    fn equal_maps_encode_identically() {
        // build two maps with different insertion orders
        let mut a: HashMap<String, u64> = HashMap::new();
        let mut b: HashMap<String, u64> = HashMap::new();
        for i in 0..64 {
            a.insert(format!("key{i}"), i);
        }
        for i in (0..64).rev() {
            b.insert(format!("key{i}"), i);
        }
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = encode_to_vec(&7u64);
        bytes.push(0);
        assert!(decode_from_slice::<u64>(&bytes).is_err());
    }
}
