//! Streaming frame layer for inter-process shuffle channels.
//!
//! The sealed-frame codec in [`crate::codec`] wraps a complete byte
//! buffer; worker shards instead speak a *stream* of length-prefixed
//! frames over pipes or sockets, where the reader cannot know the
//! frame boundary until it has parsed the header. Each frame is
//!
//! ```text
//! magic "WSFR" (4) | kind u8 | len u64 LE | payload | fnv64(payload)
//! ```
//!
//! so a truncated, corrupted, or desynchronized stream surfaces as a
//! typed [`FrameError`] instead of a panic or a silently-wrong record.
//! A clean end-of-stream *between* frames decodes as `Ok(None)`; EOF
//! anywhere inside a frame is [`FrameError::Truncated`].

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

use crate::codec::digest;

/// Leading magic of every shuffle frame.
pub const FRAME_MAGIC: [u8; 4] = *b"WSFR";

/// Upper bound on a single frame's payload. A length prefix beyond
/// this is treated as stream corruption rather than an allocation
/// request — a desynchronized reader must not OOM the worker.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// Errors surfaced while reading or writing a shuffle frame stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying channel failed.
    Io(io::Error),
    /// Stream position does not start with the frame magic.
    BadMagic { found: [u8; 4] },
    /// The stream ended inside a frame.
    Truncated { what: &'static str },
    /// Payload checksum mismatch — the bytes were corrupted in flight.
    BadChecksum { expected: u64, found: u64 },
    /// Length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversize { len: u64 },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame channel i/o error: {e}"),
            FrameError::BadMagic { found } => write!(
                f,
                "bad frame magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(&FRAME_MAGIC),
                String::from_utf8_lossy(found)
            ),
            FrameError::Truncated { what } => {
                write!(f, "frame stream truncated while reading {what}")
            }
            FrameError::BadChecksum { expected, found } => {
                write!(f, "frame checksum mismatch: stored {expected:#018x}, computed {found:#018x}")
            }
            FrameError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one `kind`-tagged frame to the channel. Does not flush; the
/// caller batches flushes at protocol turn-taking points.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() as u64 > MAX_FRAME_BYTES {
        return Err(FrameError::Oversize { len: payload.len() as u64 });
    }
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&digest(payload).to_le_bytes())?;
    Ok(())
}

/// Fills `buf` exactly, mapping an early EOF to [`FrameError::Truncated`].
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            FrameError::Truncated { what }
        } else {
            FrameError::Io(e)
        }
    })
}

/// Reads the next frame from the channel.
///
/// Returns `Ok(None)` on a clean end-of-stream (zero bytes available at
/// a frame boundary); EOF after the first magic byte is `Truncated`.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut magic[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated { what: "frame magic" }),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let mut kind = [0u8; 1];
    read_exact_or(r, &mut kind, "frame kind")?;
    let mut len_bytes = [0u8; 8];
    read_exact_or(r, &mut len_bytes, "frame length")?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversize { len });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, "frame payload")?;
    let mut sum_bytes = [0u8; 8];
    read_exact_or(r, &mut sum_bytes, "frame checksum")?;
    let stored = u64::from_le_bytes(sum_bytes);
    let computed = digest(&payload);
    if stored != computed {
        return Err(FrameError::BadChecksum { expected: stored, found: computed });
    }
    Ok(Some((kind[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, payload).unwrap();
        out
    }

    #[test]
    fn stream_roundtrip() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 1, b"alpha").unwrap();
        write_frame(&mut stream, 2, b"").unwrap();
        write_frame(&mut stream, 9, &[0u8; 1000]).unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((1, b"alpha".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((2, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((9, vec![0u8; 1000])));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncation_inside_a_frame_is_typed() {
        let full = encode(3, b"payload bytes");
        for cut in 1..full.len() {
            let mut r = &full[..cut];
            match read_frame(&mut r) {
                Err(FrameError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_typed() {
        let full = encode(3, b"payload bytes");
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x41;
            let mut r = &bad[..];
            // Any single-byte flip must decode to a typed error or (for
            // kind-byte flips) a frame that is not byte-equal — never a
            // panic and never the original frame.
            if let Ok(Some((kind, payload))) = read_frame(&mut r) {
                assert!(kind != 3 || payload != b"payload bytes");
            }
        }
    }

    #[test]
    fn oversize_length_is_rejected_without_allocating() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&FRAME_MAGIC);
        stream.push(1);
        stream.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = &stream[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Oversize { .. })));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut stream = b"XXXX".to_vec();
        stream.extend_from_slice(&encode(1, b"x")[4..]);
        let mut r = &stream[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadMagic { .. })));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn frames_roundtrip(
                payloads in prop::collection::vec(
                    prop::collection::vec(0u8..=255, 0..256), 0..8),
                kinds in prop::collection::vec(0u8..=255, 8..9),
            ) {
                let mut stream = Vec::new();
                for (i, payload) in payloads.iter().enumerate() {
                    write_frame(&mut stream, kinds[i], payload).unwrap();
                }
                let mut r = &stream[..];
                for (i, payload) in payloads.iter().enumerate() {
                    prop_assert_eq!(read_frame(&mut r).unwrap(), Some((kinds[i], payload.clone())));
                }
                prop_assert_eq!(read_frame(&mut r).unwrap(), None);
            }

            #[test]
            fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
                let mut r = &bytes[..];
                // Drain the stream; every outcome must be typed.
                while let Ok(Some(_)) = read_frame(&mut r) {}
            }

            #[test]
            fn truncated_frame_is_typed(payload in prop::collection::vec(0u8..=255, 0..256),
                                        kind in 0u8..=255,
                                        cut_back in 1usize..16) {
                let mut stream = Vec::new();
                write_frame(&mut stream, kind, &payload).unwrap();
                let cut = stream.len().saturating_sub(cut_back).max(1);
                let mut r = &stream[..cut];
                prop_assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated { .. })));
            }
        }
    }
}
