//! The multi-threaded, politeness-respecting fetcher.
//!
//! "A set of fetcher threads reads lists of not yet visited URLs ...
//! downloads the respective web pages"; "politeness rules of web servers
//! were respected". Fetching against the simulated web is near-instant, so
//! wall-clock politeness sleeping would be pointless; instead the fetcher
//! *accounts* simulated time: per-host queues are serialized and separated
//! by the host's robots crawl-delay, threads run host queues in parallel,
//! and the makespan of the batch is reported in simulated milliseconds.
//! The paper's "3-4 documents per second" download rate emerges from this
//! accounting plus the downstream filtering cost.

use crate::crawldb::FrontierEntry;
use crossbeam::thread;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use websift_web::{FetchError, FetchResponse, SimulatedWeb};

/// One fetch outcome.
#[derive(Debug)]
pub struct FetchOutcome {
    pub entry: FrontierEntry,
    pub result: Result<FetchResponse, FetchError>,
}

/// Batch statistics in simulated time.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FetchStats {
    pub fetched: u64,
    pub failed: u64,
    pub bytes: u64,
    /// Simulated makespan of the batch in milliseconds.
    pub simulated_ms: u64,
    /// Robots-disallowed URLs skipped without fetching.
    pub robots_skipped: u64,
}

/// The fetcher.
pub struct Fetcher<'w> {
    web: &'w SimulatedWeb,
    threads: usize,
}

impl<'w> Fetcher<'w> {
    pub fn new(web: &'w SimulatedWeb, threads: usize) -> Fetcher<'w> {
        assert!(threads > 0);
        Fetcher { web, threads }
    }

    /// Fetches a batch, respecting robots.txt (disallow rules skip the URL;
    /// crawl-delay serializes the host's simulated timeline).
    pub fn fetch_batch(&self, batch: Vec<FrontierEntry>) -> (Vec<FetchOutcome>, FetchStats) {
        // Group by host so one host stays on one thread (politeness).
        let mut by_host: HashMap<String, Vec<FrontierEntry>> = HashMap::new();
        for entry in batch {
            by_host.entry(entry.url.host().to_string()).or_default().push(entry);
        }
        let mut host_lists: Vec<(String, Vec<FrontierEntry>)> = by_host.into_iter().collect();
        host_lists.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic assignment

        let queue = Mutex::new(host_lists);
        let results = Mutex::new(Vec::new());
        let thread_times = Mutex::new(vec![0u64; self.threads]);
        let stats = Mutex::new(FetchStats::default());

        thread::scope(|scope| {
            for tid in 0..self.threads {
                let queue = &queue;
                let results = &results;
                let stats = &stats;
                let thread_times = &thread_times;
                let web = self.web;
                scope.spawn(move |_| {
                    loop {
                        let (host, entries) = match queue.lock().pop() {
                            Some(x) => x,
                            None => break,
                        };
                        let rules = web.robots(&host);
                        let delay = rules.as_ref().map(|r| r.crawl_delay_ms).unwrap_or(0);
                        let mut host_time = 0u64;
                        let mut local_outcomes = Vec::with_capacity(entries.len());
                        let mut local_stats = FetchStats::default();
                        for entry in entries {
                            if let Some(r) = &rules {
                                if !r.allows(entry.url.path()) {
                                    local_stats.robots_skipped += 1;
                                    continue;
                                }
                            }
                            let result = web.fetch(&entry.url);
                            match &result {
                                Ok(resp) => {
                                    host_time += delay.max(resp.latency_ms);
                                    local_stats.fetched += 1;
                                    local_stats.bytes += resp.body.len() as u64;
                                }
                                Err(_) => {
                                    host_time += delay.max(30);
                                    local_stats.failed += 1;
                                }
                            }
                            local_outcomes.push(FetchOutcome { entry, result });
                        }
                        results.lock().extend(local_outcomes);
                        thread_times.lock()[tid] += host_time;
                        stats.lock().merge(&local_stats);
                    }
                });
            }
        })
        .expect("fetcher threads panicked");

        let mut outcomes = results.into_inner();
        // Deterministic output order regardless of thread scheduling.
        outcomes.sort_by(|a, b| a.entry.url.cmp(&b.entry.url));
        let mut final_stats = stats.into_inner();
        final_stats.simulated_ms = thread_times.into_inner().into_iter().max().unwrap_or(0);
        (outcomes, final_stats)
    }
}

impl FetchStats {
    fn merge(&mut self, other: &FetchStats) {
        self.fetched += other.fetched;
        self.failed += other.failed;
        self.bytes += other.bytes;
        self.robots_skipped += other.robots_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_web::{Url, WebGraph, WebGraphConfig};

    fn entries(web: &SimulatedWeb, n: usize) -> Vec<FrontierEntry> {
        (0..n.min(web.graph().num_pages()))
            .map(|i| FrontierEntry {
                url: web.graph().url_of(websift_web::PageId(i as u32)),
                irrelevant_steps: 0,
            })
            .collect()
    }

    #[test]
    fn fetches_batch_in_parallel() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let fetcher = Fetcher::new(&web, 4);
        let batch = entries(&web, 40);
        let n = batch.len();
        let (outcomes, stats) = fetcher.fetch_batch(batch);
        assert_eq!(outcomes.len() as u64 + stats.robots_skipped, n as u64);
        assert_eq!(stats.fetched + stats.failed, outcomes.len() as u64);
        assert!(stats.bytes > 0);
        assert!(stats.simulated_ms > 0);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let batch1 = entries(&web, 30);
        let batch2 = entries(&web, 30);
        let (o1, _) = Fetcher::new(&web, 1).fetch_batch(batch1);
        let (o8, _) = Fetcher::new(&web, 8).fetch_batch(batch2);
        let urls1: Vec<String> = o1.iter().map(|o| o.entry.url.to_string()).collect();
        let urls8: Vec<String> = o8.iter().map(|o| o.entry.url.to_string()).collect();
        assert_eq!(urls1, urls8);
    }

    #[test]
    fn robots_disallow_is_respected() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let host = web
            .graph()
            .hosts()
            .iter()
            .find(|h| h.disallow_prefix.is_some())
            .expect("tiny graph should have a disallowing host")
            .name
            .clone();
        let fetcher = Fetcher::new(&web, 2);
        let batch = vec![FrontierEntry {
            url: Url::new(&host, "/private/secret.html"),
            irrelevant_steps: 0,
        }];
        let (outcomes, stats) = fetcher.fetch_batch(batch);
        assert!(outcomes.is_empty());
        assert_eq!(stats.robots_skipped, 1);
    }

    #[test]
    fn more_threads_do_not_increase_makespan() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let (_, s1) = Fetcher::new(&web, 1).fetch_batch(entries(&web, 60));
        let (_, s8) = Fetcher::new(&web, 8).fetch_batch(entries(&web, 60));
        assert!(s8.simulated_ms <= s1.simulated_ms);
    }
}
