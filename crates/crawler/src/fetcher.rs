//! The multi-threaded, politeness-respecting fetcher.
//!
//! "A set of fetcher threads reads lists of not yet visited URLs ...
//! downloads the respective web pages"; "politeness rules of web servers
//! were respected". Fetching against the simulated web is near-instant, so
//! wall-clock politeness sleeping would be pointless; instead the fetcher
//! *accounts* simulated time: per-host queues are serialized and separated
//! by the host's robots crawl-delay, threads run host queues in parallel,
//! and the makespan of the batch is reported in simulated milliseconds.
//! The paper's "3-4 documents per second" download rate emerges from this
//! accounting plus the downstream filtering cost.
//!
//! # Failure handling
//!
//! Worker failures never abort the batch. Each host batch runs inside
//! `catch_unwind`, so a panic mid-host (real or injected via a
//! [`FaultPlan`]) surfaces as typed [`FetchFailure::WorkerPanic`]
//! outcomes for that host's entries while the worker thread moves on to
//! the next host. As a second line of defence, worker threads are joined
//! individually: a thread that somehow dies outside the per-host guard
//! has its in-flight host converted to `WorkerPanic` outcomes too, and
//! any hosts left unclaimed in the queue are drained the same way rather
//! than being silently dropped.

use crate::crawldb::FrontierEntry;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use websift_resilience::{FaultKind, FaultPlan};
use websift_web::{FetchError, FetchResponse, SimulatedWeb, Url};

/// The host batch a worker is currently fetching (for crash recovery).
type InFlightBatch = Option<(String, Vec<FrontierEntry>)>;

/// Simulated cost of detecting and cleaning up a crashed worker, charged
/// to the host's timeline in place of the work it lost.
const PANIC_RECOVERY_MS: u64 = 50;

/// Why a fetch produced no page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchFailure {
    /// Permanent protocol-level failure from the (simulated) web; not
    /// worth retrying.
    Http(FetchError),
    /// Transient network failure (injected by a [`FaultPlan`]); the
    /// same URL may succeed on retry.
    Transient { attempt: u32 },
    /// The worker thread handling this URL's host batch panicked.
    WorkerPanic { message: String },
}

impl FetchFailure {
    /// Transient failures and worker crashes are retryable; HTTP-level
    /// failures (unknown host, 404) are permanent.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, FetchFailure::Http(_))
    }
}

impl std::fmt::Display for FetchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchFailure::Http(e) => write!(f, "http error: {e:?}"),
            FetchFailure::Transient { attempt } => {
                write!(f, "transient network failure (attempt {attempt})")
            }
            FetchFailure::WorkerPanic { message } => write!(f, "fetch worker panicked: {message}"),
        }
    }
}

/// One fetch outcome.
#[derive(Debug)]
pub struct FetchOutcome {
    pub entry: FrontierEntry,
    pub result: Result<FetchResponse, FetchFailure>,
}

/// Batch statistics in simulated time.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FetchStats {
    pub fetched: u64,
    pub failed: u64,
    pub bytes: u64,
    /// Simulated makespan of the batch in milliseconds.
    pub simulated_ms: u64,
    /// Robots-disallowed URLs skipped without fetching.
    pub robots_skipped: u64,
    /// Failures injected by the fault plan as transient network errors.
    pub injected_transient: u64,
    /// Host batches lost to a panicking worker (real or injected).
    pub worker_panics: u64,
}

/// Fault-injection context for one batch: the plan, the batch's epoch
/// (so per-host panic decisions differ between rounds), and per-URL
/// attempt counters (so a retried URL gets a fresh transient-fault
/// decision).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultContext<'p> {
    pub plan: Option<&'p FaultPlan>,
    pub epoch: u64,
    pub attempts: Option<&'p HashMap<Url, u32>>,
}

impl<'p> FaultContext<'p> {
    pub fn new(plan: &'p FaultPlan, epoch: u64, attempts: &'p HashMap<Url, u32>) -> Self {
        FaultContext { plan: Some(plan), epoch, attempts: Some(attempts) }
    }

    fn attempt_of(&self, url: &Url) -> u32 {
        self.attempts.and_then(|m| m.get(url)).copied().unwrap_or(0)
    }
}

/// The fetcher.
pub struct Fetcher<'w> {
    web: &'w SimulatedWeb,
    threads: usize,
}

impl<'w> Fetcher<'w> {
    pub fn new(web: &'w SimulatedWeb, threads: usize) -> Fetcher<'w> {
        assert!(threads > 0);
        Fetcher { web, threads }
    }

    /// Fetches a batch, respecting robots.txt (disallow rules skip the URL;
    /// crawl-delay serializes the host's simulated timeline).
    pub fn fetch_batch(&self, batch: Vec<FrontierEntry>) -> (Vec<FetchOutcome>, FetchStats) {
        self.fetch_batch_with(batch, FaultContext::default())
    }

    /// [`Fetcher::fetch_batch`] with fault injection.
    pub fn fetch_batch_with(
        &self,
        batch: Vec<FrontierEntry>,
        faults: FaultContext<'_>,
    ) -> (Vec<FetchOutcome>, FetchStats) {
        // Group by host so one host stays on one thread (politeness).
        let mut by_host: HashMap<String, Vec<FrontierEntry>> = HashMap::new();
        for entry in batch {
            by_host.entry(entry.url.host().to_string()).or_default().push(entry);
        }
        let mut host_lists: Vec<(String, Vec<FrontierEntry>)> = by_host.into_iter().collect();
        host_lists.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic assignment

        let queue = Mutex::new(host_lists);
        let results = Mutex::new(Vec::new());
        // (host, busy time) pairs; the simulated makespan is computed
        // from these after the batch so it does not depend on which OS
        // thread happened to claim which host.
        let host_times = Mutex::new(Vec::new());
        let stats = Mutex::new(FetchStats::default());
        // host each worker is currently processing, for crash recovery
        let in_flight: Mutex<Vec<InFlightBatch>> = Mutex::new(vec![None; self.threads]);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|tid| {
                    let queue = &queue;
                    let results = &results;
                    let stats = &stats;
                    let host_times = &host_times;
                    let in_flight = &in_flight;
                    let web = self.web;
                    scope.spawn(move || loop {
                        let (host, entries) = match queue.lock().pop() {
                            Some(x) => x,
                            None => break,
                        };
                        in_flight.lock()[tid] = Some((host.clone(), entries.clone()));
                        let worked = catch_unwind(AssertUnwindSafe(|| {
                            fetch_host_batch(web, &host, entries, &faults)
                        }));
                        let stashed = in_flight.lock()[tid].take();
                        let (local_outcomes, host_time, local_stats) = match worked {
                            Ok(done) => done,
                            Err(payload) => {
                                // partial work for the host is discarded;
                                // every entry becomes a typed failure
                                let message = panic_message(&payload);
                                let (_, entries) =
                                    stashed.unwrap_or((host.clone(), Vec::new()));
                                panicked_host_outcomes(&host, entries, &message)
                            }
                        };
                        results.lock().extend(local_outcomes);
                        host_times.lock().push((host, host_time));
                        stats.lock().merge(&local_stats);
                    })
                })
                .collect();
            for (tid, handle) in handles.into_iter().enumerate() {
                if let Err(payload) = handle.join() {
                    // Worker died outside the per-host guard: convert its
                    // in-flight host batch into typed failures.
                    let message = panic_message(&payload);
                    if let Some((host, entries)) = in_flight.lock()[tid].take() {
                        let (outcomes, host_time, local_stats) =
                            panicked_host_outcomes(&host, entries, &message);
                        results.lock().extend(outcomes);
                        host_times.lock().push((host, host_time));
                        stats.lock().merge(&local_stats);
                    }
                }
            }
        });

        // Hosts never claimed because workers died early: fail them
        // loudly instead of dropping them.
        for (host, entries) in queue.into_inner() {
            let (outcomes, host_time, local_stats) =
                panicked_host_outcomes(&host, entries, "worker pool exhausted by panics");
            results.lock().extend(outcomes);
            host_times.lock().push((host, host_time));
            stats.lock().merge(&local_stats);
        }

        let mut outcomes = results.into_inner();
        // Deterministic output order regardless of thread scheduling.
        outcomes.sort_by(|a, b| a.entry.url.cmp(&b.entry.url));
        let mut final_stats = stats.into_inner();
        final_stats.simulated_ms = self.simulated_makespan(host_times.into_inner());
        (outcomes, final_stats)
    }

    /// Simulated makespan of a batch: hosts (sorted, so the result is
    /// independent of thread interleaving) are greedily assigned to the
    /// least-loaded of `threads` simulated workers, and the busiest
    /// worker's total is the batch duration. This models the same
    /// host-per-thread politeness scheduling the real workers use while
    /// keeping the simulated clock bit-deterministic.
    fn simulated_makespan(&self, mut host_times: Vec<(String, u64)>) -> u64 {
        host_times.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut loads = vec![0u64; self.threads];
        for (_, t) in host_times {
            let min = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap_or(0);
            loads[min] += t;
        }
        loads.into_iter().max().unwrap_or(0)
    }
}

/// Processes one host's queue on the current worker thread. Panics (from
/// fault injection or real bugs) unwind to the per-host `catch_unwind`.
fn fetch_host_batch(
    web: &SimulatedWeb,
    host: &str,
    entries: Vec<FrontierEntry>,
    faults: &FaultContext<'_>,
) -> (Vec<FetchOutcome>, u64, FetchStats) {
    if let Some(plan) = faults.plan {
        if plan.injects_at(FaultKind::WorkerPanic, host, faults.epoch) {
            panic!("injected fault: worker panic on host {host}");
        }
    }
    let rules = web.robots(host);
    let delay = rules.as_ref().map(|r| r.crawl_delay_ms).unwrap_or(0);
    let mut host_time = 0u64;
    let mut local_outcomes = Vec::with_capacity(entries.len());
    let mut local_stats = FetchStats::default();
    for entry in entries {
        if let Some(r) = &rules {
            if !r.allows(entry.url.path()) {
                local_stats.robots_skipped += 1;
                continue;
            }
        }
        let injected = faults.plan.is_some_and(|plan| {
            plan.injects_at(
                FaultKind::FetchTransient,
                &entry.url.to_string(),
                faults.attempt_of(&entry.url) as u64,
            )
        });
        let result = if injected {
            local_stats.injected_transient += 1;
            Err(FetchFailure::Transient { attempt: faults.attempt_of(&entry.url) })
        } else {
            web.fetch(&entry.url).map_err(FetchFailure::Http)
        };
        match &result {
            Ok(resp) => {
                host_time += delay.max(resp.latency_ms);
                local_stats.fetched += 1;
                local_stats.bytes += resp.body.len() as u64;
            }
            Err(_) => {
                host_time += delay.max(30);
                local_stats.failed += 1;
            }
        }
        local_outcomes.push(FetchOutcome { entry, result });
    }
    (local_outcomes, host_time, local_stats)
}

/// Typed outcomes for a host batch lost to a worker panic.
fn panicked_host_outcomes(
    host: &str,
    entries: Vec<FrontierEntry>,
    message: &str,
) -> (Vec<FetchOutcome>, u64, FetchStats) {
    let local_stats = FetchStats {
        worker_panics: 1,
        failed: entries.len() as u64,
        ..FetchStats::default()
    };
    let outcomes = entries
        .into_iter()
        .map(|entry| FetchOutcome {
            entry,
            result: Err(FetchFailure::WorkerPanic {
                message: format!("{message} (host {host})"),
            }),
        })
        .collect();
    (outcomes, PANIC_RECOVERY_MS, local_stats)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl FetchStats {
    fn merge(&mut self, other: &FetchStats) {
        self.fetched += other.fetched;
        self.failed += other.failed;
        self.bytes += other.bytes;
        self.robots_skipped += other.robots_skipped;
        self.injected_transient += other.injected_transient;
        self.worker_panics += other.worker_panics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_web::{WebGraph, WebGraphConfig};

    fn entries(web: &SimulatedWeb, n: usize) -> Vec<FrontierEntry> {
        (0..n.min(web.graph().num_pages()))
            .map(|i| FrontierEntry {
                url: web.graph().url_of(websift_web::PageId(i as u32)),
                irrelevant_steps: 0,
            })
            .collect()
    }

    #[test]
    fn fetches_batch_in_parallel() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let fetcher = Fetcher::new(&web, 4);
        let batch = entries(&web, 40);
        let n = batch.len();
        let (outcomes, stats) = fetcher.fetch_batch(batch);
        assert_eq!(outcomes.len() as u64 + stats.robots_skipped, n as u64);
        assert_eq!(stats.fetched + stats.failed, outcomes.len() as u64);
        assert!(stats.bytes > 0);
        assert!(stats.simulated_ms > 0);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let batch1 = entries(&web, 30);
        let batch2 = entries(&web, 30);
        let (o1, _) = Fetcher::new(&web, 1).fetch_batch(batch1);
        let (o8, _) = Fetcher::new(&web, 8).fetch_batch(batch2);
        let urls1: Vec<String> = o1.iter().map(|o| o.entry.url.to_string()).collect();
        let urls8: Vec<String> = o8.iter().map(|o| o.entry.url.to_string()).collect();
        assert_eq!(urls1, urls8);
    }

    #[test]
    fn robots_disallow_is_respected() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let host = web
            .graph()
            .hosts()
            .iter()
            .find(|h| h.disallow_prefix.is_some())
            .expect("tiny graph should have a disallowing host")
            .name
            .clone();
        let fetcher = Fetcher::new(&web, 2);
        let batch = vec![FrontierEntry {
            url: Url::new(&host, "/private/secret.html"),
            irrelevant_steps: 0,
        }];
        let (outcomes, stats) = fetcher.fetch_batch(batch);
        assert!(outcomes.is_empty());
        assert_eq!(stats.robots_skipped, 1);
    }

    #[test]
    fn more_threads_do_not_increase_makespan() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let (_, s1) = Fetcher::new(&web, 1).fetch_batch(entries(&web, 60));
        let (_, s8) = Fetcher::new(&web, 8).fetch_batch(entries(&web, 60));
        assert!(s8.simulated_ms <= s1.simulated_ms);
    }

    #[test]
    fn injected_transient_faults_become_typed_failures() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let fetcher = Fetcher::new(&web, 4);
        let batch = entries(&web, 40);
        let n_outcomes = fetcher.fetch_batch(batch.clone()).0.len();
        let plan = FaultPlan::new(11).with_rate(FaultKind::FetchTransient, 1.0);
        let attempts = HashMap::new();
        let (outcomes, stats) =
            fetcher.fetch_batch_with(batch, FaultContext::new(&plan, 0, &attempts));
        assert_eq!(outcomes.len(), n_outcomes);
        assert_eq!(stats.injected_transient as usize, n_outcomes);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.result, Err(FetchFailure::Transient { .. }))));
        assert!(outcomes.iter().all(|o| o.result.as_ref().unwrap_err().is_retryable()));
    }

    #[test]
    fn worker_panics_become_typed_failures_not_aborts() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let fetcher = Fetcher::new(&web, 3);
        let batch = entries(&web, 40);
        let plan = FaultPlan::new(5).with_rate(FaultKind::WorkerPanic, 1.0);
        let attempts = HashMap::new();
        // every host batch panics; the call must still return, with every
        // non-robots-skipped entry accounted for as a typed failure
        let (outcomes, stats) =
            fetcher.fetch_batch_with(batch.clone(), FaultContext::new(&plan, 0, &attempts));
        assert!(stats.worker_panics > 0);
        assert_eq!(outcomes.len(), batch.len());
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.result, Err(FetchFailure::WorkerPanic { .. }))));
    }

    #[test]
    fn fault_outcomes_are_deterministic_across_thread_counts() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let plan = FaultPlan::uniform(21, 0.3);
        let attempts = HashMap::new();
        let run = |threads| {
            let fetcher = Fetcher::new(&web, threads);
            let (outcomes, _) = fetcher
                .fetch_batch_with(entries(&web, 50), FaultContext::new(&plan, 3, &attempts));
            outcomes
                .into_iter()
                .map(|o| (o.entry.url.to_string(), o.result.is_ok()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }
}
