//! HTML parsing: tokenization into tags/text, link extraction, markup
//! repair, and markup removal.
//!
//! Real web markup is broken (95 % non-conformant per the paper's cited
//! measurements), so the parser here is defensive by construction: it
//! tokenizes byte-by-byte, never assumes well-formedness, tolerates
//! unquoted attributes and unclosed elements, and reports — rather than
//! crashes on — pages that are too mangled to transcode.

use websift_web::Url;

/// One parsed HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlToken {
    /// `<tag attr=...>`; name lower-cased, raw attribute string preserved.
    Open { name: String, attrs: String },
    /// `</tag>`
    Close { name: String },
    /// Text between tags (entity-decoded for the few common entities).
    Text(String),
}

/// Tags whose content is never text (dropped wholesale).
const SKIP_CONTENT: &[&str] = &["script", "style", "noscript"];

/// Block-level tags (used by the boilerplate segmenter).
pub const BLOCK_TAGS: &[&str] = &[
    "p", "div", "td", "li", "h1", "h2", "h3", "h4", "blockquote", "article", "section", "pre",
    "table", "ul", "ol", "body",
];

/// Void elements that never close.
const VOID_TAGS: &[&str] = &["br", "hr", "img", "input", "meta", "link"];

/// Tokenizes HTML defensively. Content of `<script>`/`<style>` is skipped.
pub fn tokenize_html(html: &str) -> Vec<HtmlToken> {
    let mut tokens = Vec::new();
    let bytes = html.as_bytes();
    let mut i = 0usize;
    let n = bytes.len();
    let mut skip_until_close: Option<String> = None;

    while i < n {
        if bytes[i] == b'<' {
            // comment?
            if html[i..].starts_with("<!--") {
                match html[i..].find("-->") {
                    Some(end) => {
                        i += end + 3;
                        continue;
                    }
                    None => break, // unterminated comment: drop the rest
                }
            }
            // find closing '>'
            let close = match html[i..].find('>') {
                Some(c) => i + c,
                None => {
                    // truncated tag at EOF (the severe-defect pattern)
                    break;
                }
            };
            let inner = &html[i + 1..close];
            let is_close = inner.starts_with('/');
            let name_part = inner.trim_start_matches('/');
            let name_end = name_part
                .find(|c: char| c.is_whitespace() || c == '/')
                .unwrap_or(name_part.len());
            let name = name_part[..name_end].to_lowercase();
            let attrs = name_part[name_end..].trim().trim_end_matches('/').to_string();
            i = close + 1;

            if name.is_empty() || name.starts_with('!') {
                continue;
            }
            if let Some(skip) = &skip_until_close {
                if is_close && &name == skip {
                    skip_until_close = None;
                }
                continue;
            }
            if is_close {
                tokens.push(HtmlToken::Close { name });
            } else {
                if SKIP_CONTENT.contains(&name.as_str()) {
                    skip_until_close = Some(name.clone());
                }
                tokens.push(HtmlToken::Open { name, attrs });
            }
        } else {
            let next_tag = html[i..].find('<').map(|p| i + p).unwrap_or(n);
            if skip_until_close.is_none() {
                let raw = &html[i..next_tag];
                let text = decode_entities(raw);
                if !text.trim().is_empty() {
                    tokens.push(HtmlToken::Text(text));
                }
            }
            i = next_tag;
        }
    }
    tokens
}

/// Decodes the handful of common entities.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&nbsp;", " ")
        .replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
}

/// Extracts all link targets (`href` values) from a page, resolved against
/// `base`. Tolerates unquoted attributes. Unresolvable links are skipped.
pub fn extract_links(html: &str, base: &Url) -> Vec<Url> {
    let mut out = Vec::new();
    for token in tokenize_html(html) {
        if let HtmlToken::Open { name, attrs } = token {
            if name != "a" {
                continue;
            }
            if let Some(href) = attr_value(&attrs, "href") {
                if href.starts_with('#') || href.starts_with("javascript:") || href.is_empty() {
                    continue;
                }
                if let Ok(url) = base.join(&href) {
                    out.push(url);
                }
            }
        }
    }
    out
}

/// Pulls an attribute value out of a raw attribute string, handling quoted
/// and unquoted forms.
pub fn attr_value(attrs: &str, key: &str) -> Option<String> {
    let lower = attrs.to_lowercase();
    let kpos = lower.find(&format!("{key}="))?;
    let rest = &attrs[kpos + key.len() + 1..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|e| stripped[..e].to_string())
    } else if let Some(stripped) = rest.strip_prefix('\'') {
        stripped.find('\'').map(|e| stripped[..e].to_string())
    } else {
        let end = rest
            .find(|c: char| c.is_whitespace() || c == '>')
            .unwrap_or(rest.len());
        Some(rest[..end].to_string())
    }
}

/// Error from markup repair: the page is too mangled to transcode — the
/// 13 % class of the paper's cited measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Untranscodable {
    pub reason: String,
}

impl std::fmt::Display for Untranscodable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "untranscodable markup: {}", self.reason)
    }
}

impl std::error::Error for Untranscodable {}

/// Repairs markup into a balanced token stream: closes unclosed elements,
/// drops stray close tags. Fails if the structural damage ratio exceeds
/// `max_damage` (fraction of tags needing intervention).
pub fn repair_markup(html: &str, max_damage: f64) -> Result<Vec<HtmlToken>, Untranscodable> {
    let tokens = tokenize_html(html);
    let mut stack: Vec<String> = Vec::new();
    let mut repaired: Vec<HtmlToken> = Vec::new();
    let mut tag_count = 0usize;
    let mut damage = 0usize;

    for token in tokens {
        match token {
            HtmlToken::Open { name, attrs } => {
                tag_count += 1;
                if !VOID_TAGS.contains(&name.as_str()) {
                    stack.push(name.clone());
                }
                repaired.push(HtmlToken::Open { name, attrs });
            }
            HtmlToken::Close { name } => {
                tag_count += 1;
                match stack.iter().rposition(|t| *t == name) {
                    Some(pos) => {
                        // close interleaved elements opened after it,
                        // innermost first (no unwrap on attacker input)
                        for unclosed in stack.drain(pos + 1..).rev() {
                            damage += 1;
                            repaired.push(HtmlToken::Close { name: unclosed });
                        }
                        stack.pop();
                        repaired.push(HtmlToken::Close { name });
                    }
                    None => {
                        damage += 1; // stray close tag: drop
                    }
                }
            }
            text => repaired.push(text),
        }
    }
    // close whatever is still open
    while let Some(unclosed) = stack.pop() {
        damage += 1;
        repaired.push(HtmlToken::Close { name: unclosed });
    }
    if tag_count > 0 && damage as f64 / tag_count as f64 > max_damage {
        return Err(Untranscodable {
            reason: format!("{damage} structural repairs over {tag_count} tags"),
        });
    }
    Ok(repaired)
}

/// Removes all markup, returning the concatenated text (no boilerplate
/// removal — that is the detector's job).
pub fn strip_markup(html: &str) -> String {
    let mut out = String::new();
    for token in tokenize_html(html) {
        if let HtmlToken::Text(t) = token {
            if !out.is_empty() && !out.ends_with('\n') {
                out.push('\n');
            }
            out.push_str(t.trim());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_html() {
        let toks = tokenize_html("<p>Hello <b>world</b></p>");
        assert_eq!(toks.len(), 6);
        assert!(matches!(&toks[0], HtmlToken::Open { name, .. } if name == "p"));
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "Hello "));
    }

    #[test]
    fn skips_script_and_style_content() {
        let html = "<script>var x = '<p>not text</p>';</script><p>real</p><style>.a{}</style>";
        let text = strip_markup(html);
        assert_eq!(text.trim(), "real");
    }

    #[test]
    fn skips_comments() {
        let text = strip_markup("<p>a</p><!-- hidden <p>x</p> --><p>b</p>");
        assert_eq!(text, "a\nb");
    }

    #[test]
    fn decodes_entities() {
        let text = strip_markup("<p>a &amp; b &lt;c&gt;&nbsp;d</p>");
        assert_eq!(text, "a & b <c> d");
    }

    #[test]
    fn extracts_quoted_and_unquoted_links() {
        let base = Url::parse("http://x.example/dir/page.html").unwrap();
        let html = r#"<a href="http://y.example/a">1</a> <a href=/b>2</a> <a href='c.html'>3</a>"#;
        let links = extract_links(html, &base);
        assert_eq!(links.len(), 3);
        assert_eq!(links[0].to_string(), "http://y.example/a");
        assert_eq!(links[1].to_string(), "http://x.example/b");
        assert_eq!(links[2].to_string(), "http://x.example/dir/c.html");
    }

    #[test]
    fn ignores_fragments_and_javascript() {
        let base = Url::parse("http://x.example/").unwrap();
        let html = r##"<a href="#top">t</a><a href="javascript:void(0)">j</a>"##;
        assert!(extract_links(html, &base).is_empty());
    }

    #[test]
    fn truncated_tag_at_eof_is_tolerated() {
        let toks = tokenize_html("<p>ok</p><di");
        assert!(matches!(&toks[1], HtmlToken::Text(t) if t == "ok"));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn repair_closes_unclosed_elements() {
        let repaired = repair_markup("<div><p>text", 1.0).unwrap();
        let closes: Vec<&str> = repaired
            .iter()
            .filter_map(|t| match t {
                HtmlToken::Close { name } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(closes, vec!["p", "div"]);
    }

    #[test]
    fn repair_drops_stray_closes_and_fixes_interleaving() {
        let repaired = repair_markup("<b><i>x</b></i>", 1.0).unwrap();
        // must be balanced afterwards
        let mut depth = 0i32;
        for t in &repaired {
            match t {
                HtmlToken::Open { .. } => depth += 1,
                HtmlToken::Close { .. } => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn repair_rejects_hopeless_markup() {
        // nothing but stray close tags
        let html = "</p></div></b></i></span></p></div>";
        assert!(repair_markup(html, 0.5).is_err());
    }

    #[test]
    fn void_tags_do_not_unbalance() {
        let repaired = repair_markup("<p>a<br>b<img src=x>c</p>", 0.1).unwrap();
        assert!(repaired.len() >= 5);
    }

    #[test]
    fn attr_value_edge_cases() {
        assert_eq!(attr_value(r#"href="x" id=y"#, "id"), Some("y".to_string()));
        assert_eq!(attr_value("", "href"), None);
        assert_eq!(attr_value("href=", "href"), Some(String::new()));
    }
}
