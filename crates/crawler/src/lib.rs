//! The focused web crawler (Apache-Nutch-style, Fig. 1 of the paper).
//!
//! A focused crawler "downloads web pages, classifies them as relevant or
//! not, and only further considers links outgoing from relevant pages".
//! The crate implements the full Fig.-1 architecture from scratch:
//!
//! - [`crawldb`] — the crawl frontier with host-partitioned fetch lists
//!   (500-per-host cap) and spider-trap guards;
//! - [`linkdb`] — the crawled link graph (input to Table 2's PageRank);
//! - [`fetcher`] — multi-threaded fetching with robots.txt politeness and
//!   simulated-time accounting;
//! - [`parser`] — defensive HTML tokenization, link extraction, markup
//!   repair, markup removal;
//! - [`boilerplate`] — Boilerpipe-style shallow-text-feature net-text
//!   extraction, including its documented failure modes;
//! - [`filters`] — the MIME → length → language pre-selection chain with
//!   the counters behind the paper's 9.5 % / 17 % / 14 % reductions;
//! - [`classifier`] — the incremental Naive-Bayes focus classifier;
//! - [`seeds`] — simulated search engines and Table-1 keyword-driven seed
//!   generation;
//! - [`crawl`] — the orchestrated focused-crawl loop with harvest-rate and
//!   throughput reporting;
//! - [`feedback`] — the §5 "consolidated process" extension: IE results
//!   steering the classifier during the crawl;
//! - [`recovery`] — resilience options, retry/breaker/checkpoint counters,
//!   and the sealed crawl-checkpoint container behind
//!   [`crawl::FocusedCrawler::resume_from`].

pub mod boilerplate;
pub mod classifier;
pub mod crawl;
pub mod crawldb;
pub mod feedback;
pub mod fetcher;
pub mod filters;
pub mod linkdb;
pub mod parser;
pub mod recovery;
pub mod seeds;

pub use boilerplate::{evaluate_extraction, BoilerplateConfig, BoilerplateDetector};
pub use classifier::{train_focus_classifier, NaiveBayes, Prediction};
pub use crawl::{CrawlConfig, CrawlReport, CrawlSession, CrawledPage, FocusedCrawler};
pub use crawldb::{CrawlDb, CrawlDbConfig, FrontierEntry, UrlStatus};
pub use feedback::IeFeedback;
pub use fetcher::{FaultContext, FetchFailure, FetchOutcome, FetchStats, Fetcher};
pub use filters::{FilterChain, FilterConfig, FilterStats, RejectReason};
pub use linkdb::LinkDb;
pub use recovery::{CrawlCheckpoint, ResilienceOptions, ResilienceStats};
pub use seeds::{default_engines, generate_seeds, SearchEngine, SeedList};
