//! LinkDB: the link graph of crawled pages.
//!
//! Nutch's LinkDB "stores the graph structure of the crawled pages"; here
//! it interns URLs, records directed edges, and exports adjacency plus a
//! host grouping so the experiment harness can compute Table 2's
//! PageRank-by-domain ranking.

use std::collections::HashMap;
use websift_resilience::{CodecError, Reader, Snapshot, Writer};
use websift_web::Url;

/// Interned link graph.
#[derive(Debug, Default)]
pub struct LinkDb {
    ids: HashMap<Url, u32>,
    urls: Vec<Url>,
    edges: Vec<Vec<u32>>,
}

impl LinkDb {
    pub fn new() -> LinkDb {
        LinkDb::default()
    }

    /// Interns a URL, returning its id.
    pub fn intern(&mut self, url: &Url) -> u32 {
        if let Some(&id) = self.ids.get(url) {
            return id;
        }
        let id = self.urls.len() as u32;
        self.ids.insert(url.clone(), id);
        self.urls.push(url.clone());
        self.edges.push(Vec::new());
        id
    }

    /// Records the outlinks of a page.
    pub fn add_links(&mut self, from: &Url, targets: &[Url]) {
        let fid = self.intern(from);
        let mut out: Vec<u32> = targets.iter().map(|t| self.intern(t)).collect();
        out.sort_unstable();
        out.dedup();
        self.edges[fid as usize] = out;
    }

    pub fn len(&self) -> usize {
        self.urls.len()
    }

    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    pub fn url(&self, id: u32) -> &Url {
        &self.urls[id as usize]
    }

    /// Adjacency lists over interned ids (input to PageRank).
    pub fn adjacency(&self) -> &[Vec<u32>] {
        &self.edges
    }

    /// Serializes the graph for a crawl checkpoint. Only the interned
    /// URL list and adjacency are stored; the id index is rebuilt on
    /// decode (ids are positions in the URL list).
    pub fn encode_snapshot(&self, w: &mut Writer) {
        self.urls.encode(w);
        self.edges.encode(w);
    }

    /// Inverse of [`LinkDb::encode_snapshot`].
    pub fn decode_snapshot(r: &mut Reader<'_>) -> Result<LinkDb, CodecError> {
        let urls: Vec<Url> = Snapshot::decode(r)?;
        let edges: Vec<Vec<u32>> = Snapshot::decode(r)?;
        let ids = urls
            .iter()
            .enumerate()
            .map(|(i, u)| (u.clone(), i as u32))
            .collect();
        Ok(LinkDb { ids, urls, edges })
    }

    /// Groups nodes by host: returns (group id per node, host names).
    pub fn host_groups(&self) -> (Vec<u32>, Vec<String>) {
        let mut host_ids: HashMap<&str, u32> = HashMap::new();
        let mut names: Vec<String> = Vec::new();
        let mut groups = Vec::with_capacity(self.urls.len());
        for url in &self.urls {
            let next_id = names.len() as u32;
            let id = *host_ids.entry(url.host()).or_insert_with(|| {
                names.push(url.host().to_string());
                next_id
            });
            groups.push(id);
        }
        (groups, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(host: &str, path: &str) -> Url {
        Url::new(host, path)
    }

    #[test]
    fn interning_is_stable() {
        let mut db = LinkDb::new();
        let a = db.intern(&u("a.example", "/1"));
        let b = db.intern(&u("a.example", "/2"));
        assert_ne!(a, b);
        assert_eq!(db.intern(&u("a.example", "/1")), a);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn links_build_adjacency() {
        let mut db = LinkDb::new();
        let from = u("a.example", "/");
        db.add_links(&from, &[u("b.example", "/x"), u("c.example", "/y")]);
        assert_eq!(db.len(), 3);
        let fid = db.intern(&from);
        assert_eq!(db.adjacency()[fid as usize].len(), 2);
    }

    #[test]
    fn duplicate_targets_deduped() {
        let mut db = LinkDb::new();
        let from = u("a.example", "/");
        let t = u("b.example", "/x");
        db.add_links(&from, &[t.clone(), t.clone()]);
        let fid = db.intern(&from);
        assert_eq!(db.adjacency()[fid as usize].len(), 1);
    }

    #[test]
    fn host_grouping() {
        let mut db = LinkDb::new();
        db.add_links(&u("a.example", "/"), &[u("b.example", "/x"), u("a.example", "/y")]);
        let (groups, names) = db.host_groups();
        assert_eq!(names.len(), 2);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], groups[2], "same host same group");
    }

    #[test]
    fn pagerank_over_linkdb() {
        let mut db = LinkDb::new();
        // b and c both link to a
        db.add_links(&u("b.example", "/"), &[u("a.example", "/")]);
        db.add_links(&u("c.example", "/"), &[u("a.example", "/")]);
        let scores = websift_web::pagerank(db.adjacency(), 0.85, 30);
        let aid = db.intern(&u("a.example", "/")) as usize;
        for (i, &s) in scores.iter().enumerate() {
            if i != aid {
                assert!(scores[aid] > s);
            }
        }
    }
}
