//! Naive Bayes relevance classifier (bag-of-words).
//!
//! The focused crawler "use[s] a Naive Bayes algorithm due to its
//! robustness with respect to class imbalance ... and its ability to update
//! its model incrementally". The model here is multinomial NB over
//! lower-cased word counts with Laplace smoothing, an adjustable decision
//! threshold on the log-odds (the paper's classifier "is geared towards
//! high precision"), and incremental `update` support.

use serde::Serialize;
use std::collections::HashMap;

/// Class labels: `true` = relevant (biomedical), `false` = irrelevant.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    /// word -> [irrelevant count, relevant count]
    word_counts: HashMap<String, [u64; 2]>,
    /// total word tokens per class
    class_tokens: [u64; 2],
    /// documents per class
    class_docs: [u64; 2],
    /// decision threshold on log-odds (higher = more precision, less recall)
    threshold: f64,
}

/// The checkpointable decomposition of a [`NaiveBayes`] model: word
/// counts, per-class token totals, per-class document totals, threshold.
pub type ModelParts<'a> = (&'a HashMap<String, [u64; 2]>, [u64; 2], [u64; 2], f64);

/// A scored prediction.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Prediction {
    pub relevant: bool,
    /// log P(relevant | doc) - log P(irrelevant | doc) (unnormalized).
    pub log_odds: f64,
}

fn words(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() >= 2)
        .map(str::to_lowercase)
}

impl NaiveBayes {
    pub fn new() -> NaiveBayes {
        NaiveBayes::default()
    }

    /// Sets the decision threshold on the log-odds. Positive values trade
    /// recall for precision (the paper's configuration); negative values do
    /// the opposite (the §5 "tune the classifier towards more recall"
    /// alternative).
    pub fn with_threshold(mut self, threshold: f64) -> NaiveBayes {
        self.threshold = threshold;
        self
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decomposes the model for checkpointing: word counts, per-class
    /// token totals, per-class document totals, and the threshold.
    pub fn snapshot_parts(&self) -> ModelParts<'_> {
        (&self.word_counts, self.class_tokens, self.class_docs, self.threshold)
    }

    /// Rebuilds a model from checkpointed parts (inverse of
    /// [`NaiveBayes::snapshot_parts`]).
    pub fn from_parts(
        word_counts: HashMap<String, [u64; 2]>,
        class_tokens: [u64; 2],
        class_docs: [u64; 2],
        threshold: f64,
    ) -> NaiveBayes {
        NaiveBayes { word_counts, class_tokens, class_docs, threshold }
    }

    /// Incrementally adds one labeled document.
    pub fn update(&mut self, text: &str, relevant: bool) {
        let c = relevant as usize;
        self.class_docs[c] += 1;
        for w in words(text) {
            self.word_counts.entry(w).or_insert([0, 0])[c] += 1;
            self.class_tokens[c] += 1;
        }
    }

    /// Trains from scratch on labeled documents.
    pub fn train<'a, I>(docs: I) -> NaiveBayes
    where
        I: IntoIterator<Item = (&'a str, bool)>,
    {
        let mut nb = NaiveBayes::new();
        for (text, label) in docs {
            nb.update(text, label);
        }
        nb
    }

    pub fn vocabulary_size(&self) -> usize {
        self.word_counts.len()
    }

    pub fn trained_documents(&self) -> u64 {
        self.class_docs[0] + self.class_docs[1]
    }

    /// Scores a document.
    pub fn predict(&self, text: &str) -> Prediction {
        let vocab = self.word_counts.len().max(1) as f64;
        let total_docs = (self.class_docs[0] + self.class_docs[1]).max(1) as f64;
        let mut log_odds = ((self.class_docs[1] as f64 + 0.5) / total_docs).ln()
            - ((self.class_docs[0] as f64 + 0.5) / total_docs).ln();
        for w in words(text) {
            let counts = self.word_counts.get(&w).copied().unwrap_or([0, 0]);
            let p_rel = (counts[1] as f64 + 1.0) / (self.class_tokens[1] as f64 + vocab);
            let p_irr = (counts[0] as f64 + 1.0) / (self.class_tokens[0] as f64 + vocab);
            log_odds += p_rel.ln() - p_irr.ln();
        }
        Prediction {
            relevant: log_odds > self.threshold,
            log_odds,
        }
    }

    /// Convenience boolean prediction.
    pub fn is_relevant(&self, text: &str) -> bool {
        self.predict(text).relevant
    }
}

/// Trains the default focus classifier the way the paper did: "a set of
/// randomly selected abstracts from Medline, considered as relevant, and an
/// equal-sized set of randomly selected English documents taken from the
/// common crawl corpus, considered as irrelevant" — here the Medline and
/// irrelevant-web generators. The deliberate bias (training abstracts look
/// nothing like relevant *web* pages) is inherited, as §4.3.1 discusses.
pub fn train_focus_classifier(docs_per_class: usize, threshold: f64, seed: u64) -> NaiveBayes {
    use websift_corpus::{CorpusKind, Generator};
    let relevant = Generator::new(CorpusKind::Medline, seed).documents(docs_per_class);
    let irrelevant =
        Generator::new(CorpusKind::IrrelevantWeb, seed ^ 0xF00D).documents(docs_per_class);
    NaiveBayes::train(
        relevant
            .iter()
            .map(|d| (d.body.as_str(), true))
            .chain(irrelevant.iter().map(|d| (d.body.as_str(), false))),
    )
    .with_threshold(threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> NaiveBayes {
        let rel = [
            "the gene mutation causes disease in patients",
            "drug treatment for cancer therapy and tumors",
            "clinical trial shows the drug reduces tumor growth",
            "disease symptoms improve with gene therapy treatment",
        ];
        let irr = [
            "the football team won the game last night",
            "cheap flights and travel deals for summer",
            "new phone review with camera samples",
            "stock market prices fell on monday trading",
        ];
        NaiveBayes::train(
            rel.iter()
                .map(|&t| (t, true))
                .chain(irr.iter().map(|&t| (t, false))),
        )
    }

    #[test]
    fn classifies_obvious_documents() {
        let nb = toy_model();
        assert!(nb.is_relevant("gene therapy for cancer patients"));
        assert!(!nb.is_relevant("football game travel deals"));
    }

    #[test]
    fn log_odds_sign_matches_prediction() {
        let nb = toy_model();
        let p = nb.predict("tumor drug trial");
        assert!(p.relevant);
        assert!(p.log_odds > 0.0);
    }

    #[test]
    fn threshold_trades_recall_for_precision() {
        let nb_low = toy_model().with_threshold(-5.0);
        let nb_high = toy_model().with_threshold(8.0);
        // A weakly-medical doc: accepted by the recall-oriented model,
        // rejected by the precision-oriented one.
        let borderline = "the patients watched the football game";
        assert!(nb_low.is_relevant(borderline) || !nb_high.is_relevant(borderline));
        // strongly relevant accepted by both? high threshold may reject
        // weak docs but strong evidence passes
        let strong = "gene mutation cancer tumor drug therapy disease clinical treatment";
        assert!(nb_low.is_relevant(strong));
    }

    #[test]
    fn incremental_update_changes_predictions() {
        let mut nb = toy_model();
        let text = "quantum flux capacitors and warp drives";
        let before = nb.predict(text).log_odds;
        for _ in 0..20 {
            nb.update(text, true);
        }
        let after = nb.predict(text).log_odds;
        assert!(after > before);
    }

    #[test]
    fn empty_model_is_neutral() {
        let nb = NaiveBayes::new();
        let p = nb.predict("anything at all");
        assert!((p.log_odds).abs() < 1e-9);
        assert_eq!(nb.vocabulary_size(), 0);
    }

    #[test]
    fn empty_text_uses_priors_only() {
        let mut nb = NaiveBayes::new();
        for _ in 0..9 {
            nb.update("medical words here", true);
        }
        nb.update("other words", false);
        let p = nb.predict("");
        assert!(p.log_odds > 0.0, "prior should favor the majority class");
    }

    #[test]
    fn robust_to_class_imbalance() {
        // 50:1 imbalance, the regime the paper chose NB for.
        let mut nb = NaiveBayes::new();
        for i in 0..200 {
            nb.update(&format!("shopping deals offer {i}"), false);
        }
        for _ in 0..4 {
            nb.update("gene cancer tumor therapy", true);
        }
        assert!(nb.is_relevant("gene tumor therapy for cancer"));
        assert!(!nb.is_relevant("shopping deals offer today"));
    }
}
