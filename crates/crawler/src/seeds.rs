//! Seed generation via simulated search engines.
//!
//! Section 2.2: seeds come from keyword queries against five engines
//! (Bing, Google, Arxiv, Nature, Nature blogs), each with rate limits and
//! result caps, using the four keyword categories of Table 1. Two of the
//! paper's observations are structural and reproduced here:
//!
//! - engines answer *general* terms with authoritative portal front pages
//!   ("the search engines return rather general pages, which they
//!   considered as authoritative ... such as front pages of portals") —
//!   exactly the pages a high-precision classifier then rejects;
//! - specialty engines (arxiv/nature analogues) "return results only for
//!   content hosted there".

use serde::Serialize;
use std::collections::{BTreeSet, HashMap};
use websift_corpus::lexicon::GENERAL_MEDICAL_TERMS;
use websift_web::{PageId, SimulatedWeb, Url};

/// A simulated search engine over an index of sampled pages.
pub struct SearchEngine {
    pub name: String,
    /// term -> hosts whose sampled pages mention it
    host_index: HashMap<String, Vec<u32>>,
    /// term -> concrete content pages mentioning it
    page_index: HashMap<String, Vec<u32>>,
    /// per-query result cap
    max_results: usize,
    /// total query budget (API rate limit)
    max_queries: usize,
    queries_issued: usize,
}

/// Error when the engine's API budget is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBudgetExhausted {
    pub engine: String,
}

impl std::fmt::Display for QueryBudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query budget exhausted for engine {}", self.engine)
    }
}

impl std::error::Error for QueryBudgetExhausted {}

impl SearchEngine {
    /// Builds an engine by indexing a deterministic sample of content
    /// pages. `host_filter` restricts the engine to specific hosts (the
    /// arxiv/nature behaviour).
    pub fn build(
        name: &str,
        web: &SimulatedWeb,
        sample_stride: usize,
        max_results: usize,
        max_queries: usize,
        host_filter: Option<&[&str]>,
    ) -> SearchEngine {
        assert!(sample_stride > 0);
        let mut host_index: HashMap<String, Vec<u32>> = HashMap::new();
        let mut page_index: HashMap<String, Vec<u32>> = HashMap::new();
        let graph = web.graph();
        for pid in (0..graph.num_pages()).step_by(sample_stride) {
            let page = graph.page(PageId(pid as u32));
            let host = &graph.hosts()[page.host as usize];
            if let Some(filter) = host_filter {
                if !filter.iter().any(|f| host.name.contains(f)) {
                    continue;
                }
            }
            let url = graph.url_of(PageId(pid as u32));
            let Some(doc) = web.gold_document(&url) else {
                continue;
            };
            let mut terms: BTreeSet<String> = BTreeSet::new();
            for (_, name) in &doc.gold.entities {
                terms.insert(name.clone());
            }
            // general medical terms actually present in the body
            let body_lower = doc.body.to_lowercase();
            for &g in GENERAL_MEDICAL_TERMS {
                if body_lower.contains(g) {
                    terms.insert(g.to_string());
                }
            }
            for term in terms {
                host_index.entry(term.clone()).or_default().push(page.host);
                page_index.entry(term).or_default().push(pid as u32);
            }
        }
        for v in host_index.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        SearchEngine {
            name: name.to_string(),
            host_index,
            page_index,
            max_results,
            max_queries,
            queries_issued: 0,
        }
    }

    pub fn queries_issued(&self) -> usize {
        self.queries_issued
    }

    /// Issues one query. Results: for every matching host, its
    /// authoritative front page first, then matching content pages, capped
    /// at `max_results`.
    pub fn query(
        &mut self,
        web: &SimulatedWeb,
        term: &str,
    ) -> Result<Vec<Url>, QueryBudgetExhausted> {
        if self.queries_issued >= self.max_queries {
            return Err(QueryBudgetExhausted {
                engine: self.name.clone(),
            });
        }
        self.queries_issued += 1;
        let term = term.to_lowercase();
        let graph = web.graph();
        let mut out: Vec<Url> = Vec::new();
        if let Some(hosts) = self.host_index.get(&term) {
            for &h in hosts {
                if out.len() >= self.max_results {
                    break;
                }
                let front = graph.hosts()[h as usize].page_range.0;
                out.push(graph.url_of(PageId(front)));
            }
        }
        if let Some(pages) = self.page_index.get(&term) {
            for &p in pages {
                if out.len() >= self.max_results {
                    break;
                }
                out.push(graph.url_of(PageId(p)));
            }
        }
        Ok(out)
    }
}

/// Builds the five default engines, mirroring §2.2.
pub fn default_engines(web: &SimulatedWeb) -> Vec<SearchEngine> {
    vec![
        SearchEngine::build("bing", web, 3, 50, 6_000, None),
        SearchEngine::build("google", web, 2, 50, 6_000, None),
        SearchEngine::build("arxiv", web, 1, 30, 4_000, Some(&["arxiv"])),
        SearchEngine::build("nature", web, 1, 30, 4_000, Some(&["naturejournal"])),
        SearchEngine::build("natureblogs", web, 1, 20, 4_000, Some(&["naturejournal", "blogger"])),
    ]
}

/// Outcome of a seed-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct SeedList {
    pub urls: Vec<Url>,
    pub queries_issued: usize,
    pub queries_rejected: usize,
}

/// Runs `queries` against all `engines`, merging and deduplicating results
/// into a seed list — "all search results from the different search engines
/// ... were merged to a single list of seed URLs".
pub fn generate_seeds(
    web: &SimulatedWeb,
    engines: &mut [SearchEngine],
    queries: &[String],
) -> SeedList {
    let mut seen: BTreeSet<Url> = BTreeSet::new();
    let mut issued = 0usize;
    let mut rejected = 0usize;
    for q in queries {
        for engine in engines.iter_mut() {
            match engine.query(web, q) {
                Ok(urls) => {
                    issued += 1;
                    seen.extend(urls);
                }
                Err(_) => rejected += 1,
            }
        }
    }
    SeedList {
        urls: seen.into_iter().collect(),
        queries_issued: issued,
        queries_rejected: rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_web::{WebGraph, WebGraphConfig};

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()))
    }

    #[test]
    fn general_terms_return_front_pages() {
        let w = web();
        let mut engine = SearchEngine::build("test", &w, 1, 40, 100, None);
        let results = engine.query(&w, "cancer").unwrap();
        assert!(!results.is_empty(), "'cancer' should match generated content");
        // the first results are host front pages
        assert_eq!(results[0].path(), "/");
    }

    #[test]
    fn specific_terms_return_fewer_results() {
        let w = web();
        let mut engine = SearchEngine::build("test", &w, 1, 40, 100, None);
        let general = engine.query(&w, "cancer").unwrap().len();
        // a specific generated gene symbol present in some relevant doc
        let lex = websift_corpus::Lexicon::generate(websift_corpus::LexiconScale::default_scale());
        let gene = lex.genes()[0].to_lowercase();
        let specific = engine.query(&w, &gene).unwrap().len();
        assert!(specific <= general, "specific {specific} vs general {general}");
    }

    #[test]
    fn query_budget_enforced() {
        let w = web();
        let mut engine = SearchEngine::build("test", &w, 4, 10, 2, None);
        assert!(engine.query(&w, "cancer").is_ok());
        assert!(engine.query(&w, "tumor").is_ok());
        assert!(matches!(engine.query(&w, "therapy"), Err(QueryBudgetExhausted { .. })));
    }

    #[test]
    fn host_filtered_engines_stay_on_their_hosts() {
        let w = web();
        let mut engine = SearchEngine::build("arxiv", &w, 1, 40, 100, Some(&["arxiv"]));
        for term in ["cancer", "therapy", "treatment"] {
            for url in engine.query(&w, term).unwrap() {
                assert!(url.host().contains("arxiv"), "{url}");
            }
        }
    }

    #[test]
    fn seed_generation_merges_and_dedups() {
        let w = web();
        let mut engines = default_engines(&w);
        let queries: Vec<String> = ["cancer", "tumor", "therapy", "treatment"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let seeds = generate_seeds(&w, &mut engines, &queries);
        assert!(!seeds.urls.is_empty());
        let mut sorted = seeds.urls.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.urls.len(), "deduplicated");
        assert_eq!(seeds.queries_issued, queries.len() * engines.len());
    }

    #[test]
    fn larger_query_sets_yield_more_seeds() {
        let w = web();
        let lex = websift_corpus::Lexicon::generate(websift_corpus::LexiconScale::default_scale());
        let small: Vec<String> = lex
            .search_terms(websift_corpus::SearchCategory::General, 5)
            .iter()
            .map(|s| s.to_lowercase())
            .collect();
        let large: Vec<String> = lex
            .search_terms(websift_corpus::SearchCategory::General, 30)
            .iter()
            .map(|s| s.to_lowercase())
            .chain(lex.diseases().iter().take(40).map(|s| s.to_lowercase()))
            .collect();
        let s1 = generate_seeds(&w, &mut default_engines(&w), &small);
        let s2 = generate_seeds(&w, &mut default_engines(&w), &large);
        assert!(s2.urls.len() >= s1.urls.len());
    }
}
