//! Crawl-side resilience surface: options, statistics, and the sealed
//! [`CrawlCheckpoint`] container.
//!
//! The mechanics (fault decisions, backoff math, breaker state, the byte
//! codec) live in `websift-resilience`; this module defines how the
//! focused crawler exposes them — what can be tuned per crawl, what is
//! reported afterwards, and the envelope around checkpoint bytes.

use serde::Serialize;
use websift_resilience::codec;
use websift_resilience::{BackoffPolicy, CodecError, FaultPlan, Reader, Snapshot, Writer};

/// Frame tag + version for crawl checkpoints.
const CHECKPOINT_TAG: [u8; 4] = *b"WSCK";
const CHECKPOINT_VERSION: u16 = 1;

/// Per-crawl resilience configuration.
///
/// The defaults are behaviour-preserving: no fault plan, so no failures
/// are injected; the retry/breaker machinery only reacts to retryable
/// failures, which do not occur without injection; and no checkpoints
/// are taken. A plain [`crate::FocusedCrawler::crawl`] therefore runs
/// exactly as it did before this module existed.
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// Deterministic fault schedule; `None` disables injection.
    pub faults: Option<FaultPlan>,
    /// Backoff for retryable fetch failures.
    pub backoff: BackoffPolicy,
    /// Retries each host may consume over the whole crawl.
    pub retry_budget_per_host: u32,
    /// Consecutive retryable failures before a host's circuit opens.
    pub breaker_threshold: u32,
    /// Quarantine length (simulated ms) once a circuit opens.
    pub breaker_cooldown_ms: u64,
    /// Take a checkpoint every N rounds; `None` disables checkpointing.
    pub checkpoint_every_rounds: Option<u64>,
    /// Stop (simulating a kill) once this many rounds have run.
    pub stop_after_rounds: Option<u64>,
}

impl Default for ResilienceOptions {
    fn default() -> ResilienceOptions {
        ResilienceOptions {
            faults: None,
            backoff: BackoffPolicy::default(),
            retry_budget_per_host: 8,
            breaker_threshold: 3,
            breaker_cooldown_ms: 60_000,
            checkpoint_every_rounds: None,
            stop_after_rounds: None,
        }
    }
}

impl ResilienceOptions {
    /// Options for a fault-injection run: uniform fault rate across all
    /// kinds, checkpointing every `checkpoint_every` rounds.
    pub fn injected(seed: u64, rate: f64, checkpoint_every: u64) -> ResilienceOptions {
        ResilienceOptions {
            faults: Some(FaultPlan::uniform(seed, rate)),
            checkpoint_every_rounds: Some(checkpoint_every),
            ..ResilienceOptions::default()
        }
    }
}

/// Resilience counters accumulated during a crawl (part of
/// [`crate::CrawlReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ResilienceStats {
    /// Retryable failures that were scheduled for a backoff retry.
    pub retries_scheduled: u64,
    /// Retryable failures dropped because the URL ran out of attempts
    /// or its host ran out of budget.
    pub retries_exhausted: u64,
    /// Fetches deferred because the host's circuit was open.
    pub breaker_deferred: u64,
    /// Times any host's circuit tripped open.
    pub breaker_trips: u64,
    /// Transient fetch failures injected by the fault plan.
    pub injected_transient: u64,
    /// Host batches lost to (injected or real) worker panics.
    pub worker_panics: u64,
    /// Checkpoints successfully taken.
    pub checkpoints_taken: u64,
    /// Checkpoint writes lost to injected store-write faults.
    pub store_write_failures: u64,
    /// Simulated ms spent idle waiting for backoff/quarantine expiry.
    pub recovery_wait_ms: u64,
}

impl Snapshot for ResilienceStats {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.retries_scheduled);
        w.u64(self.retries_exhausted);
        w.u64(self.breaker_deferred);
        w.u64(self.breaker_trips);
        w.u64(self.injected_transient);
        w.u64(self.worker_panics);
        w.u64(self.checkpoints_taken);
        w.u64(self.store_write_failures);
        w.u64(self.recovery_wait_ms);
    }

    fn decode(r: &mut Reader<'_>) -> Result<ResilienceStats, CodecError> {
        Ok(ResilienceStats {
            retries_scheduled: r.u64()?,
            retries_exhausted: r.u64()?,
            breaker_deferred: r.u64()?,
            breaker_trips: r.u64()?,
            injected_transient: r.u64()?,
            worker_panics: r.u64()?,
            checkpoints_taken: r.u64()?,
            store_write_failures: r.u64()?,
            recovery_wait_ms: r.u64()?,
        })
    }
}

/// A sealed crawl checkpoint: the full crawler + report + retry state at
/// a segment (round) boundary, framed with a magic tag, version, and
/// checksum so corrupt or truncated snapshots are rejected on load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlCheckpoint {
    frame: Vec<u8>,
    /// Round index at which this checkpoint was taken.
    pub round: u64,
}

impl CrawlCheckpoint {
    /// Seals a raw encoded payload (used by the crawl loop).
    pub(crate) fn seal(round: u64, payload: &[u8]) -> CrawlCheckpoint {
        CrawlCheckpoint {
            frame: codec::seal(CHECKPOINT_TAG, CHECKPOINT_VERSION, payload),
            round,
        }
    }

    /// Verifies the frame and returns the payload (used on resume).
    pub(crate) fn payload(&self) -> Result<&[u8], CodecError> {
        codec::open(CHECKPOINT_TAG, CHECKPOINT_VERSION, &self.frame)
    }

    /// The serialized frame — what a real deployment would write to
    /// durable storage.
    pub fn as_bytes(&self) -> &[u8] {
        &self.frame
    }

    /// Rehydrates a checkpoint from stored bytes, verifying tag,
    /// version, and checksum.
    pub fn from_bytes(round: u64, bytes: Vec<u8>) -> Result<CrawlCheckpoint, CodecError> {
        let ckpt = CrawlCheckpoint { frame: bytes, round };
        ckpt.payload()?;
        Ok(ckpt)
    }

    /// Content digest of the payload, for cheap state comparison.
    pub fn digest(&self) -> u64 {
        codec::digest(&self.frame)
    }

    pub fn size_bytes(&self) -> usize {
        self.frame.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let ckpt = CrawlCheckpoint::seal(3, b"state bytes");
        assert_eq!(ckpt.round, 3);
        assert!(ckpt.payload().is_ok());
        let mut bytes = ckpt.as_bytes().to_vec();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            CrawlCheckpoint::from_bytes(3, bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn default_options_are_inert() {
        let opts = ResilienceOptions::default();
        assert!(opts.faults.is_none());
        assert!(opts.checkpoint_every_rounds.is_none());
        assert!(opts.stop_after_rounds.is_none());
    }
}
