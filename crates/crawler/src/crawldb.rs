//! CrawlDB: the crawl frontier and URL status store.
//!
//! Mirrors Nutch's CrawlDB (Fig. 1): the injector seeds it, fetchers pull
//! host-partitioned fetch lists from it ("the sizes of host-specific fetch
//! lists was limited to 500 to prevent threads from blocking each other"),
//! and the parser feeds newly discovered outlinks back. It also carries the
//! spider-trap guards: per-host page caps and a URL path-depth limit.

use serde::Serialize;
use std::collections::{HashMap, HashSet, VecDeque};
use websift_resilience::{CodecError, Reader, Snapshot, Writer};
use websift_web::Url;

/// Lifecycle state of a known URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum UrlStatus {
    /// Discovered, waiting in the frontier.
    Unfetched,
    /// Downloaded and accepted into a corpus.
    Fetched,
    /// Downloaded but rejected (filter chain, classifier, or parse error).
    Rejected,
    /// Fetch failed.
    Failed,
}

/// An entry in the frontier: the URL plus how many consecutive
/// irrelevant-classified pages lie between it and the nearest relevant
/// ancestor (the paper's "not stopping ... but after n steps" knob).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierEntry {
    pub url: Url,
    pub irrelevant_steps: u32,
}

/// CrawlDB configuration (trap guards).
#[derive(Debug, Clone, Copy)]
pub struct CrawlDbConfig {
    /// Hard cap of pages admitted per host (spider-trap guard).
    pub max_pages_per_host: usize,
    /// Maximum URL path depth (segments) admitted (spider-trap guard).
    pub max_path_depth: usize,
}

impl Default for CrawlDbConfig {
    fn default() -> CrawlDbConfig {
        CrawlDbConfig {
            max_pages_per_host: 800,
            max_path_depth: 8,
        }
    }
}

/// The crawl frontier + status store.
#[derive(Debug, Default)]
pub struct CrawlDb {
    config: CrawlDbConfigInner,
    status: HashMap<Url, UrlStatus>,
    frontier: HashMap<String, VecDeque<FrontierEntry>>,
    /// Hosts in FIFO discovery order, for fair fetch-list assembly.
    host_order: Vec<String>,
    host_seen: HashSet<String>,
    host_admitted: HashMap<String, usize>,
    trap_rejected: u64,
}

#[derive(Debug, Clone, Copy)]
struct CrawlDbConfigInner {
    max_pages_per_host: usize,
    max_path_depth: usize,
}

impl Default for CrawlDbConfigInner {
    fn default() -> Self {
        let c = CrawlDbConfig::default();
        CrawlDbConfigInner {
            max_pages_per_host: c.max_pages_per_host,
            max_path_depth: c.max_path_depth,
        }
    }
}

impl CrawlDb {
    pub fn new(config: CrawlDbConfig) -> CrawlDb {
        CrawlDb {
            config: CrawlDbConfigInner {
                max_pages_per_host: config.max_pages_per_host,
                max_path_depth: config.max_path_depth,
            },
            ..CrawlDb::default()
        }
    }

    /// Adds URLs to the frontier (the injector, and outlink feedback).
    /// Duplicates and trap-guarded URLs are dropped.
    pub fn add(&mut self, urls: impl IntoIterator<Item = FrontierEntry>) {
        for entry in urls {
            if self.status.contains_key(&entry.url) {
                continue;
            }
            let depth = entry.url.path().split('/').filter(|s| !s.is_empty()).count();
            if depth > self.config.max_path_depth {
                self.trap_rejected += 1;
                continue;
            }
            let host = entry.url.host().to_string();
            let admitted = self.host_admitted.entry(host.clone()).or_insert(0);
            if *admitted >= self.config.max_pages_per_host {
                self.trap_rejected += 1;
                continue;
            }
            *admitted += 1;
            self.status.insert(entry.url.clone(), UrlStatus::Unfetched);
            if self.host_seen.insert(host.clone()) {
                self.host_order.push(host.clone());
            }
            self.frontier.entry(host).or_default().push_back(entry);
        }
    }

    /// Convenience injector for seed URLs.
    pub fn inject(&mut self, seeds: impl IntoIterator<Item = Url>) {
        self.add(seeds.into_iter().map(|url| FrontierEntry {
            url,
            irrelevant_steps: 0,
        }));
    }

    /// Assembles the next fetch list: up to `per_host` URLs from each host
    /// with pending work, up to `total` overall. Hosts rotate fairly in
    /// discovery order.
    pub fn next_fetch_list(&mut self, per_host: usize, total: usize) -> Vec<FrontierEntry> {
        let mut list = Vec::new();
        for host in &self.host_order {
            if list.len() >= total {
                break;
            }
            if let Some(queue) = self.frontier.get_mut(host) {
                let take = per_host.min(total - list.len());
                for _ in 0..take {
                    match queue.pop_front() {
                        Some(e) => list.push(e),
                        None => break,
                    }
                }
            }
        }
        list
    }

    /// Records the outcome of a fetched URL.
    pub fn mark(&mut self, url: &Url, status: UrlStatus) {
        self.status.insert(url.clone(), status);
    }

    pub fn status_of(&self, url: &Url) -> Option<UrlStatus> {
        self.status.get(url).copied()
    }

    /// Number of URLs waiting in the frontier.
    pub fn frontier_size(&self) -> usize {
        self.frontier.values().map(VecDeque::len).sum()
    }

    pub fn is_exhausted(&self) -> bool {
        self.frontier_size() == 0
    }

    /// URLs rejected by the trap guards.
    pub fn trap_rejected(&self) -> u64 {
        self.trap_rejected
    }

    /// Total known URLs.
    pub fn known(&self) -> usize {
        self.status.len()
    }
}

impl Snapshot for UrlStatus {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            UrlStatus::Unfetched => 0,
            UrlStatus::Fetched => 1,
            UrlStatus::Rejected => 2,
            UrlStatus::Failed => 3,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<UrlStatus, CodecError> {
        match r.u8()? {
            0 => Ok(UrlStatus::Unfetched),
            1 => Ok(UrlStatus::Fetched),
            2 => Ok(UrlStatus::Rejected),
            3 => Ok(UrlStatus::Failed),
            tag => Err(CodecError::BadTag { what: "UrlStatus", tag }),
        }
    }
}

impl Snapshot for FrontierEntry {
    fn encode(&self, w: &mut Writer) {
        self.url.encode(w);
        w.u32(self.irrelevant_steps);
    }

    fn decode(r: &mut Reader<'_>) -> Result<FrontierEntry, CodecError> {
        Ok(FrontierEntry { url: Snapshot::decode(r)?, irrelevant_steps: r.u32()? })
    }
}

impl CrawlDb {
    /// Serializes the full store — status map, per-host frontier queues,
    /// host rotation order, admission counters, trap-guard config and
    /// counters — for a crawl checkpoint. Byte-deterministic: equal
    /// states encode to equal bytes.
    pub fn encode_snapshot(&self, w: &mut Writer) {
        w.usize(self.config.max_pages_per_host);
        w.usize(self.config.max_path_depth);
        self.status.encode(w);
        self.frontier.encode(w);
        self.host_order.encode(w);
        self.host_seen.encode(w);
        self.host_admitted.encode(w);
        w.u64(self.trap_rejected);
    }

    /// Inverse of [`CrawlDb::encode_snapshot`].
    pub fn decode_snapshot(r: &mut Reader<'_>) -> Result<CrawlDb, CodecError> {
        Ok(CrawlDb {
            config: CrawlDbConfigInner {
                max_pages_per_host: r.usize()?,
                max_path_depth: r.usize()?,
            },
            status: Snapshot::decode(r)?,
            frontier: Snapshot::decode(r)?,
            host_order: Snapshot::decode(r)?,
            host_seen: Snapshot::decode(r)?,
            host_admitted: Snapshot::decode(r)?,
            trap_rejected: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(host: &str, path: &str) -> Url {
        Url::new(host, path)
    }

    #[test]
    fn snapshot_roundtrip_preserves_frontier_and_rotation() {
        let mut db = CrawlDb::new(CrawlDbConfig {
            max_pages_per_host: 7,
            max_path_depth: 4,
        });
        db.inject([
            u("b.example", "/1"),
            u("a.example", "/1"),
            u("a.example", "/2"),
            u("a.example", "/too/deep/for/the/guard/x"),
        ]);
        db.mark(&u("a.example", "/1"), UrlStatus::Fetched);

        let mut w = Writer::new();
        db.encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut restored = CrawlDb::decode_snapshot(&mut Reader::new(&bytes)).unwrap();

        assert_eq!(restored.frontier_size(), db.frontier_size());
        assert_eq!(restored.known(), db.known());
        assert_eq!(restored.trap_rejected(), db.trap_rejected());
        assert_eq!(restored.status_of(&u("a.example", "/1")), Some(UrlStatus::Fetched));
        // fetch-list assembly order (host rotation) must survive
        let a = db.next_fetch_list(1, 10);
        let b = restored.next_fetch_list(1, 10);
        assert_eq!(a, b);
        // re-encoding the restored state is byte-identical
        let mut w2 = Writer::new();
        // drain-order calls above mutated both equally; snapshot again
        db.encode_snapshot(&mut w2);
        let mut w3 = Writer::new();
        restored.encode_snapshot(&mut w3);
        assert_eq!(w2.into_bytes(), w3.into_bytes());
    }

    #[test]
    fn inject_and_fetch_list() {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        db.inject([u("a.example", "/1"), u("a.example", "/2"), u("b.example", "/1")]);
        assert_eq!(db.frontier_size(), 3);
        let list = db.next_fetch_list(500, 100);
        assert_eq!(list.len(), 3);
        assert!(db.is_exhausted());
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        db.inject([u("a.example", "/1"), u("a.example", "/1")]);
        assert_eq!(db.frontier_size(), 1);
        db.inject([u("a.example", "/1")]);
        assert_eq!(db.frontier_size(), 1);
    }

    #[test]
    fn per_host_fetch_list_cap() {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        db.inject((0..600).map(|i| u("big.example", &format!("/p{i}"))));
        let list = db.next_fetch_list(500, 10_000);
        assert_eq!(list.len(), 500, "host-specific fetch lists limited to 500");
        assert_eq!(db.frontier_size(), 100);
    }

    #[test]
    fn path_depth_trap_guard() {
        let mut db = CrawlDb::new(CrawlDbConfig {
            max_path_depth: 3,
            ..CrawlDbConfig::default()
        });
        db.inject([u("t.example", "/a/b/c/d/e/f/g/h/i")]);
        assert_eq!(db.frontier_size(), 0);
        assert_eq!(db.trap_rejected(), 1);
    }

    #[test]
    fn per_host_admission_cap() {
        let mut db = CrawlDb::new(CrawlDbConfig {
            max_pages_per_host: 5,
            ..CrawlDbConfig::default()
        });
        db.inject((0..10).map(|i| u("t.example", &format!("/p{i}"))));
        assert_eq!(db.frontier_size(), 5);
        assert_eq!(db.trap_rejected(), 5);
    }

    #[test]
    fn status_transitions() {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        let url = u("a.example", "/1");
        db.inject([url.clone()]);
        assert_eq!(db.status_of(&url), Some(UrlStatus::Unfetched));
        let list = db.next_fetch_list(10, 10);
        assert_eq!(list.len(), 1);
        db.mark(&url, UrlStatus::Fetched);
        assert_eq!(db.status_of(&url), Some(UrlStatus::Fetched));
        // re-adding a fetched URL is a no-op
        db.inject([url.clone()]);
        assert_eq!(db.frontier_size(), 0);
    }

    #[test]
    fn fetch_list_rotates_hosts_fairly() {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        db.inject([u("a.example", "/1"), u("b.example", "/1"), u("a.example", "/2")]);
        let list = db.next_fetch_list(1, 10);
        let hosts: Vec<&str> = list.iter().map(|e| e.url.host()).collect();
        assert_eq!(hosts, vec!["a.example", "b.example"]);
    }

    #[test]
    fn irrelevant_steps_carried() {
        let mut db = CrawlDb::new(CrawlDbConfig::default());
        db.add([FrontierEntry {
            url: u("a.example", "/x"),
            irrelevant_steps: 2,
        }]);
        let list = db.next_fetch_list(10, 10);
        assert_eq!(list[0].irrelevant_steps, 2);
    }
}
