//! Boilerplate detection using shallow text features (Boilerpipe-style).
//!
//! The paper uses Kohlschütter et al.'s approach: segment a page into
//! blocks and classify each block as content or boilerplate from *shallow
//! text features* — principally word count, link density, and text
//! density. Two empirical properties of that tool matter for the
//! reproduction and are reproduced here:
//!
//! - measured quality around "precision of 90% at a recall of 82%" on a
//!   gold set and "98% at a recall of 72%" on crawled pages, with "tables
//!   and lists, which often contain valuable facts, ... not recognized
//!   properly in many cases" (short, link-adjacent blocks fall below the
//!   word-count threshold);
//! - fragility on broken markup ("highly sensitive to markup errors, often
//!   resulting in crashes or empty results") — pages whose repair damage
//!   exceeds the tolerance are rejected as [`Untranscodable`].

use crate::parser::{repair_markup, HtmlToken, Untranscodable, BLOCK_TAGS};
use serde::Serialize;

/// One segmented block with its shallow features.
#[derive(Debug, Clone, Serialize)]
pub struct Block {
    pub text: String,
    pub words: usize,
    pub link_words: usize,
    pub tag: String,
}

impl Block {
    /// Fraction of words that sit inside anchor elements.
    pub fn link_density(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.link_words as f64 / self.words as f64
        }
    }
}

/// Detector thresholds.
#[derive(Debug, Clone, Copy)]
pub struct BoilerplateConfig {
    /// Minimum words for a block to qualify as content on its own.
    pub min_words: usize,
    /// Maximum link density of a content block.
    pub max_link_density: f64,
    /// Markup damage tolerance passed to the repair stage.
    pub max_markup_damage: f64,
}

impl Default for BoilerplateConfig {
    fn default() -> BoilerplateConfig {
        BoilerplateConfig {
            min_words: 10,
            max_link_density: 0.33,
            max_markup_damage: 0.45,
        }
    }
}

/// The boilerplate detector.
#[derive(Debug, Clone, Default)]
pub struct BoilerplateDetector {
    config: BoilerplateConfig,
}

impl BoilerplateDetector {
    pub fn new(config: BoilerplateConfig) -> BoilerplateDetector {
        BoilerplateDetector { config }
    }

    /// Segments repaired markup into blocks with features.
    pub fn segment(&self, html: &str) -> Result<Vec<Block>, Untranscodable> {
        let tokens = repair_markup(html, self.config.max_markup_damage)?;
        let mut blocks: Vec<Block> = Vec::new();
        let mut current = Block {
            text: String::new(),
            words: 0,
            link_words: 0,
            tag: "body".to_string(),
        };
        let mut anchor_depth = 0usize;
        let mut tag_stack: Vec<String> = vec!["body".to_string()];

        let flush = |blocks: &mut Vec<Block>, current: &mut Block, next_tag: &str| {
            if !current.text.trim().is_empty() {
                blocks.push(std::mem::replace(
                    current,
                    Block {
                        text: String::new(),
                        words: 0,
                        link_words: 0,
                        tag: next_tag.to_string(),
                    },
                ));
            } else {
                current.tag = next_tag.to_string();
            }
        };

        for token in tokens {
            match token {
                HtmlToken::Open { name, .. } => {
                    if name == "a" {
                        anchor_depth += 1;
                    }
                    if BLOCK_TAGS.contains(&name.as_str()) {
                        flush(&mut blocks, &mut current, &name);
                        tag_stack.push(name);
                    }
                }
                HtmlToken::Close { name } => {
                    if name == "a" {
                        anchor_depth = anchor_depth.saturating_sub(1);
                    }
                    if BLOCK_TAGS.contains(&name.as_str()) {
                        let parent = if tag_stack.len() > 1 {
                            tag_stack.pop();
                            tag_stack.last().cloned().unwrap_or_else(|| "body".into())
                        } else {
                            "body".to_string()
                        };
                        flush(&mut blocks, &mut current, &parent);
                    }
                }
                HtmlToken::Text(t) => {
                    let words = t.split_whitespace().count();
                    current.words += words;
                    if anchor_depth > 0 {
                        current.link_words += words;
                    }
                    if !current.text.is_empty() {
                        current.text.push(' ');
                    }
                    current.text.push_str(t.trim());
                }
            }
        }
        if !current.text.trim().is_empty() {
            blocks.push(current);
        }
        Ok(blocks)
    }

    /// Classifies one block as content (true) or boilerplate (false).
    pub fn is_content(&self, block: &Block, prev_content: bool) -> bool {
        if block.link_density() > self.config.max_link_density {
            return false;
        }
        if block.words >= self.config.min_words {
            return true;
        }
        // Short low-link paragraph blocks directly following content are
        // kept (continuation heuristic from the original algorithm); it
        // only applies to running-text tags, not to divs/cells, so footer
        // chrome after the content area stays boilerplate.
        prev_content && block.tag == "p" && block.words >= self.config.min_words / 2
    }

    /// Extracts the net text of a page.
    ///
    /// Errors on untranscodable markup; may legitimately return an empty
    /// string on link-only pages (both failure modes the paper observed).
    pub fn extract(&self, html: &str) -> Result<String, Untranscodable> {
        let blocks = self.segment(html)?;
        let mut out = String::new();
        let mut prev_content = false;
        for block in &blocks {
            let content = self.is_content(block, prev_content);
            if content {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&block.text);
            }
            prev_content = content;
        }
        Ok(out)
    }
}

/// Word-level precision/recall of detected net text against gold net text,
/// the measure the paper's boilerplate figures use ("based on the amount of
/// net text being correctly identified").
pub fn evaluate_extraction(detected: &str, gold: &str) -> (f64, f64) {
    use std::collections::HashMap;
    let bag = |s: &str| {
        let mut m: HashMap<String, u64> = HashMap::new();
        for w in s.split_whitespace() {
            *m.entry(w.to_lowercase()).or_insert(0) += 1;
        }
        m
    };
    let d = bag(detected);
    let g = bag(gold);
    let dn: u64 = d.values().sum();
    let gn: u64 = g.values().sum();
    let mut overlap = 0u64;
    for (w, &c) in &d {
        overlap += c.min(*g.get(w).unwrap_or(&0));
    }
    let precision = if dn == 0 { 0.0 } else { overlap as f64 / dn as f64 };
    let recall = if gn == 0 { 0.0 } else { overlap as f64 / gn as f64 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html><body>
<div class="nav"><ul>
<li><a href="/a">Home</a></li><li><a href="/b">About</a></li>
<li><a href="/c">Contact</a></li><li><a href="/d">Products</a></li>
</ul></div>
<div id="content">
<p>The clinical study shows that the new drug reduces chronic pain in most
patients over a period of twelve weeks of treatment.</p>
<p>Researchers measured significant improvements in the treated group
compared with the placebo group across all endpoints.</p>
</div>
<div class="footer">Copyright 2013 All rights reserved</div>
</body></html>"#;

    #[test]
    fn extracts_content_drops_nav_and_footer() {
        let det = BoilerplateDetector::default();
        let text = det.extract(PAGE).unwrap();
        assert!(text.contains("clinical study"));
        assert!(text.contains("placebo group"));
        assert!(!text.contains("Home"));
        assert!(!text.contains("Copyright"));
    }

    #[test]
    fn link_dense_blocks_are_boilerplate() {
        let det = BoilerplateDetector::default();
        let blocks = det.segment(PAGE).unwrap();
        let nav = blocks.iter().find(|b| b.text.contains("Home")).unwrap();
        assert!(nav.link_density() > 0.9);
        assert!(!det.is_content(nav, false));
    }

    #[test]
    fn tables_and_lists_are_missed() {
        // The documented recall loss: short list items with facts.
        let html = "<body><p>Intro paragraph with enough words to count as \
                    real page content for the detector here.</p>\
                    <ul><li>aspirin 100 mg</li><li>ibuprofen 200 mg</li></ul></body>";
        let det = BoilerplateDetector::default();
        let text = det.extract(html).unwrap();
        assert!(text.contains("Intro paragraph"));
        assert!(!text.contains("ibuprofen"), "list items fall below the word threshold");
    }

    #[test]
    fn untranscodable_markup_errors() {
        let det = BoilerplateDetector::default();
        let err = det.extract("</p></div></b></i></p></div></span>").unwrap_err();
        assert!(err.reason.contains("repairs"));
    }

    #[test]
    fn link_only_page_yields_empty_net_text() {
        let html = r#"<body><ul><li><a href="/1">one</a></li><li><a href="/2">two</a></li></ul></body>"#;
        let det = BoilerplateDetector::default();
        assert_eq!(det.extract(html).unwrap(), "");
    }

    #[test]
    fn evaluation_metrics() {
        let (p, r) = evaluate_extraction("a b c", "a b c d");
        assert!((p - 1.0).abs() < 1e-12);
        assert!((r - 0.75).abs() < 1e-12);
        let (p, r) = evaluate_extraction("", "gold text");
        assert_eq!((p, r), (0.0, 0.0));
        let (p, _r) = evaluate_extraction("x y", "");
        assert_eq!(p, 0.0);
    }

    #[test]
    fn quality_on_generated_pages() {
        // End-to-end check against the corpus generator's gold net text:
        // precision should be high, recall decent (boilerplate leaks little,
        // some content lost).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = websift_corpus::HtmlConfig {
            p_defective: 0.6,
            p_severe: 0.0, // severe pages error out; measured separately
            boilerplate_blocks: 6,
        };
        let det = BoilerplateDetector::default();
        let mut ps = Vec::new();
        let mut rs = Vec::new();
        for i in 0..40 {
            let paras: Vec<String> = (0..6)
                .map(|k| {
                    format!(
                        "Sentence number {k} of page {i} talks about treatment outcomes \
                         and measured responses in the patient group over several weeks."
                    )
                })
                .collect();
            let page = websift_corpus::wrap_page("T", &paras, &[], &cfg, &mut rng);
            let detected = det.extract(&page.html).unwrap();
            let (p, r) = evaluate_extraction(&detected, &page.net_text);
            ps.push(p);
            rs.push(r);
        }
        // The generator deliberately plants text-dense teaser boilerplate
        // (precision loss) and list-formatted content (recall loss), so
        // these bounds are looser than a clean-page detector would give —
        // matching the paper's 0.90/0.82 regime rather than perfection.
        let mp = ps.iter().sum::<f64>() / ps.len() as f64;
        let mr = rs.iter().sum::<f64>() / rs.len() as f64;
        assert!(mp > 0.7, "mean precision {mp}");
        assert!(mr > 0.6, "mean recall {mr}");
        assert!(mp < 1.0 && mr < 1.0, "quality should not be perfect");
    }
}
