//! The document pre-selection filter chain: MIME type → length → language.
//!
//! "Document pre-selection was very effective: MIME-type filtering
//! decreased the number of documents to be analyzed by 9.5%, language
//! filtering by 14%, and document length filtering by 17%." The chain below
//! applies the same three filters in a configurable order and keeps the
//! per-filter counters those percentages are computed from.

use serde::Serialize;
use websift_text::LanguageId;
use websift_web::mime::{sniff_mime, MimeType};

/// Why a document was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RejectReason {
    Mime(MimeType),
    TooShort,
    TooLong,
    NonEnglish,
}

/// Filter chain configuration.
#[derive(Debug, Clone, Copy)]
pub struct FilterConfig {
    /// Minimum net-text length in characters.
    pub min_chars: usize,
    /// Maximum raw length in bytes ("web pages are first filtered to
    /// exclude extremely long documents").
    pub max_bytes: usize,
}

impl Default for FilterConfig {
    fn default() -> FilterConfig {
        FilterConfig {
            min_chars: 400,
            max_bytes: 4_000_000,
        }
    }
}

/// Per-filter rejection counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FilterStats {
    pub seen: u64,
    pub mime_rejected: u64,
    pub length_rejected: u64,
    pub language_rejected: u64,
    pub passed: u64,
}

impl FilterStats {
    pub fn merge(&mut self, other: &FilterStats) {
        self.seen += other.seen;
        self.mime_rejected += other.mime_rejected;
        self.length_rejected += other.length_rejected;
        self.language_rejected += other.language_rejected;
        self.passed += other.passed;
    }

    /// Rejection fractions (mime, length, language) of everything seen —
    /// the paper's 9.5 % / 17 % / 14 % figures.
    pub fn reduction_fractions(&self) -> (f64, f64, f64) {
        let n = self.seen.max(1) as f64;
        (
            self.mime_rejected as f64 / n,
            self.length_rejected as f64 / n,
            self.language_rejected as f64 / n,
        )
    }
}

impl websift_resilience::Snapshot for FilterStats {
    fn encode(&self, w: &mut websift_resilience::Writer) {
        w.u64(self.seen);
        w.u64(self.mime_rejected);
        w.u64(self.length_rejected);
        w.u64(self.language_rejected);
        w.u64(self.passed);
    }

    fn decode(
        r: &mut websift_resilience::Reader<'_>,
    ) -> Result<FilterStats, websift_resilience::CodecError> {
        Ok(FilterStats {
            seen: r.u64()?,
            mime_rejected: r.u64()?,
            length_rejected: r.u64()?,
            language_rejected: r.u64()?,
            passed: r.u64()?,
        })
    }
}

/// The filter chain. Stateless apart from counters.
#[derive(Debug, Default)]
pub struct FilterChain {
    config: FilterConfig,
    langid: LanguageId,
    stats: FilterStats,
}

impl FilterChain {
    pub fn new(config: FilterConfig) -> FilterChain {
        FilterChain {
            config,
            langid: LanguageId::new(),
            stats: FilterStats::default(),
        }
    }

    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Restores counters from a crawl checkpoint, so a resumed crawl's
    /// filter statistics match an uninterrupted run's.
    pub fn restore_stats(&mut self, stats: FilterStats) {
        self.stats = stats;
    }

    /// Stage 1 (runs *before* boilerplate extraction, as in Fig. 1): MIME
    /// sniffing plus the raw-size bound. Counts the page as seen.
    pub fn check_mime(&mut self, path: &str, body: &[u8]) -> Result<(), RejectReason> {
        self.stats.seen += 1;
        let mime = sniff_mime(path, body);
        if !mime.is_textual() {
            self.stats.mime_rejected += 1;
            return Err(RejectReason::Mime(mime));
        }
        if body.len() > self.config.max_bytes {
            self.stats.length_rejected += 1;
            return Err(RejectReason::TooLong);
        }
        Ok(())
    }

    /// Stage 2 (after boilerplate extraction): net-text length and
    /// language. Only call for pages that passed [`FilterChain::check_mime`].
    pub fn check_text(&mut self, net_text: &str) -> Result<(), RejectReason> {
        if net_text.chars().count() < self.config.min_chars {
            self.stats.length_rejected += 1;
            return Err(RejectReason::TooShort);
        }
        if !self.langid.is_english(net_text) {
            self.stats.language_rejected += 1;
            return Err(RejectReason::NonEnglish);
        }
        self.stats.passed += 1;
        Ok(())
    }

    /// Applies the whole chain in one call (convenience for callers that
    /// already have the net text).
    pub fn check(&mut self, path: &str, body: &[u8], net_text: &str) -> Result<(), RejectReason> {
        self.check_mime(path, body)?;
        self.check_text(net_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGLISH: &str = "This is a long enough English paragraph about the treatment of \
        disease in patients with the new drug, which the study showed to be effective for \
        most of the people who took part in the trial over several weeks of treatment. \
        The researchers measured the outcomes carefully and compared the results between \
        the treated group and the control group in the hospital over the whole period. \
        Further work will be needed to confirm these findings in larger groups of patients \
        across many hospitals and countries before the treatment can be recommended widely.";

    fn chain() -> FilterChain {
        FilterChain::new(FilterConfig::default())
    }

    #[test]
    fn accepts_normal_english_page() {
        let mut c = chain();
        let html = format!("<html><body><p>{ENGLISH}</p></body></html>");
        assert!(c.check("/x.html", html.as_bytes(), ENGLISH).is_ok());
        assert_eq!(c.stats().passed, 1);
    }

    #[test]
    fn rejects_binary_payload() {
        let mut c = chain();
        let mut pdf = b"%PDF-1.4".to_vec();
        pdf.extend([0u8; 100]);
        assert_eq!(
            c.check("/x.html", &pdf, ""),
            Err(RejectReason::Mime(MimeType::Pdf))
        );
        assert_eq!(c.stats().mime_rejected, 1);
    }

    #[test]
    fn rejects_short_and_huge_documents() {
        let mut c = chain();
        assert_eq!(
            c.check("/x.html", b"<html><body>hi</body></html>", "hi"),
            Err(RejectReason::TooShort)
        );
        let huge = vec![b'a'; 5_000_000];
        assert_eq!(c.check("/y.html", &huge, ENGLISH), Err(RejectReason::TooLong));
        assert_eq!(c.stats().length_rejected, 2);
    }

    #[test]
    fn rejects_non_english() {
        let mut c = chain();
        let german = "Die Behandlung der Krankheit mit dem neuen Medikament war bei den \
            meisten Patienten in der Studie wirksam und die Forscher haben die Ergebnisse \
            sorgfältig gemessen und zwischen den Gruppen verglichen über den gesamten \
            Zeitraum der Untersuchung in der Klinik und darüber hinaus in weiteren Studien \
            mit vielen weiteren Patienten aus unterschiedlichen Ländern und Regionen der Welt \
            um die Ergebnisse dieser wichtigen Untersuchung unabhängig bestätigen zu können";
        let html = format!("<html><body><p>{german}</p></body></html>");
        assert_eq!(
            c.check("/x.html", html.as_bytes(), german),
            Err(RejectReason::NonEnglish)
        );
    }

    #[test]
    fn counters_accumulate_and_fractions_divide_by_seen() {
        let mut c = chain();
        let html = format!("<html><body><p>{ENGLISH}</p></body></html>");
        let _ = c.check("/a.html", html.as_bytes(), ENGLISH);
        let _ = c.check("/b.html", b"%PDF-1.4 xx", "");
        let _ = c.check("/c.html", b"<html><body>x</body></html>", "x");
        let s = c.stats();
        assert_eq!(s.seen, 3);
        let (m, l, _g) = s.reduction_fractions();
        assert!((m - 1.0 / 3.0).abs() < 1e-12);
        assert!((l - 1.0 / 3.0).abs() < 1e-12);
        let mut merged = FilterStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.seen, 6);
    }
}
