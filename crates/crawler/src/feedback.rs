//! IE-informed crawling: the consolidated crawl/analysis process of §5.
//!
//! "The result of the IE pipeline could actually be a valuable input for
//! the classifier during a crawl, as the occurrence of gene names or
//! disease names are strong indicators for biomedical content. We believe
//! it would be a worthwhile undertaking to research systems that would
//! allow specifying crawling strategies, classification, and
//! domain-specific IE in a single framework." — the paper leaves this as
//! future work; this module implements it.
//!
//! [`IeFeedback`] runs (cheap, dictionary-based) entity taggers on every
//! crawled page's net text and converts the mention density into a
//! log-odds adjustment of the bag-of-words classifier's verdict. When the
//! adjusted verdict is confident, the page is also fed back into the
//! classifier's incremental Naive-Bayes update — the crawl *teaches its
//! own focus model* as it runs.

use std::sync::Arc;
use websift_ner::DictionaryTagger;

/// Configuration of the IE feedback loop.
#[derive(Clone)]
pub struct IeFeedback {
    /// Dictionary taggers consulted on every page (ML taggers are far too
    /// slow for crawl-time use — exactly the asymmetry Fig. 3b measures).
    pub taggers: Vec<Arc<DictionaryTagger>>,
    /// Log-odds added per entity mention found per 1000 characters.
    pub boost_per_density: f64,
    /// Cap on the total log-odds adjustment.
    pub max_boost: f64,
    /// Pages whose adjusted log-odds clear the decision threshold by this
    /// margin are fed back into the classifier's incremental update.
    pub self_training_margin: Option<f64>,
}

impl IeFeedback {
    /// A reasonable default over the given taggers.
    pub fn new(taggers: Vec<Arc<DictionaryTagger>>) -> IeFeedback {
        IeFeedback {
            taggers,
            boost_per_density: 2.0,
            max_boost: 8.0,
            self_training_margin: Some(6.0),
        }
    }

    /// Computes the log-odds adjustment for a page's net text: positive
    /// when biomedical entities are present, proportional to their density.
    pub fn boost(&self, net_text: &str) -> f64 {
        if net_text.is_empty() || self.taggers.is_empty() {
            return 0.0;
        }
        let mentions: usize = self.taggers.iter().map(|t| t.tag(net_text).len()).sum();
        let density = mentions as f64 * 1000.0 / net_text.len() as f64;
        (density * self.boost_per_density).min(self.max_boost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_ner::{Dictionary, EntityType};

    fn feedback() -> IeFeedback {
        let dict = Dictionary::new(EntityType::Gene, ["BRCA1", "TP53", "KRAS"]);
        IeFeedback::new(vec![Arc::new(DictionaryTagger::new(&dict))])
    }

    #[test]
    fn entity_mentions_boost_log_odds() {
        let fb = feedback();
        let with = fb.boost("Mutations in BRCA1 and TP53 were found in BRCA1 carriers.");
        let without = fb.boost("The football team won the game last night again.");
        assert!(with > 1.0, "boost {with}");
        assert_eq!(without, 0.0);
    }

    #[test]
    fn boost_is_capped() {
        let fb = feedback();
        let dense = "BRCA1 TP53 KRAS ".repeat(50);
        assert!(fb.boost(&dense) <= fb.max_boost + 1e-9);
    }

    #[test]
    fn empty_inputs_are_neutral() {
        let fb = feedback();
        assert_eq!(fb.boost(""), 0.0);
        let none = IeFeedback::new(vec![]);
        assert_eq!(none.boost("BRCA1 everywhere"), 0.0);
    }
}
