//! The focused crawl loop: fetch → parse → filter → boilerplate →
//! classify → expand.
//!
//! This is the orchestration of Fig. 1: an injector seeds the CrawlDB,
//! fetcher threads pull host-partitioned fetch lists, each downloaded page
//! runs the MIME/length/language filter chain and boilerplate removal, the
//! Naive-Bayes classifier decides relevance, and only relevant pages'
//! outlinks flow back into the frontier ("otherwise, it is discarded").
//! The crawl ends when the frontier empties — the paper's actual stopping
//! condition ("the size of the crawl we obtained was bound by the fact
//! that our crawl frontier eventually emptied") — or when the configured
//! corpus size is reached.

use crate::boilerplate::BoilerplateDetector;
use crate::classifier::NaiveBayes;
use crate::feedback::IeFeedback;
use crate::crawldb::{CrawlDb, CrawlDbConfig, FrontierEntry, UrlStatus};
use crate::fetcher::Fetcher;
use crate::filters::{FilterChain, FilterConfig, FilterStats};
use crate::linkdb::LinkDb;
use crate::parser::extract_links;
use serde::Serialize;
use websift_web::{SimulatedWeb, Url};

/// Crawl configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Stop after this many pages have been accepted into the corpora.
    pub max_pages: usize,
    /// Host-specific fetch list cap (paper: 500).
    pub fetch_list_per_host: usize,
    /// Overall fetch list size per round.
    pub fetch_list_total: usize,
    /// Fetcher threads.
    pub threads: usize,
    /// Follow links out of irrelevant pages for up to this many consecutive
    /// irrelevant steps (paper default: 0 — "stopping immediately").
    pub follow_irrelevant_steps: u32,
    /// Trap guards.
    pub db: CrawlDbConfig,
    /// Filter thresholds.
    pub filters: FilterConfig,
}

impl Default for CrawlConfig {
    fn default() -> CrawlConfig {
        CrawlConfig {
            max_pages: 10_000,
            fetch_list_per_host: 500,
            fetch_list_total: 4_000,
            threads: 8,
            follow_irrelevant_steps: 0,
            db: CrawlDbConfig::default(),
            filters: FilterConfig::default(),
        }
    }
}

/// A page accepted into one of the two crawl corpora.
#[derive(Debug, Clone, Serialize)]
pub struct CrawledPage {
    pub url: Url,
    /// Extracted net text (post boilerplate removal).
    pub net_text: String,
    /// Raw payload size in bytes.
    pub raw_bytes: usize,
    /// Classifier verdict.
    pub classified_relevant: bool,
    /// Classifier log-odds (for threshold sweeps).
    pub log_odds: f64,
    /// Gold content label, when the simulated web knows it.
    pub gold_relevant: Option<bool>,
}

/// Full crawl report.
#[derive(Debug, Default, Serialize)]
pub struct CrawlReport {
    pub relevant: Vec<CrawledPage>,
    pub irrelevant: Vec<CrawledPage>,
    pub filter_stats: FilterStats,
    /// Pages that failed fetch or markup repair.
    pub failed: u64,
    /// Pages rejected as exact content duplicates (the Nutch-style dedup
    /// job; this is also what starves spider traps serving identical
    /// content under session-id URLs).
    pub duplicates: u64,
    /// Simulated crawl duration in seconds (politeness + latency model).
    pub simulated_secs: f64,
    /// Did the crawl stop because the frontier emptied?
    pub frontier_exhausted: bool,
    /// URLs rejected by spider-trap guards.
    pub trap_rejected: u64,
    pub bytes_relevant: u64,
    pub bytes_irrelevant: u64,
}

impl CrawlReport {
    /// Harvest rate by page count: relevant / downloaded-and-classified.
    pub fn harvest_rate(&self) -> f64 {
        let total = self.relevant.len() + self.irrelevant.len();
        if total == 0 {
            0.0
        } else {
            self.relevant.len() as f64 / total as f64
        }
    }

    /// Harvest rate by bytes (the paper's 373 GB / 980 GB ≈ 38 %).
    pub fn harvest_rate_bytes(&self) -> f64 {
        let total = self.bytes_relevant + self.bytes_irrelevant;
        if total == 0 {
            0.0
        } else {
            self.bytes_relevant as f64 / total as f64
        }
    }

    /// Download-and-classify throughput in documents per simulated second.
    pub fn docs_per_sec(&self) -> f64 {
        let docs = (self.relevant.len() + self.irrelevant.len()) as f64;
        if self.simulated_secs == 0.0 {
            0.0
        } else {
            docs / self.simulated_secs
        }
    }
}

/// The focused crawler.
pub struct FocusedCrawler<'w> {
    web: &'w SimulatedWeb,
    classifier: NaiveBayes,
    boilerplate: BoilerplateDetector,
    config: CrawlConfig,
    pub crawldb: CrawlDb,
    pub linkdb: LinkDb,
    /// FNV hashes of accepted net texts, for content deduplication.
    seen_content: std::collections::HashSet<u64>,
    /// Optional IE feedback loop (§5's consolidated process).
    feedback: Option<IeFeedback>,
}

impl<'w> FocusedCrawler<'w> {
    pub fn new(web: &'w SimulatedWeb, classifier: NaiveBayes, config: CrawlConfig) -> Self {
        FocusedCrawler {
            web,
            classifier,
            boilerplate: BoilerplateDetector::default(),
            crawldb: CrawlDb::new(config.db),
            linkdb: LinkDb::new(),
            config,
            seen_content: std::collections::HashSet::new(),
            feedback: None,
        }
    }

    /// Enables the consolidated crawl/IE process: entity taggers adjust
    /// the classifier's verdict at crawl time, and confident pages
    /// incrementally retrain it.
    pub fn with_ie_feedback(mut self, feedback: IeFeedback) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Runs the crawl from `seeds` to completion.
    pub fn crawl(&mut self, seeds: Vec<Url>) -> CrawlReport {
        let mut report = CrawlReport::default();
        let mut filters = FilterChain::new(self.config.filters);
        self.crawldb.inject(seeds);

        let fetcher = Fetcher::new(self.web, self.config.threads);
        // Per-page classification/filtering cost in simulated seconds —
        // this is what pushed the paper's crawler down to 3-4 docs/s.
        const ANALYSIS_COST_SECS: f64 = 0.12;

        loop {
            if report.relevant.len() + report.irrelevant.len() >= self.config.max_pages {
                break;
            }
            let batch = self.crawldb.next_fetch_list(
                self.config.fetch_list_per_host,
                self.config.fetch_list_total,
            );
            if batch.is_empty() {
                report.frontier_exhausted = true;
                break;
            }
            let (outcomes, fetch_stats) = fetcher.fetch_batch(batch);
            report.simulated_secs += fetch_stats.simulated_ms as f64 / 1000.0;
            report.failed += fetch_stats.failed;

            for outcome in outcomes {
                let url = outcome.entry.url.clone();
                let resp = match outcome.result {
                    Ok(r) => r,
                    Err(_) => {
                        self.crawldb.mark(&url, UrlStatus::Failed);
                        continue;
                    }
                };
                report.simulated_secs += ANALYSIS_COST_SECS;

                // MIME-type / raw-size filtering first (Fig. 1 order).
                if filters.check_mime(url.path(), &resp.body).is_err() {
                    self.crawldb.mark(&url, UrlStatus::Rejected);
                    continue;
                }

                // Parse links: LinkDB stores the observed structure even of
                // pages we later reject.
                let body_text = String::from_utf8_lossy(&resp.body).into_owned();
                let links = extract_links(&body_text, &url);
                self.linkdb.add_links(&url, &links);

                // Boilerplate removal (errors count as parse failures).
                let net_text = match self.boilerplate.extract(&body_text) {
                    Ok(t) => t,
                    Err(_) => {
                        report.failed += 1;
                        self.crawldb.mark(&url, UrlStatus::Rejected);
                        continue;
                    }
                };

                // Net-text length and language filters.
                if filters.check_text(&net_text).is_err() {
                    self.crawldb.mark(&url, UrlStatus::Rejected);
                    continue;
                }

                // Content deduplication (trap starvation + mirror removal).
                let mut hash: u64 = 0xcbf29ce484222325;
                for b in net_text.as_bytes() {
                    hash ^= *b as u64;
                    hash = hash.wrapping_mul(0x100000001b3);
                }
                if !self.seen_content.insert(hash) {
                    report.duplicates += 1;
                    self.crawldb.mark(&url, UrlStatus::Rejected);
                    continue;
                }

                // Relevance classification, optionally adjusted by the IE
                // feedback loop (entity density is strong biomedical
                // evidence the bag-of-words model may miss).
                let prediction = self.classifier.predict(&net_text);
                let (relevant, log_odds) = match &self.feedback {
                    None => (prediction.relevant, prediction.log_odds),
                    Some(fb) => {
                        let adjusted = prediction.log_odds + fb.boost(&net_text);
                        let verdict = adjusted > self.classifier.threshold();
                        if let Some(margin) = fb.self_training_margin {
                            if (adjusted - self.classifier.threshold()).abs() > margin {
                                self.classifier.update(&net_text, verdict);
                            }
                        }
                        (verdict, adjusted)
                    }
                };
                let page = CrawledPage {
                    gold_relevant: self.web.gold_relevant(&url),
                    url: url.clone(),
                    raw_bytes: resp.body.len(),
                    classified_relevant: relevant,
                    log_odds,
                    net_text,
                };

                let expand = if page.classified_relevant {
                    Some(0)
                } else if outcome.entry.irrelevant_steps < self.config.follow_irrelevant_steps {
                    Some(outcome.entry.irrelevant_steps + 1)
                } else {
                    None
                };
                if let Some(steps) = expand {
                    self.crawldb.add(links.into_iter().map(|l| FrontierEntry {
                        url: l,
                        irrelevant_steps: steps,
                    }));
                }

                self.crawldb.mark(&url, UrlStatus::Fetched);
                if page.classified_relevant {
                    report.bytes_relevant += page.raw_bytes as u64;
                    report.relevant.push(page);
                } else {
                    report.bytes_irrelevant += page.raw_bytes as u64;
                    report.irrelevant.push(page);
                }
            }
        }
        report.filter_stats = filters.stats();
        report.trap_rejected = self.crawldb.trap_rejected();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::train_focus_classifier;
    use websift_web::{PageId, WebGraph, WebGraphConfig};

    fn setup() -> (SimulatedWeb, NaiveBayes) {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let nb = train_focus_classifier(60, 1.5, 99);
        (web, nb)
    }

    fn biomedical_seeds(web: &SimulatedWeb, n: usize) -> Vec<Url> {
        let graph = web.graph();
        (0..graph.num_pages() as u32)
            .map(PageId)
            .filter(|&p| graph.page(p).relevant)
            .take(n)
            .map(|p| graph.url_of(p))
            .collect()
    }

    #[test]
    fn crawl_from_relevant_seeds_harvests_relevant_pages() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 300,
                threads: 4,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        assert!(!report.relevant.is_empty(), "no relevant pages harvested");
        let hr = report.harvest_rate();
        assert!(hr > 0.15, "harvest rate {hr}");
        assert!(report.simulated_secs > 0.0);
        // classifier quality against gold labels
        let correct = report
            .relevant
            .iter()
            .filter(|p| p.gold_relevant == Some(true))
            .count();
        let precision = correct as f64 / report.relevant.len() as f64;
        assert!(precision > 0.6, "crawl-time precision {precision}");
    }

    #[test]
    fn empty_seed_list_exhausts_immediately() {
        let (web, nb) = setup();
        let mut crawler = FocusedCrawler::new(&web, nb, CrawlConfig::default());
        let report = crawler.crawl(vec![]);
        assert!(report.frontier_exhausted);
        assert_eq!(report.relevant.len() + report.irrelevant.len(), 0);
    }

    #[test]
    fn max_pages_bounds_the_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 30);
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 25,
                fetch_list_total: 10,
                threads: 2,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        let total = report.relevant.len() + report.irrelevant.len();
        assert!(total >= 25 && total < 60, "total {total}");
    }

    #[test]
    fn follow_irrelevant_steps_widens_the_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 10);
        let strict = FocusedCrawler::new(
            &web,
            nb.clone(),
            CrawlConfig {
                max_pages: 400,
                follow_irrelevant_steps: 0,
                ..CrawlConfig::default()
            },
        )
        .crawl(seeds.clone());
        let lenient = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 400,
                follow_irrelevant_steps: 2,
                ..CrawlConfig::default()
            },
        )
        .crawl(seeds);
        let n_strict = strict.relevant.len() + strict.irrelevant.len();
        let n_lenient = lenient.relevant.len() + lenient.irrelevant.len();
        assert!(
            n_lenient >= n_strict,
            "lenient {n_lenient} vs strict {n_strict}"
        );
    }

    #[test]
    fn spider_traps_do_not_hang_the_crawl() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig {
            spider_trap_fraction: 0.5,
            ..WebGraphConfig::tiny()
        }));
        let nb = train_focus_classifier(40, 0.0, 5);
        let seeds: Vec<Url> = (0..web.graph().num_hosts())
            .map(|h| {
                let front = web.graph().hosts()[h].page_range.0;
                web.graph().url_of(PageId(front))
            })
            .collect();
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 500,
                follow_irrelevant_steps: 3,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        // the crawl terminates (max_pages or exhaustion) without looping forever
        assert!(report.relevant.len() + report.irrelevant.len() <= 1000);
    }

    #[test]
    fn ie_feedback_recovers_fringe_relevant_pages() {
        use crate::feedback::IeFeedback;
        use std::sync::Arc;
        use websift_ner::{Dictionary, DictionaryTagger, EntityType};

        let (web, _) = setup();
        let seeds = biomedical_seeds(&web, 20);
        // A very high threshold makes the plain classifier reject many
        // genuinely relevant pages; entity-density feedback wins them back.
        let strict = || train_focus_classifier(60, 14.0, 99);
        let config = CrawlConfig {
            max_pages: 250,
            threads: 4,
            ..CrawlConfig::default()
        };
        let baseline = FocusedCrawler::new(&web, strict(), config).crawl(seeds.clone());

        // dictionaries over the same default-scale lexicon the simulated
        // web's content is generated from
        let lexicon =
            websift_corpus::Lexicon::generate(websift_corpus::LexiconScale::default_scale());
        let taggers: Vec<Arc<DictionaryTagger>> = vec![
            Arc::new(DictionaryTagger::new(&Dictionary::new(
                EntityType::Gene,
                lexicon.genes().iter().take(2000).cloned().collect::<Vec<_>>(),
            ))),
            Arc::new(DictionaryTagger::new(&Dictionary::new(
                EntityType::Disease,
                lexicon.diseases().to_vec(),
            ))),
        ];
        let with_feedback = FocusedCrawler::new(&web, strict(), config)
            .with_ie_feedback(IeFeedback::new(taggers))
            .crawl(seeds);

        assert!(
            with_feedback.relevant.len() >= baseline.relevant.len(),
            "feedback {} vs baseline {}",
            with_feedback.relevant.len(),
            baseline.relevant.len()
        );
    }

    #[test]
    fn linkdb_populated_during_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 10);
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 80,
                ..CrawlConfig::default()
            },
        );
        let _ = crawler.crawl(seeds);
        assert!(crawler.linkdb.len() > 10);
    }
}
