//! The focused crawl loop: fetch → parse → filter → boilerplate →
//! classify → expand.
//!
//! This is the orchestration of Fig. 1: an injector seeds the CrawlDB,
//! fetcher threads pull host-partitioned fetch lists, each downloaded page
//! runs the MIME/length/language filter chain and boilerplate removal, the
//! Naive-Bayes classifier decides relevance, and only relevant pages'
//! outlinks flow back into the frontier ("otherwise, it is discarded").
//! The crawl ends when the frontier empties — the paper's actual stopping
//! condition ("the size of the crawl we obtained was bound by the fact
//! that our crawl frontier eventually emptied") — or when the configured
//! corpus size is reached.
//!
//! # Resilience
//!
//! The loop is built to survive the failures that dominated the paper's
//! 80-day production crawl. Retryable fetch failures (injected transient
//! network errors, crashed fetcher workers) are rescheduled with
//! decorrelated-jitter backoff under per-host retry budgets; hosts that
//! fail persistently are quarantined by a circuit breaker; and at round
//! ("segment") boundaries the complete crawler state — CrawlDB, LinkDB,
//! classifier counts, dedup hashes, report accumulators, and the retry
//! machinery itself — can be checkpointed. A crawl killed mid-flight and
//! resumed via [`FocusedCrawler::resume_from`] reproduces *bit-identical*
//! final statistics to an uninterrupted run under the same fault plan:
//! every fault/backoff decision is a pure function of the seed, and every
//! accumulator (including `f64` time) round-trips through the checkpoint
//! by bit pattern.

use crate::boilerplate::BoilerplateDetector;
use crate::classifier::NaiveBayes;
use crate::crawldb::{CrawlDb, CrawlDbConfig, FrontierEntry, UrlStatus};
use crate::feedback::IeFeedback;
use crate::fetcher::{FaultContext, Fetcher};
use crate::filters::{FilterChain, FilterConfig, FilterStats};
use crate::linkdb::LinkDb;
use crate::parser::extract_links;
use crate::recovery::{CrawlCheckpoint, ResilienceOptions, ResilienceStats};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use websift_observe::{Labels, Observer, RegistrySnapshot};
use websift_resilience::codec;
use websift_resilience::{
    BreakerState, CircuitBreaker, CodecError, FaultKind, Reader, RetryBudget, Snapshot, Writer,
};
use websift_web::{SimulatedWeb, Url};

/// Per-page classification/filtering cost in simulated seconds — this is
/// what pushed the paper's crawler down to 3-4 docs/s.
const ANALYSIS_COST_SECS: f64 = 0.12;

/// Fig. 1 phase decomposition of [`ANALYSIS_COST_SECS`], used only to
/// *attribute* the per-page analysis cost to spans and profiler scopes.
/// The clock still advances by the single per-page constant, so
/// observability cannot perturb simulated time; phases a rejected page
/// never reached are charged to the phase that rejected it.
const FILTER_COST_SECS: f64 = 0.02;
const PARSE_COST_SECS: f64 = 0.03;
const DEDUP_COST_SECS: f64 = 0.02;

/// Per-round phase attribution accumulators (simulated seconds).
#[derive(Debug, Default)]
struct RoundPhases {
    parse: f64,
    filter: f64,
    classify: f64,
    dedup: f64,
}

/// Crawl configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Stop after this many pages have been accepted into the corpora.
    pub max_pages: usize,
    /// Host-specific fetch list cap (paper: 500).
    pub fetch_list_per_host: usize,
    /// Overall fetch list size per round.
    pub fetch_list_total: usize,
    /// Fetcher threads.
    pub threads: usize,
    /// Follow links out of irrelevant pages for up to this many consecutive
    /// irrelevant steps (paper default: 0 — "stopping immediately").
    pub follow_irrelevant_steps: u32,
    /// Trap guards.
    pub db: CrawlDbConfig,
    /// Filter thresholds.
    pub filters: FilterConfig,
}

impl Default for CrawlConfig {
    fn default() -> CrawlConfig {
        CrawlConfig {
            max_pages: 10_000,
            fetch_list_per_host: 500,
            fetch_list_total: 4_000,
            threads: 8,
            follow_irrelevant_steps: 0,
            db: CrawlDbConfig::default(),
            filters: FilterConfig::default(),
        }
    }
}

/// A page accepted into one of the two crawl corpora.
#[derive(Debug, Clone, Serialize)]
pub struct CrawledPage {
    pub url: Url,
    /// Extracted net text (post boilerplate removal).
    pub net_text: String,
    /// Raw payload size in bytes.
    pub raw_bytes: usize,
    /// Classifier verdict.
    pub classified_relevant: bool,
    /// Classifier log-odds (for threshold sweeps).
    pub log_odds: f64,
    /// Gold content label, when the simulated web knows it.
    pub gold_relevant: Option<bool>,
}

impl Snapshot for CrawledPage {
    fn encode(&self, w: &mut Writer) {
        self.url.encode(w);
        w.str(&self.net_text);
        w.usize(self.raw_bytes);
        w.bool(self.classified_relevant);
        w.f64(self.log_odds);
        self.gold_relevant.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<CrawledPage, CodecError> {
        Ok(CrawledPage {
            url: Snapshot::decode(r)?,
            net_text: r.str()?,
            raw_bytes: r.usize()?,
            classified_relevant: r.bool()?,
            log_odds: r.f64()?,
            gold_relevant: Snapshot::decode(r)?,
        })
    }
}

/// Full crawl report.
#[derive(Debug, Default, Serialize)]
pub struct CrawlReport {
    pub relevant: Vec<CrawledPage>,
    pub irrelevant: Vec<CrawledPage>,
    pub filter_stats: FilterStats,
    /// Pages that failed fetch or markup repair.
    pub failed: u64,
    /// Pages rejected as exact content duplicates (the Nutch-style dedup
    /// job; this is also what starves spider traps serving identical
    /// content under session-id URLs).
    pub duplicates: u64,
    /// Simulated crawl duration in seconds (politeness + latency model).
    pub simulated_secs: f64,
    /// Did the crawl stop because the frontier emptied?
    pub frontier_exhausted: bool,
    /// URLs rejected by spider-trap guards.
    pub trap_rejected: u64,
    pub bytes_relevant: u64,
    pub bytes_irrelevant: u64,
    /// Retry/breaker/checkpoint counters.
    pub resilience: ResilienceStats,
}

impl Snapshot for CrawlReport {
    fn encode(&self, w: &mut Writer) {
        self.relevant.encode(w);
        self.irrelevant.encode(w);
        self.filter_stats.encode(w);
        w.u64(self.failed);
        w.u64(self.duplicates);
        w.f64(self.simulated_secs);
        w.bool(self.frontier_exhausted);
        w.u64(self.trap_rejected);
        w.u64(self.bytes_relevant);
        w.u64(self.bytes_irrelevant);
        self.resilience.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<CrawlReport, CodecError> {
        Ok(CrawlReport {
            relevant: Snapshot::decode(r)?,
            irrelevant: Snapshot::decode(r)?,
            filter_stats: Snapshot::decode(r)?,
            failed: r.u64()?,
            duplicates: r.u64()?,
            simulated_secs: r.f64()?,
            frontier_exhausted: r.bool()?,
            trap_rejected: r.u64()?,
            bytes_relevant: r.u64()?,
            bytes_irrelevant: r.u64()?,
            resilience: Snapshot::decode(r)?,
        })
    }
}

impl CrawlReport {
    /// Harvest rate by page count: relevant / downloaded-and-classified.
    pub fn harvest_rate(&self) -> f64 {
        let total = self.relevant.len() + self.irrelevant.len();
        if total == 0 {
            0.0
        } else {
            self.relevant.len() as f64 / total as f64
        }
    }

    /// Harvest rate by bytes (the paper's 373 GB / 980 GB ≈ 38 %).
    pub fn harvest_rate_bytes(&self) -> f64 {
        let total = self.bytes_relevant + self.bytes_irrelevant;
        if total == 0 {
            0.0
        } else {
            self.bytes_relevant as f64 / total as f64
        }
    }

    /// Download-and-classify throughput in documents per simulated second.
    pub fn docs_per_sec(&self) -> f64 {
        let docs = (self.relevant.len() + self.irrelevant.len()) as f64;
        if self.simulated_secs == 0.0 {
            0.0
        } else {
            docs / self.simulated_secs
        }
    }
}

/// Mutable retry machinery threaded through the crawl loop; fully
/// checkpointed so resumed crawls replay identically.
#[derive(Debug)]
struct RetryState {
    /// Segment (round) counter; also the fault-injection epoch.
    round: u64,
    /// Retry attempts consumed per URL (cleared on success).
    attempts: HashMap<Url, u32>,
    /// Entries waiting out a backoff delay or breaker quarantine, with
    /// the simulated time at which they become fetchable again.
    retry_queue: Vec<(u64, FrontierEntry)>,
    budget: RetryBudget,
    breaker: CircuitBreaker,
}

impl RetryState {
    fn new(options: &ResilienceOptions) -> RetryState {
        RetryState {
            round: 0,
            attempts: HashMap::new(),
            retry_queue: Vec::new(),
            budget: RetryBudget::new(options.retry_budget_per_host),
            breaker: CircuitBreaker::new(options.breaker_threshold, options.breaker_cooldown_ms),
        }
    }
}

impl Snapshot for RetryState {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.round);
        self.attempts.encode(w);
        self.retry_queue.encode(w);
        self.budget.encode(w);
        self.breaker.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<RetryState, CodecError> {
        Ok(RetryState {
            round: r.u64()?,
            attempts: Snapshot::decode(r)?,
            retry_queue: Snapshot::decode(r)?,
            budget: Snapshot::decode(r)?,
            breaker: Snapshot::decode(r)?,
        })
    }
}

/// The focused crawler.
pub struct FocusedCrawler<'w> {
    web: &'w SimulatedWeb,
    classifier: NaiveBayes,
    boilerplate: BoilerplateDetector,
    config: CrawlConfig,
    pub crawldb: CrawlDb,
    pub linkdb: LinkDb,
    /// FNV hashes of accepted net texts, for content deduplication.
    seen_content: std::collections::HashSet<u64>,
    /// Optional IE feedback loop (§5's consolidated process).
    feedback: Option<IeFeedback>,
    /// Observability sink: per-round spans, frontier/harvest gauges,
    /// phase-cost profiling. A private observer by default; share one
    /// via [`FocusedCrawler::with_observer`].
    observer: Arc<Observer>,
}

impl<'w> FocusedCrawler<'w> {
    pub fn new(web: &'w SimulatedWeb, classifier: NaiveBayes, config: CrawlConfig) -> Self {
        FocusedCrawler {
            web,
            classifier,
            boilerplate: BoilerplateDetector::default(),
            crawldb: CrawlDb::new(config.db),
            linkdb: LinkDb::new(),
            config,
            seen_content: std::collections::HashSet::new(),
            feedback: None,
            observer: Arc::new(Observer::new()),
        }
    }

    /// Enables the consolidated crawl/IE process: entity taggers adjust
    /// the classifier's verdict at crawl time, and confident pages
    /// incrementally retrain it.
    pub fn with_ie_feedback(mut self, feedback: IeFeedback) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Reports this crawl's observations through a shared [`Observer`]
    /// instead of the crawler's private one.
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = observer;
        self
    }

    /// The observer this crawl reports through.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Runs the crawl from `seeds` to completion.
    pub fn crawl(&mut self, seeds: Vec<Url>) -> CrawlReport {
        self.crawl_resilient(seeds, &ResilienceOptions::default()).0
    }

    /// Runs the crawl with fault injection, retry/backoff, circuit
    /// breaking, and periodic checkpointing per `options`. With default
    /// options this is exactly [`FocusedCrawler::crawl`].
    pub fn crawl_resilient(
        &mut self,
        seeds: Vec<Url>,
        options: &ResilienceOptions,
    ) -> (CrawlReport, Vec<CrawlCheckpoint>) {
        let mut report = CrawlReport::default();
        let mut filters = FilterChain::new(self.config.filters);
        self.crawldb.inject(seeds);
        let mut rt = RetryState::new(options);
        let mut checkpoints = Vec::new();
        self.run_rounds(&mut report, &mut filters, &mut rt, options, &mut checkpoints);
        self.finish(&mut report, &filters, &rt);
        (report, checkpoints)
    }

    /// Reconstructs a crawler from `checkpoint` and runs it to
    /// completion, returning the crawler (for CrawlDB/LinkDB
    /// inspection), the final report, and any further checkpoints taken.
    ///
    /// `config` and `options` must match the original crawl's for the
    /// resumed run to reproduce it (they are deliberately not stored in
    /// the checkpoint: fault plans and thresholds are inputs, not
    /// state). `feedback` likewise must be reconstructed by the caller
    /// when the original crawl used IE feedback — the classifier counts
    /// it trained are in the checkpoint, but taggers are not
    /// serializable.
    pub fn resume_from(
        web: &'w SimulatedWeb,
        checkpoint: &CrawlCheckpoint,
        config: CrawlConfig,
        options: &ResilienceOptions,
        feedback: Option<IeFeedback>,
    ) -> Result<(FocusedCrawler<'w>, CrawlReport, Vec<CrawlCheckpoint>), CodecError> {
        Self::resume_observed(
            web,
            checkpoint,
            config,
            options,
            feedback,
            Arc::new(Observer::new()),
        )
    }

    /// [`FocusedCrawler::resume_from`] reporting through the caller's
    /// [`Observer`]. The checkpoint's registry snapshot is restored into
    /// `observer` before the crawl continues, so counters, gauges, and
    /// histograms pick up exactly where the killed run left them.
    pub fn resume_observed(
        web: &'w SimulatedWeb,
        checkpoint: &CrawlCheckpoint,
        config: CrawlConfig,
        options: &ResilienceOptions,
        feedback: Option<IeFeedback>,
        observer: Arc<Observer>,
    ) -> Result<(FocusedCrawler<'w>, CrawlReport, Vec<CrawlCheckpoint>), CodecError> {
        let (mut crawler, mut filters, mut report, mut rt) =
            Self::restore_parts(web, checkpoint, config, feedback, observer)?;
        let mut checkpoints = Vec::new();
        crawler.run_rounds(&mut report, &mut filters, &mut rt, options, &mut checkpoints);
        crawler.finish(&mut report, &filters, &rt);
        Ok((crawler, report, checkpoints))
    }

    /// Decodes `checkpoint` back into a crawler plus the loop state it
    /// was sealed with, restoring the frame's registry snapshot into
    /// `observer` — the shared decode behind
    /// [`FocusedCrawler::resume_observed`] (which immediately reruns the
    /// loop) and [`CrawlSession::resume`] (which hands the state back to
    /// a stepping session without running).
    fn restore_parts(
        web: &'w SimulatedWeb,
        checkpoint: &CrawlCheckpoint,
        config: CrawlConfig,
        feedback: Option<IeFeedback>,
        observer: Arc<Observer>,
    ) -> Result<(FocusedCrawler<'w>, FilterChain, CrawlReport, RetryState), CodecError> {
        let payload = checkpoint.payload()?;
        let mut r = Reader::new(payload);
        let crawldb = CrawlDb::decode_snapshot(&mut r)?;
        let linkdb = LinkDb::decode_snapshot(&mut r)?;
        let word_counts = Snapshot::decode(&mut r)?;
        let class_tokens = <[u64; 2]>::decode(&mut r)?;
        let class_docs = <[u64; 2]>::decode(&mut r)?;
        let threshold = r.f64()?;
        let seen_content = Snapshot::decode(&mut r)?;
        let filter_stats = FilterStats::decode(&mut r)?;
        let report = CrawlReport::decode(&mut r)?;
        let rt = RetryState::decode(&mut r)?;
        let registry = RegistrySnapshot::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Truncated { what: "trailing checkpoint bytes" });
        }
        observer.registry().restore(&registry);

        let crawler = FocusedCrawler {
            web,
            classifier: NaiveBayes::from_parts(word_counts, class_tokens, class_docs, threshold),
            boilerplate: BoilerplateDetector::default(),
            config,
            crawldb,
            linkdb,
            seen_content,
            feedback,
            observer,
        };
        let mut filters = FilterChain::new(config.filters);
        filters.restore_stats(filter_stats);
        Ok((crawler, filters, report, rt))
    }

    /// Digest of the complete crawler + report state, for asserting the
    /// bit-identical kill/resume invariant without field-by-field
    /// comparison.
    pub fn state_digest(&self, report: &CrawlReport) -> u64 {
        let mut w = Writer::new();
        self.encode_state(&mut w, report);
        codec::digest(&w.into_bytes())
    }

    fn encode_state(&self, w: &mut Writer, report: &CrawlReport) {
        self.crawldb.encode_snapshot(w);
        self.linkdb.encode_snapshot(w);
        let (word_counts, class_tokens, class_docs, threshold) = self.classifier.snapshot_parts();
        word_counts.encode(w);
        class_tokens.encode(w);
        class_docs.encode(w);
        w.f64(threshold);
        self.seen_content.encode(w);
        report.encode(w);
    }

    fn take_checkpoint(
        &self,
        report: &CrawlReport,
        filters: &FilterChain,
        rt: &RetryState,
    ) -> CrawlCheckpoint {
        let mut w = Writer::new();
        self.crawldb.encode_snapshot(&mut w);
        self.linkdb.encode_snapshot(&mut w);
        let (word_counts, class_tokens, class_docs, threshold) = self.classifier.snapshot_parts();
        word_counts.encode(&mut w);
        class_tokens.encode(&mut w);
        class_docs.encode(&mut w);
        w.f64(threshold);
        self.seen_content.encode(&mut w);
        filters.stats().encode(&mut w);
        report.encode(&mut w);
        rt.encode(&mut w);
        // registry state rides in the frame so resumed crawls continue
        // their metrics bit-identically
        self.observer.registry().snapshot().encode(&mut w);
        CrawlCheckpoint::seal(rt.round, &w.into_bytes())
    }

    fn finish(&self, report: &mut CrawlReport, filters: &FilterChain, rt: &RetryState) {
        report.filter_stats = filters.stats();
        report.trap_rejected = self.crawldb.trap_rejected();
        report.resilience.breaker_trips = rt.breaker.total_trips();
    }

    /// The crawl loop proper. Returns `true` if stopped early by
    /// `options.stop_after_rounds` (a simulated kill).
    fn run_rounds(
        &mut self,
        report: &mut CrawlReport,
        filters: &mut FilterChain,
        rt: &mut RetryState,
        options: &ResilienceOptions,
        checkpoints: &mut Vec<CrawlCheckpoint>,
    ) -> bool {
        let fetcher = Fetcher::new(self.web, self.config.threads);

        loop {
            if report.relevant.len() + report.irrelevant.len() >= self.config.max_pages {
                return false;
            }
            if let Some(stop) = options.stop_after_rounds {
                if rt.round >= stop {
                    return true;
                }
            }
            let mut now_ms = (report.simulated_secs * 1000.0) as u64;

            // Assemble the round's batch: frontier work plus any retries
            // whose backoff/quarantine has expired.
            let mut batch = self
                .crawldb
                .next_fetch_list(self.config.fetch_list_per_host, self.config.fetch_list_total);
            let mut due: Vec<FrontierEntry> = Vec::new();
            rt.retry_queue.retain(|(ready_ms, entry)| {
                if *ready_ms <= now_ms {
                    due.push(entry.clone());
                    false
                } else {
                    true
                }
            });
            if batch.is_empty() && due.is_empty() {
                match rt.retry_queue.iter().map(|(ready, _)| *ready).min() {
                    None => {
                        report.frontier_exhausted = true;
                        return false;
                    }
                    Some(min_ready) => {
                        // Nothing fetchable yet: idle forward to the next
                        // retry becoming due.
                        report.resilience.recovery_wait_ms += min_ready - now_ms;
                        report.simulated_secs += (min_ready - now_ms) as f64 / 1000.0;
                        continue;
                    }
                }
            }
            batch.extend(due);

            // Circuit-breaker gate: quarantined hosts' entries wait out
            // the cooldown instead of being fetched.
            let mut admitted = Vec::with_capacity(batch.len());
            for entry in batch {
                let host = entry.url.host();
                if rt.breaker.allow(host, now_ms) {
                    admitted.push(entry);
                } else {
                    let ready_ms = match rt.breaker.state(host) {
                        BreakerState::Open { until_ms } => until_ms,
                        _ => now_ms + options.breaker_cooldown_ms,
                    };
                    report.resilience.breaker_deferred += 1;
                    rt.retry_queue.push((ready_ms, entry));
                }
            }
            if admitted.is_empty() {
                continue;
            }

            let round_t0 = report.simulated_secs;
            let mut phases = RoundPhases::default();
            let mut round_analyzed: u64 = 0;
            let mut round_failed: u64 = 0;
            let mut round_duplicates: u64 = 0;
            let mut round_relevant: u64 = 0;
            let mut round_irrelevant: u64 = 0;
            let mut round_bytes: u64 = 0;

            let (outcomes, fetch_stats) = match &options.faults {
                Some(plan) => fetcher
                    .fetch_batch_with(admitted, FaultContext::new(plan, rt.round, &rt.attempts)),
                None => fetcher.fetch_batch(admitted),
            };
            let fetch_secs = fetch_stats.simulated_ms as f64 / 1000.0;
            report.simulated_secs += fetch_secs;
            report.resilience.injected_transient += fetch_stats.injected_transient;
            report.resilience.worker_panics += fetch_stats.worker_panics;
            now_ms = (report.simulated_secs * 1000.0) as u64;

            for outcome in outcomes {
                let url = outcome.entry.url.clone();
                let resp = match outcome.result {
                    Ok(r) => {
                        rt.breaker.record_success(url.host());
                        rt.attempts.remove(&url);
                        r
                    }
                    Err(failure) if failure.is_retryable() => {
                        let host = url.host().to_string();
                        rt.breaker.record_failure(&host, now_ms);
                        let attempt = rt.attempts.entry(url.clone()).or_insert(0);
                        *attempt += 1;
                        if *attempt <= options.backoff.max_retries && rt.budget.try_spend(&host) {
                            let delay = options.backoff.delay_ms(&url.to_string(), *attempt);
                            rt.retry_queue.push((now_ms + delay, outcome.entry));
                            report.resilience.retries_scheduled += 1;
                        } else {
                            report.resilience.retries_exhausted += 1;
                            report.failed += 1;
                            round_failed += 1;
                            self.crawldb.mark(&url, UrlStatus::Failed);
                        }
                        continue;
                    }
                    Err(_) => {
                        report.failed += 1;
                        round_failed += 1;
                        self.crawldb.mark(&url, UrlStatus::Failed);
                        continue;
                    }
                };
                report.simulated_secs += ANALYSIS_COST_SECS;
                round_analyzed += 1;
                round_bytes += resp.body.len() as u64;
                // attribution budget for this page: phases a page never
                // reaches are charged to the phase that stopped it
                let mut remaining = ANALYSIS_COST_SECS;

                // MIME-type / raw-size filtering first (Fig. 1 order).
                if filters.check_mime(url.path(), &resp.body).is_err() {
                    phases.filter += remaining;
                    self.crawldb.mark(&url, UrlStatus::Rejected);
                    continue;
                }
                phases.filter += FILTER_COST_SECS;
                remaining -= FILTER_COST_SECS;

                // Parse links: LinkDB stores the observed structure even of
                // pages we later reject.
                let body_text = String::from_utf8_lossy(&resp.body).into_owned();
                let links = extract_links(&body_text, &url);
                self.linkdb.add_links(&url, &links);

                // Boilerplate removal (errors count as parse failures).
                let net_text = match self.boilerplate.extract(&body_text) {
                    Ok(t) => t,
                    Err(_) => {
                        phases.parse += remaining;
                        report.failed += 1;
                        round_failed += 1;
                        self.crawldb.mark(&url, UrlStatus::Rejected);
                        continue;
                    }
                };

                // Net-text length and language filters.
                if filters.check_text(&net_text).is_err() {
                    phases.parse += PARSE_COST_SECS;
                    phases.filter += remaining - PARSE_COST_SECS;
                    self.crawldb.mark(&url, UrlStatus::Rejected);
                    continue;
                }
                phases.parse += PARSE_COST_SECS;
                remaining -= PARSE_COST_SECS;

                // Content deduplication (trap starvation + mirror removal).
                let mut hash: u64 = 0xcbf29ce484222325;
                for b in net_text.as_bytes() {
                    hash ^= *b as u64;
                    hash = hash.wrapping_mul(0x100000001b3);
                }
                if !self.seen_content.insert(hash) {
                    phases.dedup += remaining;
                    report.duplicates += 1;
                    round_duplicates += 1;
                    self.crawldb.mark(&url, UrlStatus::Rejected);
                    continue;
                }
                phases.dedup += DEDUP_COST_SECS;
                remaining -= DEDUP_COST_SECS;
                // whatever is left of the page's budget is classification
                phases.classify += remaining;

                // Relevance classification, optionally adjusted by the IE
                // feedback loop (entity density is strong biomedical
                // evidence the bag-of-words model may miss).
                let prediction = self.classifier.predict(&net_text);
                let (relevant, log_odds) = match &self.feedback {
                    None => (prediction.relevant, prediction.log_odds),
                    Some(fb) => {
                        let adjusted = prediction.log_odds + fb.boost(&net_text);
                        let verdict = adjusted > self.classifier.threshold();
                        if let Some(margin) = fb.self_training_margin {
                            if (adjusted - self.classifier.threshold()).abs() > margin {
                                self.classifier.update(&net_text, verdict);
                            }
                        }
                        (verdict, adjusted)
                    }
                };
                let page = CrawledPage {
                    gold_relevant: self.web.gold_relevant(&url),
                    url: url.clone(),
                    raw_bytes: resp.body.len(),
                    classified_relevant: relevant,
                    log_odds,
                    net_text,
                };

                let expand = if page.classified_relevant {
                    Some(0)
                } else if outcome.entry.irrelevant_steps < self.config.follow_irrelevant_steps {
                    Some(outcome.entry.irrelevant_steps + 1)
                } else {
                    None
                };
                if let Some(steps) = expand {
                    self.crawldb.add(links.into_iter().map(|l| FrontierEntry {
                        url: l,
                        irrelevant_steps: steps,
                    }));
                }

                self.crawldb.mark(&url, UrlStatus::Fetched);
                if page.classified_relevant {
                    round_relevant += 1;
                    report.bytes_relevant += page.raw_bytes as u64;
                    report.relevant.push(page);
                } else {
                    round_irrelevant += 1;
                    report.bytes_irrelevant += page.raw_bytes as u64;
                    report.irrelevant.push(page);
                }
            }

            // Observability: one span per round phase laid end-to-end on
            // the simulated clock (fetch, then the Fig. 1 analysis phases
            // in order), per-round counters/gauges, and profiler scopes.
            // All recorded here on the single-threaded round loop, so
            // same-seed crawls observe byte-identically.
            {
                let obs = &self.observer;
                let round_id = rt.round.to_string();
                let round_label = Labels::new(&[("round", &round_id)]);
                let mut t = round_t0;
                for (name, dur) in [
                    ("crawl.fetch", fetch_secs),
                    ("crawl.parse", phases.parse),
                    ("crawl.filter", phases.filter),
                    ("crawl.classify", phases.classify),
                    ("crawl.dedup", phases.dedup),
                ] {
                    obs.tracer().span(name, t, dur, round_label.clone());
                    t += dur;
                }
                obs.profiler().record(&["crawl", "round", "fetch"], fetch_secs, round_bytes);
                obs.profiler().record(&["crawl", "round", "parse"], phases.parse, 0);
                obs.profiler().record(&["crawl", "round", "filter"], phases.filter, 0);
                obs.profiler().record(&["crawl", "round", "classify"], phases.classify, 0);
                obs.profiler().record(&["crawl", "round", "dedup"], phases.dedup, 0);

                let reg = obs.registry();
                let at = Labels::empty();
                reg.counter("crawl.rounds", &at).inc();
                reg.counter("crawl.pages_analyzed", &at).add(round_analyzed);
                reg.counter("crawl.pages_failed", &at).add(round_failed);
                reg.counter("crawl.duplicates", &at).add(round_duplicates);
                reg.counter("crawl.relevant", &at).add(round_relevant);
                reg.counter("crawl.irrelevant", &at).add(round_irrelevant);
                reg.counter("crawl.bytes_fetched", &at).add(round_bytes);
                reg.gauge("crawl.frontier_size", &at).set(self.crawldb.frontier_size() as f64);
                reg.gauge("crawl.harvest_rate", &at).set(report.harvest_rate());
                reg.gauge("crawl.simulated_secs", &at).set(report.simulated_secs);
                reg.histogram("crawl.round_fetch_secs", &at).record(fetch_secs);
            }

            // Segment boundary: advance the round counter and checkpoint
            // if the cadence says so (an injected store-write fault loses
            // the snapshot but not the crawl).
            rt.round += 1;
            if let Some(every) = options.checkpoint_every_rounds {
                if every > 0 && rt.round.is_multiple_of(every) {
                    let lost = options.faults.as_ref().is_some_and(|plan| {
                        plan.injects_at(FaultKind::StoreWrite, "crawl-checkpoint", rt.round)
                    });
                    if lost {
                        report.resilience.store_write_failures += 1;
                    } else {
                        report.resilience.checkpoints_taken += 1;
                        checkpoints.push(self.take_checkpoint(report, filters, rt));
                    }
                }
            }
        }
    }
}

/// A stepping handle over a focused crawl: the same loop as
/// [`FocusedCrawler::crawl_resilient`], advanced one round ("segment")
/// at a time so a long-running live session can interleave crawling with
/// downstream incremental processing.
///
/// Stepping is bit-identical to an uninterrupted run: the fetcher the
/// loop builds per call is stateless, every retry/backoff/breaker
/// decision lives in the checkpointed [`RetryState`], and the loop-top
/// stop check only ever *returns* — it never changes what a round does.
/// So N calls to [`CrawlSession::step_round`] leave the crawler, report,
/// and observer in exactly the state one `crawl_resilient` call reaches
/// after N rounds.
///
/// Between steps the session exposes the *delta* of newly accepted pages
/// ([`CrawlSession::take_new_pages`]) and can seal the standard crawl
/// checkpoint frame ([`CrawlSession::checkpoint`]); [`CrawlSession::resume`]
/// rebuilds a session from such a frame without rerunning the loop.
pub struct CrawlSession<'w> {
    crawler: FocusedCrawler<'w>,
    report: CrawlReport,
    filters: FilterChain,
    rt: RetryState,
    options: ResilienceOptions,
    /// Cadence checkpoints taken inside the loop (per
    /// `options.checkpoint_every_rounds`), drainable by the caller.
    checkpoints: Vec<CrawlCheckpoint>,
    done: bool,
    drained_relevant: usize,
    drained_irrelevant: usize,
}

impl<'w> CrawlSession<'w> {
    /// Starts a stepping session: seeds are injected, nothing is fetched
    /// yet. `options.stop_after_rounds` is ignored — the caller controls
    /// the kill point by simply not calling [`CrawlSession::step_round`].
    pub fn start(
        mut crawler: FocusedCrawler<'w>,
        seeds: Vec<Url>,
        options: &ResilienceOptions,
    ) -> CrawlSession<'w> {
        let filters = FilterChain::new(crawler.config.filters);
        crawler.crawldb.inject(seeds);
        let rt = RetryState::new(options);
        CrawlSession {
            crawler,
            report: CrawlReport::default(),
            filters,
            rt,
            options: options.clone(),
            checkpoints: Vec::new(),
            done: false,
            drained_relevant: 0,
            drained_irrelevant: 0,
        }
    }

    /// Rebuilds a session from a sealed crawl checkpoint without running
    /// any rounds. The frame's registry snapshot is restored into
    /// `observer`, and pages already in the checkpointed report count as
    /// drained — the downstream consumer saw them before the kill.
    pub fn resume(
        web: &'w SimulatedWeb,
        checkpoint: &CrawlCheckpoint,
        config: CrawlConfig,
        options: &ResilienceOptions,
        feedback: Option<IeFeedback>,
        observer: Arc<Observer>,
    ) -> Result<CrawlSession<'w>, CodecError> {
        let (crawler, filters, report, rt) =
            FocusedCrawler::restore_parts(web, checkpoint, config, feedback, observer)?;
        Ok(CrawlSession {
            drained_relevant: report.relevant.len(),
            drained_irrelevant: report.irrelevant.len(),
            crawler,
            report,
            filters,
            rt,
            options: options.clone(),
            checkpoints: Vec::new(),
            done: false,
        })
    }

    /// Advances the crawl exactly one round. Returns `false` once the
    /// crawl is over (`max_pages` reached or frontier exhausted) — after
    /// which the report carries its final derived statistics and further
    /// calls are no-ops.
    pub fn step_round(&mut self) -> bool {
        if self.done {
            return false;
        }
        let step = ResilienceOptions {
            stop_after_rounds: Some(self.rt.round + 1),
            ..self.options.clone()
        };
        let more = self.crawler.run_rounds(
            &mut self.report,
            &mut self.filters,
            &mut self.rt,
            &step,
            &mut self.checkpoints,
        );
        if !more {
            self.done = true;
            // Derived report fields are filled exactly once, at the end —
            // the same point `crawl_resilient` fills them — so mid-session
            // state (and any checkpoint sealed from it) stays bit-identical
            // to an uninterrupted run at the same round boundary.
            self.crawler.finish(&mut self.report, &self.filters, &self.rt);
        }
        more
    }

    /// Pages accepted since the last call (or since start/resume):
    /// `(relevant, irrelevant)` tail slices of the report, in acceptance
    /// order. The cursor advances, so each page is returned exactly once.
    pub fn take_new_pages(&mut self) -> (&[CrawledPage], &[CrawledPage]) {
        let rel_from = self.drained_relevant;
        let irr_from = self.drained_irrelevant;
        self.drained_relevant = self.report.relevant.len();
        self.drained_irrelevant = self.report.irrelevant.len();
        (&self.report.relevant[rel_from..], &self.report.irrelevant[irr_from..])
    }

    /// Count of relevant pages already handed out via
    /// [`CrawlSession::take_new_pages`] — the id offset for converting a
    /// delta into globally numbered documents.
    pub fn drained_relevant(&self) -> usize {
        self.drained_relevant
    }

    /// Seals the complete crawler + loop state into the standard crawl
    /// checkpoint frame — byte-compatible with the cadence checkpoints
    /// `crawl_resilient` takes, so either kind can resume a session.
    pub fn checkpoint(&self) -> CrawlCheckpoint {
        self.crawler.take_checkpoint(&self.report, &self.filters, &self.rt)
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.rt.round
    }

    /// Has the crawl ended (frontier exhausted or `max_pages` reached)?
    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn report(&self) -> &CrawlReport {
        &self.report
    }

    pub fn crawler(&self) -> &FocusedCrawler<'w> {
        &self.crawler
    }

    /// Digest of the complete crawler + report state (see
    /// [`FocusedCrawler::state_digest`]) — the "crawler frontier digest"
    /// a live watermark records.
    pub fn state_digest(&self) -> u64 {
        self.crawler.state_digest(&self.report)
    }

    /// Drains any cadence checkpoints the loop took during stepping.
    pub fn take_cadence_checkpoints(&mut self) -> Vec<CrawlCheckpoint> {
        std::mem::take(&mut self.checkpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::train_focus_classifier;
    use websift_web::{PageId, WebGraph, WebGraphConfig};

    fn setup() -> (SimulatedWeb, NaiveBayes) {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
        let nb = train_focus_classifier(60, 1.5, 99);
        (web, nb)
    }

    fn biomedical_seeds(web: &SimulatedWeb, n: usize) -> Vec<Url> {
        let graph = web.graph();
        (0..graph.num_pages() as u32)
            .map(PageId)
            .filter(|&p| graph.page(p).relevant)
            .take(n)
            .map(|p| graph.url_of(p))
            .collect()
    }

    #[test]
    fn crawl_from_relevant_seeds_harvests_relevant_pages() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 300,
                threads: 4,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        assert!(!report.relevant.is_empty(), "no relevant pages harvested");
        let hr = report.harvest_rate();
        assert!(hr > 0.15, "harvest rate {hr}");
        assert!(report.simulated_secs > 0.0);
        // classifier quality against gold labels
        let correct = report
            .relevant
            .iter()
            .filter(|p| p.gold_relevant == Some(true))
            .count();
        let precision = correct as f64 / report.relevant.len() as f64;
        assert!(precision > 0.6, "crawl-time precision {precision}");
    }

    #[test]
    fn empty_seed_list_exhausts_immediately() {
        let (web, nb) = setup();
        let mut crawler = FocusedCrawler::new(&web, nb, CrawlConfig::default());
        let report = crawler.crawl(vec![]);
        assert!(report.frontier_exhausted);
        assert_eq!(report.relevant.len() + report.irrelevant.len(), 0);
    }

    #[test]
    fn max_pages_bounds_the_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 30);
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 25,
                fetch_list_total: 10,
                threads: 2,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        let total = report.relevant.len() + report.irrelevant.len();
        assert!((25..60).contains(&total), "total {total}");
    }

    #[test]
    fn follow_irrelevant_steps_widens_the_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 10);
        let strict = FocusedCrawler::new(
            &web,
            nb.clone(),
            CrawlConfig {
                max_pages: 400,
                follow_irrelevant_steps: 0,
                ..CrawlConfig::default()
            },
        )
        .crawl(seeds.clone());
        let lenient = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 400,
                follow_irrelevant_steps: 2,
                ..CrawlConfig::default()
            },
        )
        .crawl(seeds);
        let n_strict = strict.relevant.len() + strict.irrelevant.len();
        let n_lenient = lenient.relevant.len() + lenient.irrelevant.len();
        assert!(
            n_lenient >= n_strict,
            "lenient {n_lenient} vs strict {n_strict}"
        );
    }

    #[test]
    fn spider_traps_do_not_hang_the_crawl() {
        let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig {
            spider_trap_fraction: 0.5,
            ..WebGraphConfig::tiny()
        }));
        let nb = train_focus_classifier(40, 0.0, 5);
        let seeds: Vec<Url> = (0..web.graph().num_hosts())
            .map(|h| {
                let front = web.graph().hosts()[h].page_range.0;
                web.graph().url_of(PageId(front))
            })
            .collect();
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 500,
                follow_irrelevant_steps: 3,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds);
        // the crawl terminates (max_pages or exhaustion) without looping forever
        assert!(report.relevant.len() + report.irrelevant.len() <= 1000);
    }

    #[test]
    fn ie_feedback_recovers_fringe_relevant_pages() {
        use crate::feedback::IeFeedback;
        use std::sync::Arc;
        use websift_ner::{Dictionary, DictionaryTagger, EntityType};

        let (web, _) = setup();
        let seeds = biomedical_seeds(&web, 20);
        // A very high threshold makes the plain classifier reject many
        // genuinely relevant pages; entity-density feedback wins them back.
        let strict = || train_focus_classifier(60, 14.0, 99);
        let config = CrawlConfig {
            max_pages: 250,
            threads: 4,
            ..CrawlConfig::default()
        };
        let baseline = FocusedCrawler::new(&web, strict(), config).crawl(seeds.clone());

        // dictionaries over the same default-scale lexicon the simulated
        // web's content is generated from
        let lexicon =
            websift_corpus::Lexicon::generate(websift_corpus::LexiconScale::default_scale());
        let taggers: Vec<Arc<DictionaryTagger>> = vec![
            Arc::new(DictionaryTagger::new(&Dictionary::new(
                EntityType::Gene,
                lexicon.genes().iter().take(2000).cloned().collect::<Vec<_>>(),
            ))),
            Arc::new(DictionaryTagger::new(&Dictionary::new(
                EntityType::Disease,
                lexicon.diseases().to_vec(),
            ))),
        ];
        let with_feedback = FocusedCrawler::new(&web, strict(), config)
            .with_ie_feedback(IeFeedback::new(taggers))
            .crawl(seeds);

        assert!(
            with_feedback.relevant.len() >= baseline.relevant.len(),
            "feedback {} vs baseline {}",
            with_feedback.relevant.len(),
            baseline.relevant.len()
        );
    }

    #[test]
    fn linkdb_populated_during_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 10);
        let mut crawler = FocusedCrawler::new(
            &web,
            nb,
            CrawlConfig {
                max_pages: 80,
                ..CrawlConfig::default()
            },
        );
        let _ = crawler.crawl(seeds);
        assert!(crawler.linkdb.len() > 10);
    }

    fn resilient_config() -> CrawlConfig {
        CrawlConfig {
            max_pages: 250,
            fetch_list_total: 60,
            threads: 4,
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn checkpointing_does_not_perturb_the_crawl() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let plain = FocusedCrawler::new(&web, nb.clone(), resilient_config()).crawl(seeds.clone());

        let opts = ResilienceOptions {
            checkpoint_every_rounds: Some(2),
            ..ResilienceOptions::default()
        };
        let mut crawler = FocusedCrawler::new(&web, nb, resilient_config());
        let (ckpt_run, checkpoints) = crawler.crawl_resilient(seeds, &opts);

        assert!(!checkpoints.is_empty(), "no checkpoints taken");
        assert_eq!(
            ckpt_run.resilience.checkpoints_taken,
            checkpoints.len() as u64
        );
        assert_eq!(plain.relevant.len(), ckpt_run.relevant.len());
        assert_eq!(plain.irrelevant.len(), ckpt_run.irrelevant.len());
        assert_eq!(plain.failed, ckpt_run.failed);
        assert_eq!(plain.duplicates, ckpt_run.duplicates);
        assert_eq!(
            plain.simulated_secs.to_bits(),
            ckpt_run.simulated_secs.to_bits(),
            "checkpointing changed the simulated clock"
        );
    }

    #[test]
    fn injected_faults_are_retried_and_survived() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let opts = ResilienceOptions::injected(0xFA17, 0.2, 4);
        let mut crawler = FocusedCrawler::new(&web, nb, resilient_config());
        let (report, _) = crawler.crawl_resilient(seeds, &opts);

        assert!(report.resilience.injected_transient > 0, "no faults fired");
        assert!(report.resilience.retries_scheduled > 0, "nothing retried");
        assert!(
            !report.relevant.is_empty(),
            "crawl did not survive fault injection"
        );
    }

    #[test]
    fn observed_crawl_emits_round_spans_and_conserves_the_clock() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let obs = Arc::new(Observer::new());
        let mut crawler =
            FocusedCrawler::new(&web, nb, resilient_config()).with_observer(Arc::clone(&obs));
        let report = crawler.crawl(seeds);

        // every round emits the five Fig. 1 phase spans in order
        let events = obs.tracer().events();
        assert!(!events.is_empty());
        let expected = ["crawl.fetch", "crawl.parse", "crawl.filter", "crawl.classify", "crawl.dedup"];
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.name, expected[i % expected.len()]);
        }

        // registry counters are views of the report
        let reg = obs.registry();
        let at = Labels::empty();
        assert_eq!(reg.counter("crawl.relevant", &at).value(), report.relevant.len() as u64);
        assert_eq!(reg.counter("crawl.irrelevant", &at).value(), report.irrelevant.len() as u64);
        assert_eq!(reg.counter("crawl.duplicates", &at).value(), report.duplicates);
        assert_eq!(reg.gauge("crawl.harvest_rate", &at).value(), report.harvest_rate());
        assert!(reg.counter("crawl.rounds", &at).value() > 0);

        // phase attribution conserves the simulated clock: fetch secs
        // plus the per-page analysis budget equals the profiler's crawl
        // total (no idle waits occur without fault injection)
        let crawl_total = obs
            .profiler()
            .scopes()
            .iter()
            .find(|s| s.folded_path() == "crawl")
            .expect("missing crawl scope")
            .total_secs;
        assert!(
            (crawl_total - report.simulated_secs).abs() < 1e-6,
            "profiler total {crawl_total} vs clock {}",
            report.simulated_secs
        );
    }

    #[test]
    fn resumed_crawl_continues_registry_bit_identically() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let opts = ResilienceOptions {
            checkpoint_every_rounds: Some(2),
            ..ResilienceOptions::default()
        };

        let base_obs = Arc::new(Observer::new());
        let mut baseline = FocusedCrawler::new(&web, nb.clone(), resilient_config())
            .with_observer(Arc::clone(&base_obs));
        let (_base_report, _) = baseline.crawl_resilient(seeds.clone(), &opts);

        let killed_opts = ResilienceOptions {
            stop_after_rounds: Some(3),
            ..opts.clone()
        };
        let mut killed = FocusedCrawler::new(&web, nb, resilient_config());
        let (_, mut ckpts) = killed.crawl_resilient(seeds, &killed_opts);
        let last = ckpts.pop().expect("no checkpoint taken");

        let resumed_obs = Arc::new(Observer::new());
        let (_, _, _) = FocusedCrawler::resume_observed(
            &web,
            &last,
            resilient_config(),
            &opts,
            None,
            Arc::clone(&resumed_obs),
        )
        .unwrap();

        use websift_resilience::checkpoint::encode_to_vec;
        assert_eq!(
            encode_to_vec(&base_obs.registry().snapshot()),
            encode_to_vec(&resumed_obs.registry().snapshot()),
            "resumed registry diverged from uninterrupted baseline"
        );
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let opts = ResilienceOptions::injected(0xC0FFEE, 0.05, 2);

        // Uninterrupted baseline under the identical fault plan.
        let mut baseline = FocusedCrawler::new(&web, nb.clone(), resilient_config());
        let (base_report, base_ckpts) = baseline.crawl_resilient(seeds.clone(), &opts);
        assert!(!base_ckpts.is_empty());

        // Kill after 3 rounds, losing the work since the round-2 checkpoint.
        let killed_opts = ResilienceOptions {
            stop_after_rounds: Some(3),
            ..opts.clone()
        };
        let mut killed = FocusedCrawler::new(&web, nb, resilient_config());
        let (_partial, mut ckpts) = killed.crawl_resilient(seeds, &killed_opts);
        let last = ckpts.pop().expect("killed run took no checkpoint");
        assert!(last.round < 3 + 1, "checkpoint past the kill point");

        // Resume from durable bytes (exercising the corruption checks).
        let restored = CrawlCheckpoint::from_bytes(last.round, last.as_bytes().to_vec()).unwrap();
        let (resumed, resumed_report, _) =
            FocusedCrawler::resume_from(&web, &restored, resilient_config(), &opts, None).unwrap();

        assert_eq!(
            baseline.state_digest(&base_report),
            resumed.state_digest(&resumed_report),
            "resumed crawl state diverged from uninterrupted baseline"
        );
        assert_eq!(base_report.relevant.len(), resumed_report.relevant.len());
        assert_eq!(
            base_report.simulated_secs.to_bits(),
            resumed_report.simulated_secs.to_bits()
        );
        assert_eq!(base_report.resilience, resumed_report.resilience);
        assert_eq!(
            base_report.harvest_rate().to_bits(),
            resumed_report.harvest_rate().to_bits()
        );
    }

    #[test]
    fn stepped_session_matches_uninterrupted_crawl_bit_for_bit() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let opts = ResilienceOptions::injected(0x57E9, 0.05, 2);

        let mut baseline = FocusedCrawler::new(&web, nb.clone(), resilient_config());
        let (base_report, base_ckpts) = baseline.crawl_resilient(seeds.clone(), &opts);

        let mut session = CrawlSession::start(
            FocusedCrawler::new(&web, nb, resilient_config()),
            seeds,
            &opts,
        );
        let mut pages = 0;
        while session.step_round() {
            let (rel, irr) = session.take_new_pages();
            pages += rel.len() + irr.len();
        }
        let (rel, irr) = session.take_new_pages();
        pages += rel.len() + irr.len();

        assert!(session.is_done());
        assert_eq!(
            pages,
            base_report.relevant.len() + base_report.irrelevant.len(),
            "delta pages do not add up to the full report"
        );
        assert_eq!(
            baseline.state_digest(&base_report),
            session.state_digest(),
            "stepped session state diverged from the uninterrupted crawl"
        );
        assert_eq!(
            base_report.simulated_secs.to_bits(),
            session.report().simulated_secs.to_bits()
        );
        assert_eq!(base_report.resilience, session.report().resilience);
        // cadence checkpoints sealed mid-stepping are byte-identical to
        // the uninterrupted run's
        let stepped_ckpts = session.take_cadence_checkpoints();
        assert_eq!(base_ckpts.len(), stepped_ckpts.len());
        for (a, b) in base_ckpts.iter().zip(&stepped_ckpts) {
            assert_eq!(a.as_bytes(), b.as_bytes(), "cadence checkpoint diverged");
        }
    }

    #[test]
    fn session_resumed_from_mid_checkpoint_replays_identically() {
        let (web, nb) = setup();
        let seeds = biomedical_seeds(&web, 20);
        let opts = ResilienceOptions::injected(0xBEE5, 0.05, 2);

        let mut straight = CrawlSession::start(
            FocusedCrawler::new(&web, nb.clone(), resilient_config()),
            seeds.clone(),
            &opts,
        );
        let mut frame_at_3 = None;
        while straight.step_round() {
            if straight.round() == 3 {
                frame_at_3 = Some(straight.checkpoint());
            }
        }
        let frame = frame_at_3.expect("crawl ended before round 3");

        let mut resumed = CrawlSession::resume(
            &web,
            &frame,
            resilient_config(),
            &opts,
            None,
            Arc::new(Observer::new()),
        )
        .unwrap();
        assert_eq!(resumed.round(), 3);
        // pages from before the kill are not re-delivered
        let (rel, irr) = resumed.take_new_pages();
        assert!(rel.is_empty() && irr.is_empty(), "resume re-delivered old pages");
        while resumed.step_round() {}

        assert_eq!(
            straight.state_digest(),
            resumed.state_digest(),
            "resumed session diverged from the uninterrupted one"
        );
        assert_eq!(
            straight.report().simulated_secs.to_bits(),
            resumed.report().simulated_secs.to_bits()
        );
    }
}
