//! Synthetic web graph generator.
//!
//! The crawler needs a web to crawl. This module generates one with the
//! structural properties the paper's crawl encountered:
//!
//! - **topical locality** (Davison 2000): relevant pages mostly link to
//!   relevant pages — the assumption focused crawling rests on;
//! - **weakly-linked biomedical sites**: "most often, all outgoing links
//!   from a page were navigational leading to pages on the same host" —
//!   biomedical hosts have a high intra-host link fraction, which is what
//!   empties a focused frontier;
//! - **authoritative front pages**: every host has a link-dense, content-
//!   poor front page (what general-term search queries return, and what the
//!   classifier then rejects — the paper's first-crawl failure);
//! - **spider traps**: a fraction of hosts serve unbounded dynamically
//!   generated link chains;
//! - **dirty page mix**: non-English, non-text, and too-short pages at the
//!   rates the paper's filter chain measured (14 %, 9.5 %, 17 %);
//! - **hub hosts** (wikipedia/blogger/slideshare analogues) that are
//!   linked from everywhere and host mixed content (Table 2's "seemingly
//!   irrelevant sites [that] often also contain some biomedical material").

use crate::url::Url;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use websift_stats::sampling::{log_normal, Zipf};

/// Identifier of a statically generated page (index into the graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct PageId(pub u32);

/// What kind of payload a page serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PageFlavor {
    /// Regular content page (relevant or irrelevant per its host).
    Content,
    /// A host front page: link-dense, little prose.
    FrontPage,
    /// Page in a non-English language.
    NonEnglish,
    /// Binary/PDF/slides payload.
    NonText,
    /// Under-construction stub, too short to analyze.
    TooShort,
}

/// Per-host metadata.
#[derive(Debug, Clone, Serialize)]
pub struct HostInfo {
    pub name: String,
    /// Host carries biomedical content.
    pub biomedical: bool,
    /// Hub host: linked from everywhere, mixed content.
    pub hub: bool,
    /// Host serves an unbounded dynamic link chain under `/trap/`.
    pub spider_trap: bool,
    /// robots.txt crawl-delay in simulated milliseconds.
    pub crawl_delay_ms: u64,
    /// robots.txt disallowed path prefix, if any.
    pub disallow_prefix: Option<String>,
    /// Global page-index range `[start, end)` of this host's pages.
    pub page_range: (u32, u32),
}

/// Per-page metadata.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PageInfo {
    pub host: u32,
    pub flavor: PageFlavor,
    /// Content is biomedical (the gold label for classifier evaluation).
    pub relevant: bool,
}

/// Generator configuration. Defaults are calibrated to the paper's crawl
/// statistics (filter reductions, harvest rate regime, frontier behaviour).
#[derive(Debug, Clone, Copy)]
pub struct WebGraphConfig {
    pub hosts: usize,
    pub pages_per_host_median: f64,
    pub pages_per_host_sigma: f64,
    /// Fraction of hosts carrying biomedical content.
    pub biomedical_host_fraction: f64,
    /// Probability a cross-host link from a relevant page targets a
    /// biomedical host.
    pub topical_locality: f64,
    /// Fraction of links that stay on the same host, for biomedical hosts
    /// (the "weakly linked" observation) and for other hosts.
    pub intra_host_fraction_biomedical: f64,
    pub intra_host_fraction_other: f64,
    pub out_degree_median: f64,
    pub out_degree_sigma: f64,
    /// Fraction of hosts that are spider traps.
    pub spider_trap_fraction: f64,
    /// Page-flavor rates (match the paper's filter reductions).
    pub p_non_english: f64,
    pub p_non_text: f64,
    pub p_too_short: f64,
    /// Fraction of pages on biomedical hosts whose content is nonetheless
    /// out of domain (about-us pages etc.), and vice versa.
    pub offtopic_on_biomedical: f64,
    pub ontopic_on_other: f64,
    /// Cross-host biomedical links only ever point at the most popular
    /// `popular_biomedical_hosts` biomedical hosts (portals). The long tail
    /// of biomedical sites has no biomedical in-links at all — the paper's
    /// "biomedical sites generally are only weakly linked", and the reason
    /// crawl size is bounded by the seed list.
    pub popular_biomedical_hosts: usize,
    pub seed: u64,
}

impl Default for WebGraphConfig {
    fn default() -> WebGraphConfig {
        WebGraphConfig {
            hosts: 600,
            pages_per_host_median: 45.0,
            pages_per_host_sigma: 0.9,
            biomedical_host_fraction: 0.32,
            topical_locality: 0.55,
            intra_host_fraction_biomedical: 0.85,
            intra_host_fraction_other: 0.60,
            out_degree_median: 10.0,
            out_degree_sigma: 0.7,
            spider_trap_fraction: 0.02,
            p_non_english: 0.19,
            p_non_text: 0.15,
            p_too_short: 0.17,
            offtopic_on_biomedical: 0.45,
            ontopic_on_other: 0.03,
            popular_biomedical_hosts: 25,
            seed: 0xC0FFEE,
        }
    }
}

impl WebGraphConfig {
    /// A small graph for unit tests.
    pub fn tiny() -> WebGraphConfig {
        WebGraphConfig {
            hosts: 40,
            pages_per_host_median: 12.0,
            ..WebGraphConfig::default()
        }
    }
}

const BIOMED_ROOTS: &[&str] = &[
    "cancer", "health", "medinfo", "genetics", "biomed", "clinic", "disease", "drugs", "pubgene",
    "oncology", "cardio", "neuro", "pharma", "wellness", "diagnosis", "therapy", "nursing",
    "labresults", "pathology", "vaccines",
];
const OTHER_ROOTS: &[&str] = &[
    "news", "shop", "sports", "travel", "games", "music", "finance", "auto", "fashion", "food",
    "movies", "realestate", "jobs", "weather", "photo", "forum", "tech", "crafts", "pets",
    "garden",
];
const TLDS: &[&str] = &["org", "com", "net", "gov", "edu", "info"];

/// Hub hosts injected verbatim (Table 2 flavor).
const HUBS: &[(&str, bool)] = &[
    ("wikipedia.example.org", true),
    ("blogger.example.com", false),
    ("slideshare.example.net", false),
    ("dictionary.example.com", false),
    ("naturejournal.example.org", true),
    ("arxiv.example.org", true),
];

/// The generated graph.
#[derive(Debug, Clone)]
pub struct WebGraph {
    config: WebGraphConfig,
    hosts: Vec<HostInfo>,
    pages: Vec<PageInfo>,
    links: Vec<Vec<u32>>,
}

impl WebGraph {
    /// Generates a web deterministically from `config.seed`.
    pub fn generate(config: WebGraphConfig) -> WebGraph {
        assert!(config.hosts >= HUBS.len() + 4, "need at least {} hosts", HUBS.len() + 4);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // --- hosts
        let mut hosts: Vec<HostInfo> = Vec::with_capacity(config.hosts);
        for (name, biomedical) in HUBS {
            hosts.push(HostInfo {
                name: name.to_string(),
                biomedical: *biomedical,
                hub: true,
                spider_trap: false,
                crawl_delay_ms: 50,
                disallow_prefix: None,
                page_range: (0, 0),
            });
        }
        while hosts.len() < config.hosts {
            let i = hosts.len();
            let biomedical = rng.random::<f64>() < config.biomedical_host_fraction;
            let root = if biomedical {
                BIOMED_ROOTS[i % BIOMED_ROOTS.len()]
            } else {
                OTHER_ROOTS[i % OTHER_ROOTS.len()]
            };
            let tld = TLDS[rng.random_range(0..TLDS.len())];
            hosts.push(HostInfo {
                name: format!("{root}{}.example.{tld}", i),
                biomedical,
                hub: false,
                spider_trap: rng.random::<f64>() < config.spider_trap_fraction,
                crawl_delay_ms: [20u64, 50, 100, 200][rng.random_range(0..4)],
                disallow_prefix: if rng.random::<f64>() < 0.2 {
                    Some("/private".to_string())
                } else {
                    None
                },
                page_range: (0, 0),
            });
        }

        // --- pages
        let mut pages: Vec<PageInfo> = Vec::new();
        for (h, host) in hosts.iter_mut().enumerate() {
            let base = if host.hub { 4.0 } else { 1.0 };
            let n = (log_normal(&mut rng, (config.pages_per_host_median * base).ln(),
                config.pages_per_host_sigma)
                .round()
                .clamp(3.0, 2000.0)) as usize;
            let start = pages.len() as u32;
            for p in 0..n {
                let flavor = if p == 0 {
                    PageFlavor::FrontPage
                } else {
                    let r: f64 = rng.random();
                    if r < config.p_non_text {
                        PageFlavor::NonText
                    } else if r < config.p_non_text + config.p_non_english {
                        PageFlavor::NonEnglish
                    } else if r < config.p_non_text + config.p_non_english + config.p_too_short {
                        PageFlavor::TooShort
                    } else {
                        PageFlavor::Content
                    }
                };
                // Gold relevance of the *content*.
                let relevant = if host.hub {
                    // hubs: mixed content, mostly out of domain
                    rng.random::<f64>() < 0.15
                } else if host.biomedical {
                    rng.random::<f64>() >= config.offtopic_on_biomedical
                } else {
                    rng.random::<f64>() < config.ontopic_on_other
                };
                let relevant = relevant && matches!(flavor, PageFlavor::Content);
                pages.push(PageInfo {
                    host: h as u32,
                    flavor,
                    relevant,
                });
            }
            host.page_range = (start, pages.len() as u32);
        }

        // --- links
        // Host popularity (for preferential attachment): Zipf over a fixed
        // deterministic permutation, hubs boosted.
        let host_zipf = Zipf::new(hosts.len(), 1.0);
        let biomed_hosts: Vec<u32> = hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.biomedical)
            .map(|(i, _)| i as u32)
            .collect();
        let other_hosts: Vec<u32> = hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.biomedical)
            .map(|(i, _)| i as u32)
            .collect();

        let mut links: Vec<Vec<u32>> = Vec::with_capacity(pages.len());
        for (pid, page) in pages.iter().enumerate() {
            let host = &hosts[page.host as usize];
            let (range_start, range_end) = host.page_range;
            let host_pages = (range_end - range_start) as usize;

            let degree = if page.flavor == PageFlavor::FrontPage {
                // front pages are link-dense
                host_pages.clamp(5, 40)
            } else if page.flavor == PageFlavor::NonText {
                0
            } else {
                log_normal(&mut rng, config.out_degree_median.ln(), config.out_degree_sigma)
                    .round()
                    .clamp(0.0, 120.0) as usize
            };

            let intra_frac = if host.biomedical {
                config.intra_host_fraction_biomedical
            } else {
                config.intra_host_fraction_other
            };

            let mut out: Vec<u32> = Vec::with_capacity(degree);
            for _ in 0..degree {
                if rng.random::<f64>() < intra_frac || host_pages <= 1 {
                    // navigational intra-host link
                    if host_pages > 1 {
                        let t = range_start + rng.random_range(0..host_pages) as u32;
                        if t != pid as u32 {
                            out.push(t);
                        }
                    }
                } else {
                    // cross-host link with topical locality + preferential
                    // attachment within the chosen topic pool.
                    let target_biomed = if page.relevant {
                        rng.random::<f64>() < config.topical_locality
                    } else {
                        rng.random::<f64>() < 0.05
                    };
                    let pool: &[u32] = if target_biomed {
                        let cap = config.popular_biomedical_hosts.max(1).min(biomed_hosts.len());
                        &biomed_hosts[..cap]
                    } else {
                        &other_hosts
                    };
                    if pool.is_empty() {
                        continue;
                    }
                    // preferential attachment: rank-biased host pick
                    let rank = host_zipf.sample(&mut rng) % pool.len();
                    let th = pool[rank] as usize;
                    let (ts, te) = hosts[th].page_range;
                    if te > ts {
                        // bias toward the front page (how the web links)
                        let t = if rng.random::<f64>() < 0.5 {
                            ts
                        } else {
                            ts + rng.random_range(0..(te - ts))
                        };
                        out.push(t);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            links.push(out);
        }

        WebGraph {
            config,
            hosts,
            pages,
            links,
        }
    }

    pub fn config(&self) -> &WebGraphConfig {
        &self.config
    }

    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    pub fn hosts(&self) -> &[HostInfo] {
        &self.hosts
    }

    pub fn page(&self, id: PageId) -> &PageInfo {
        &self.pages[id.0 as usize]
    }

    pub fn pages(&self) -> &[PageInfo] {
        &self.pages
    }

    /// Static outgoing links of a page.
    pub fn links(&self, id: PageId) -> &[u32] {
        &self.links[id.0 as usize]
    }

    /// Full adjacency (for PageRank over the whole web).
    pub fn adjacency(&self) -> &[Vec<u32>] {
        &self.links
    }

    /// The URL of a page.
    pub fn url_of(&self, id: PageId) -> Url {
        let page = &self.pages[id.0 as usize];
        let host = &self.hosts[page.host as usize];
        let local = id.0 - host.page_range.0;
        if local == 0 {
            Url::new(&host.name, "/")
        } else {
            let ext = match page.flavor {
                PageFlavor::NonText => "pdf",
                _ => "html",
            };
            Url::new(&host.name, &format!("/p{}.{ext}", id.0))
        }
    }

    /// Resolves a URL back to a static page, if it addresses one.
    pub fn page_at(&self, url: &Url) -> Option<PageId> {
        let host_idx = self.host_by_name(url.host())?;
        let host = &self.hosts[host_idx];
        if url.path() == "/" {
            return Some(PageId(host.page_range.0));
        }
        let stem = url
            .path()
            .strip_prefix("/p")?
            .split('.')
            .next()
            .unwrap_or("");
        let id: u32 = stem.parse().ok()?;
        if id >= host.page_range.0 && id < host.page_range.1 && id != host.page_range.0 {
            Some(PageId(id))
        } else {
            None
        }
    }

    /// Finds a host index by name.
    pub fn host_by_name(&self, name: &str) -> Option<usize> {
        self.hosts.iter().position(|h| h.name == name)
    }

    /// Gold relevance fraction over all content (for calibration tests).
    pub fn relevant_fraction(&self) -> f64 {
        let r = self.pages.iter().filter(|p| p.relevant).count();
        r as f64 / self.pages.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WebGraph {
        WebGraph::generate(WebGraphConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.num_pages(), b.num_pages());
        assert_eq!(a.links(PageId(5)), b.links(PageId(5)));
    }

    #[test]
    fn hosts_have_front_pages() {
        let g = tiny();
        for h in g.hosts() {
            let first = g.page(PageId(h.page_range.0));
            assert_eq!(first.flavor, PageFlavor::FrontPage);
        }
    }

    #[test]
    fn url_roundtrip() {
        let g = tiny();
        for id in [0u32, 1, 7, g.num_pages() as u32 - 1] {
            let url = g.url_of(PageId(id));
            let back = g.page_at(&url).expect("roundtrip");
            assert_eq!(back.0, id, "url {url}");
        }
    }

    #[test]
    fn links_point_to_valid_pages() {
        let g = tiny();
        for p in 0..g.num_pages() {
            for &t in g.links(PageId(p as u32)) {
                assert!((t as usize) < g.num_pages());
            }
        }
    }

    #[test]
    fn flavor_rates_are_roughly_calibrated() {
        let g = WebGraph::generate(WebGraphConfig::default());
        let cfg = WebGraphConfig::default();
        let n = g.num_pages() as f64;
        let count = |f: PageFlavor| g.pages().iter().filter(|p| p.flavor == f).count() as f64 / n;
        assert!((count(PageFlavor::NonText) - cfg.p_non_text).abs() < 0.03);
        assert!((count(PageFlavor::NonEnglish) - cfg.p_non_english).abs() < 0.03);
        assert!((count(PageFlavor::TooShort) - cfg.p_too_short).abs() < 0.04);
    }

    #[test]
    fn topical_locality_holds() {
        let g = WebGraph::generate(WebGraphConfig::default());
        let mut rel_to_rel = 0usize;
        let mut rel_cross = 0usize;
        for p in 0..g.num_pages() {
            let page = g.page(PageId(p as u32));
            if !page.relevant {
                continue;
            }
            for &t in g.links(PageId(p as u32)) {
                let target = g.page(PageId(t));
                if target.host != page.host {
                    rel_cross += 1;
                    let th = &g.hosts()[target.host as usize];
                    if th.biomedical {
                        rel_to_rel += 1;
                    }
                }
            }
        }
        assert!(rel_cross > 0);
        let locality = rel_to_rel as f64 / rel_cross as f64;
        let expected = WebGraphConfig::default().topical_locality;
        assert!(
            locality > expected - 0.12,
            "locality {locality} vs configured {expected}"
        );
    }

    #[test]
    fn biomedical_hosts_are_weakly_linked() {
        let g = WebGraph::generate(WebGraphConfig::default());
        let mut bio_intra = 0usize;
        let mut bio_total = 0usize;
        for p in 0..g.num_pages() {
            let page = g.page(PageId(p as u32));
            let host = &g.hosts()[page.host as usize];
            if !host.biomedical || host.hub {
                continue;
            }
            for &t in g.links(PageId(p as u32)) {
                bio_total += 1;
                if g.page(PageId(t)).host == page.host {
                    bio_intra += 1;
                }
            }
        }
        let frac = bio_intra as f64 / bio_total.max(1) as f64;
        assert!(frac > 0.7, "intra-host fraction {frac}");
    }

    #[test]
    fn some_spider_traps_exist_at_default_scale() {
        let g = WebGraph::generate(WebGraphConfig::default());
        assert!(g.hosts().iter().any(|h| h.spider_trap));
    }

    #[test]
    fn hub_hosts_present() {
        let g = tiny();
        assert!(g.host_by_name("wikipedia.example.org").is_some());
        assert!(g.hosts()[0].hub);
    }
}
