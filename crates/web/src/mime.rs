//! MIME type detection (extension heuristics + content sniffing).
//!
//! The paper singles this out as an open problem: "Large files downloaded
//! during crawl are often not textual but embedded presentation slides or
//! formatted documents, which were wrongly classified as plain textual ...
//! detecting MIME-types usually is carried out by regular expression
//! matching on the file name extension or by analyzing the first n bytes of
//! a document" (they used Apache Tika with "a handful [of] common
//! MIME-types"). This module implements exactly that class of detector —
//! extension table plus magic-byte sniffing — including its documented
//! blind spots (e.g. binary payloads served under a `.html` path).

use serde::Serialize;

/// The MIME classes the crawler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum MimeType {
    Html,
    PlainText,
    Pdf,
    Image,
    Archive,
    Binary,
    Unknown,
}

impl MimeType {
    /// Is this a textual type the pipeline can analyze?
    pub fn is_textual(self) -> bool {
        matches!(self, MimeType::Html | MimeType::PlainText)
    }
}

/// Extension-based guess from the URL path.
pub fn mime_from_extension(path: &str) -> MimeType {
    let lower = path.to_lowercase();
    let ext = lower.rsplit('.').next().unwrap_or("");
    match ext {
        "html" | "htm" | "php" | "asp" | "jsp" => MimeType::Html,
        "txt" | "text" | "md" => MimeType::PlainText,
        "pdf" => MimeType::Pdf,
        "jpg" | "jpeg" | "png" | "gif" | "bmp" | "svg" => MimeType::Image,
        "zip" | "gz" | "tar" | "ppt" | "pptx" | "doc" | "docx" | "xls" => MimeType::Archive,
        "exe" | "bin" | "iso" => MimeType::Binary,
        _ => MimeType::Unknown,
    }
}

/// Magic-byte sniffing over the first bytes of the body, Tika-style.
pub fn sniff_magic(body: &[u8]) -> MimeType {
    if body.starts_with(b"%PDF") {
        return MimeType::Pdf;
    }
    if body.starts_with(b"\x89PNG") || body.starts_with(b"GIF8") || body.starts_with(b"\xff\xd8\xff")
    {
        return MimeType::Image;
    }
    if body.starts_with(b"PK\x03\x04") || body.starts_with(b"\x1f\x8b") {
        return MimeType::Archive;
    }
    let head: Vec<u8> = body.iter().take(512).copied().collect();
    let head_lower: Vec<u8> = head.iter().map(u8::to_ascii_lowercase).collect();
    if contains(&head_lower, b"<!doctype html") || contains(&head_lower, b"<html") {
        return MimeType::Html;
    }
    // Heuristic text check: mostly printable ASCII/UTF-8 in the prefix.
    if !head.is_empty() {
        let printable = head
            .iter()
            .filter(|&&b| b == b'\n' || b == b'\r' || b == b'\t' || (0x20..0x7f).contains(&b) || b >= 0x80)
            .count();
        if printable as f64 / head.len() as f64 > 0.92 {
            // could still be HTML without a doctype
            return if contains(&head_lower, b"<p>") || contains(&head_lower, b"<div") {
                MimeType::Html
            } else {
                MimeType::PlainText
            };
        }
        return MimeType::Binary;
    }
    MimeType::Unknown
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Combined detection: sniff the content, fall back to the extension for
/// ambiguous prefixes. This mirrors the precedence real detectors use and
/// inherits their weakness: a document whose *prefix* looks textual is
/// classified textual even if the tail is an embedded binary object.
pub fn sniff_mime(path: &str, body: &[u8]) -> MimeType {
    match sniff_magic(body) {
        MimeType::Unknown => mime_from_extension(path),
        found => found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_table() {
        assert_eq!(mime_from_extension("/a/b/page.html"), MimeType::Html);
        assert_eq!(mime_from_extension("/x.pdf"), MimeType::Pdf);
        assert_eq!(mime_from_extension("/x.PNG"), MimeType::Image);
        assert_eq!(mime_from_extension("/slides.pptx"), MimeType::Archive);
        assert_eq!(mime_from_extension("/no-extension"), MimeType::Unknown);
    }

    #[test]
    fn magic_bytes_win_over_extension() {
        assert_eq!(sniff_mime("/fake.html", b"%PDF-1.4 junk"), MimeType::Pdf);
        assert_eq!(
            sniff_mime("/fake.txt", b"\x89PNG\r\n\x1a\n...."),
            MimeType::Image
        );
    }

    #[test]
    fn html_detection() {
        assert_eq!(sniff_magic(b"<!DOCTYPE html><html>..."), MimeType::Html);
        assert_eq!(sniff_magic(b"  <HTML><body>"), MimeType::Html);
        assert_eq!(sniff_magic(b"<div class=x>no doctype</div>"), MimeType::Html);
    }

    #[test]
    fn plain_text_detection() {
        assert_eq!(
            sniff_magic(b"Just some ordinary prose about genes."),
            MimeType::PlainText
        );
    }

    #[test]
    fn binary_junk_detected() {
        let junk: Vec<u8> = (0u8..=255).cycle().take(600).collect();
        assert_eq!(sniff_magic(&junk), MimeType::Binary);
    }

    #[test]
    fn blind_spot_textual_prefix_with_binary_tail() {
        // The documented failure: an embedded-slides page with a textual
        // prefix is classified textual.
        let mut body = b"<html><body>download our slides".to_vec();
        body.extend(std::iter::repeat_n(0u8, 10_000));
        assert_eq!(sniff_mime("/slides.html", &body), MimeType::Html);
    }

    #[test]
    fn textual_predicate() {
        assert!(MimeType::Html.is_textual());
        assert!(MimeType::PlainText.is_textual());
        assert!(!MimeType::Pdf.is_textual());
        assert!(!MimeType::Binary.is_textual());
    }

    #[test]
    fn empty_body_is_unknown_then_extension() {
        assert_eq!(sniff_mime("/x.html", b""), MimeType::Html);
        assert_eq!(sniff_mime("/x", b""), MimeType::Unknown);
    }
}
