//! A minimal URL type sufficient for crawling the simulated web.

use serde::Serialize;
use std::fmt;

/// An absolute `http` URL: host plus path (no scheme variations, query
/// strings folded into the path).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct Url {
    host: String,
    path: String,
}

/// URL parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlError {
    MissingScheme,
    EmptyHost,
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::MissingScheme => write!(f, "missing http:// scheme"),
            UrlError::EmptyHost => write!(f, "empty host"),
        }
    }
}

impl std::error::Error for UrlError {}

/// URLs participate in crawl checkpoints (frontier, status store,
/// LinkDB). Encoded as raw parts; `host` is stored lowercased and
/// `path` with its leading `/`, so re-encoding a decoded URL is
/// byte-identical.
impl websift_resilience::Snapshot for Url {
    fn encode(&self, w: &mut websift_resilience::Writer) {
        w.str(&self.host);
        w.str(&self.path);
    }

    fn decode(
        r: &mut websift_resilience::Reader<'_>,
    ) -> Result<Url, websift_resilience::CodecError> {
        let host = r.str()?;
        let path = r.str()?;
        Ok(Url { host, path })
    }
}

impl Url {
    /// Parses an absolute URL. Accepts `http://` and `https://`.
    pub fn parse(s: &str) -> Result<Url, UrlError> {
        let rest = s
            .strip_prefix("http://")
            .or_else(|| s.strip_prefix("https://"))
            .ok_or(UrlError::MissingScheme)?;
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        Ok(Url {
            host: host.to_lowercase(),
            path: if path.is_empty() { "/".into() } else { path.into() },
        })
    }

    /// Builds a URL from parts. `path` gets a leading `/` if missing.
    pub fn new(host: &str, path: &str) -> Url {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            host: host.to_lowercase(),
            path,
        }
    }

    pub fn host(&self) -> &str {
        &self.host
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// Resolves a link found on this page: absolute URLs parse directly,
    /// host-relative (`/x`) and page-relative (`x`) resolve against `self`.
    pub fn join(&self, link: &str) -> Result<Url, UrlError> {
        if link.starts_with("http://") || link.starts_with("https://") {
            return Url::parse(link);
        }
        if let Some(rest) = link.strip_prefix('/') {
            return Ok(Url::new(&self.host, &format!("/{rest}")));
        }
        // page-relative: resolve against the parent directory
        let dir = match self.path.rfind('/') {
            Some(i) => &self.path[..=i],
            None => "/",
        };
        Ok(Url::new(&self.host, &format!("{dir}{link}")))
    }

    /// The registrable "domain" used for per-domain statistics (here the
    /// full host, since the simulated web has flat hostnames).
    pub fn domain(&self) -> &str {
        &self.host
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}{}", self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_urls() {
        let u = Url::parse("http://cancer.example/info/page1").unwrap();
        assert_eq!(u.host(), "cancer.example");
        assert_eq!(u.path(), "/info/page1");
        assert_eq!(u.to_string(), "http://cancer.example/info/page1");
    }

    #[test]
    fn parses_https_and_bare_host() {
        let u = Url::parse("https://x.example").unwrap();
        assert_eq!(u.path(), "/");
    }

    #[test]
    fn rejects_bad_urls() {
        assert_eq!(Url::parse("ftp://x/"), Err(UrlError::MissingScheme));
        assert_eq!(Url::parse("http:///p"), Err(UrlError::EmptyHost));
    }

    #[test]
    fn host_is_lowercased() {
        let u = Url::parse("http://CANCER.Example/P").unwrap();
        assert_eq!(u.host(), "cancer.example");
        assert_eq!(u.path(), "/P");
    }

    #[test]
    fn join_absolute_and_relative() {
        let base = Url::parse("http://a.example/dir/page").unwrap();
        assert_eq!(
            base.join("http://b.example/x").unwrap().host(),
            "b.example"
        );
        assert_eq!(base.join("/root").unwrap().path(), "/root");
        assert_eq!(base.join("sibling").unwrap().path(), "/dir/sibling");
    }

    #[test]
    fn urls_hash_and_order() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Url::new("a.example", "/1"));
        set.insert(Url::new("a.example", "/1"));
        set.insert(Url::new("a.example", "/2"));
        assert_eq!(set.len(), 2);
    }
}
