//! PageRank over adjacency lists (power iteration with damping).
//!
//! Table 2 of the paper ranks the top-30 domains of the crawl by PageRank;
//! this is the implementation the experiment harness uses on the crawler's
//! LinkDB.

/// Computes PageRank scores for a graph given as adjacency lists
/// (`links[i]` = targets of node `i`). Dangling nodes distribute their mass
/// uniformly. Returns scores summing to ~1.
pub fn pagerank(links: &[Vec<u32>], damping: f64, iterations: usize) -> Vec<f64> {
    let n = links.len();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..=1.0).contains(&damping), "damping in [0,1]");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling = 0.0;
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (i, out) in links.iter().enumerate() {
            if out.is_empty() {
                dangling += rank[i];
            } else {
                let share = rank[i] / out.len() as f64;
                for &t in out {
                    next[t as usize] += share;
                }
            }
        }
        let dangling_share = dangling / n as f64;
        for v in next.iter_mut() {
            *v = (1.0 - damping) * uniform + damping * (*v + dangling_share);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Aggregates node scores into group scores (e.g. page scores → domain
/// scores). `group[i]` is the group id of node `i`; returns per-group sums
/// of length `num_groups`.
pub fn aggregate_by_group(scores: &[f64], group: &[u32], num_groups: usize) -> Vec<f64> {
    assert_eq!(scores.len(), group.len());
    let mut out = vec![0.0; num_groups];
    for (s, &g) in scores.iter().zip(group) {
        out[g as usize] += s;
    }
    out
}

/// Returns indices of the top-`k` scores, descending.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        assert!(pagerank(&[], 0.85, 10).is_empty());
    }

    #[test]
    fn scores_sum_to_one() {
        let links = vec![vec![1, 2], vec![2], vec![0], vec![]]; // node 3 dangling
        let r = pagerank(&links, 0.85, 50);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn hub_gets_highest_rank() {
        // star graph: everyone links to node 0
        let links = vec![vec![], vec![0], vec![0], vec![0], vec![0]];
        let r = pagerank(&links, 0.85, 50);
        for i in 1..5 {
            assert!(r[0] > r[i]);
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let links = vec![vec![1], vec![2], vec![0]];
        let r = pagerank(&links, 0.85, 100);
        for &s in &r {
            assert!((s - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn aggregation_and_topk() {
        let scores = [0.1, 0.4, 0.2, 0.3];
        let groups = [0u32, 1, 0, 1];
        let agg = aggregate_by_group(&scores, &groups, 2);
        assert!((agg[0] - 0.3).abs() < 1e-12);
        assert!((agg[1] - 0.7).abs() < 1e-12);
        assert_eq!(top_k(&agg, 2), vec![1, 0]);
        assert_eq!(top_k(&scores, 2), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "damping in [0,1]")]
    fn rejects_bad_damping() {
        pagerank(&[vec![]], 1.5, 1);
    }
}
