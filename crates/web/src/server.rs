//! The simulated web server: deterministic page content, robots.txt,
//! spider traps, and fetch accounting.
//!
//! [`SimulatedWeb`] is the substitute for the live internet. Fetching is
//! deterministic in `(graph seed, url)`, so crawls are reproducible — the
//! property the paper laments real crawls lack ("experiments cannot be
//! repeated due to the highly dynamic nature of the web"); our substitute
//! deliberately removes that obstacle while keeping every other hostile
//! property (traps, broken markup, mixed languages, binary payloads).

use crate::graph::{PageFlavor, PageId, WebGraph};
use crate::mime::MimeType;
use crate::url::Url;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use websift_corpus::{CorpusKind, Generator, HtmlConfig, Lexicon};

/// Fetch failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    HostNotFound(String),
    NotFound(Url),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::HostNotFound(h) => write!(f, "host not found: {h}"),
            FetchError::NotFound(u) => write!(f, "404: {u}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A fetched response.
#[derive(Debug, Clone)]
pub struct FetchResponse {
    pub url: Url,
    /// The Content-Type the server *declares* (which, as the paper notes,
    /// may not match the payload).
    pub declared_mime: MimeType,
    pub body: Vec<u8>,
    /// Simulated wall-clock latency of this fetch in milliseconds.
    pub latency_ms: u64,
}

/// Parsed robots.txt rules for one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobotsRules {
    pub crawl_delay_ms: u64,
    pub disallow: Vec<String>,
}

impl RobotsRules {
    pub fn allows(&self, path: &str) -> bool {
        !self.disallow.iter().any(|d| path.starts_with(d.as_str()))
    }
}

const GERMAN_FILLER: &str = "Die Untersuchung der Krankheit hat gezeigt dass die Behandlung \
    mit dem neuen Medikament bei den meisten Patienten wirksam war und dass weitere Studien \
    notwendig sind um die Ergebnisse zu bestätigen. Die Forscher haben die Daten von vielen \
    Patienten gesammelt und ausgewertet.";
const FRENCH_FILLER: &str = "L'étude de la maladie a montré que le traitement avec le nouveau \
    médicament était efficace chez la plupart des patients et que des études supplémentaires \
    sont nécessaires pour confirmer les résultats. Les chercheurs ont recueilli et analysé les \
    données de nombreux patients.";

/// The simulated web.
pub struct SimulatedWeb {
    graph: Arc<WebGraph>,
    relevant_gen: Generator,
    irrelevant_gen: Generator,
    fetches: AtomicU64,
}

impl SimulatedWeb {
    /// Wraps a graph, using the shared default lexicon for content.
    pub fn new(graph: WebGraph) -> SimulatedWeb {
        let seed = graph.config().seed;
        SimulatedWeb {
            graph: Arc::new(graph),
            relevant_gen: Generator::new(CorpusKind::RelevantWeb, seed ^ 0xA11CE),
            irrelevant_gen: Generator::new(CorpusKind::IrrelevantWeb, seed ^ 0xB0B),
            fetches: AtomicU64::new(0),
        }
    }

    /// Wraps a graph with content drawn from a caller-provided lexicon.
    pub fn with_lexicon(graph: WebGraph, lexicon: Arc<Lexicon>) -> SimulatedWeb {
        let seed = graph.config().seed;
        SimulatedWeb {
            relevant_gen: Generator::with_lexicon(
                CorpusKind::RelevantWeb,
                seed ^ 0xA11CE,
                lexicon.clone(),
            ),
            irrelevant_gen: Generator::with_lexicon(CorpusKind::IrrelevantWeb, seed ^ 0xB0B, lexicon),
            graph: Arc::new(graph),
            fetches: AtomicU64::new(0),
        }
    }

    pub fn graph(&self) -> &WebGraph {
        &self.graph
    }

    /// Total fetches served (politeness-rule accounting in tests).
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// The robots rules of a host, if the host exists.
    pub fn robots(&self, host: &str) -> Option<RobotsRules> {
        let idx = self.graph.host_by_name(host)?;
        let h = &self.graph.hosts()[idx];
        Some(RobotsRules {
            crawl_delay_ms: h.crawl_delay_ms,
            disallow: h.disallow_prefix.iter().cloned().collect(),
        })
    }

    /// Fetches a URL.
    pub fn fetch(&self, url: &Url) -> Result<FetchResponse, FetchError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let host_idx = self
            .graph
            .host_by_name(url.host())
            .ok_or_else(|| FetchError::HostNotFound(url.host().to_string()))?;
        let host = &self.graph.hosts()[host_idx];

        if url.path() == "/robots.txt" {
            let mut body = format!("User-agent: *\nCrawl-delay: {}\n", host.crawl_delay_ms);
            if let Some(d) = &host.disallow_prefix {
                body.push_str(&format!("Disallow: {d}\n"));
            }
            return Ok(self.respond(url, MimeType::PlainText, body.into_bytes()));
        }

        // Spider trap: unbounded dynamic pages.
        if host.spider_trap {
            if let Some(rest) = url.path().strip_prefix("/trap/") {
                let n: u64 = rest.parse().unwrap_or(0);
                let mut body = String::from("<html><body>");
                // enough plausible prose to pass the filters and the
                // classifier — what makes real session-id traps dangerous
                for _ in 0..6 {
                    body.push_str(
                        "<p>The archive of treatment reports describes the disease                          outcomes and the therapy responses of the patients in the                          clinical registry, including diagnosis records and gene                          expression measurements from the tumor samples collected                          during the screening program of the hospital network.</p>\n",
                    );
                }
                body.push_str("<ul>");
                for k in 1..=4u64 {
                    body.push_str(&format!(
                        "<li><a href=\"/trap/{}\">next</a></li>",
                        n.wrapping_add(k)
                    ));
                }
                body.push_str("</ul></body></html>");
                return Ok(self.respond(url, MimeType::Html, body.into_bytes()));
            }
        }

        let page_id = self
            .graph
            .page_at(url)
            .ok_or_else(|| FetchError::NotFound(url.clone()))?;
        let page = self.graph.page(page_id);

        let mut link_urls: Vec<String> = self
            .graph
            .links(page_id)
            .iter()
            .map(|&t| self.graph.url_of(PageId(t)).to_string())
            .collect();
        if host.spider_trap && page.flavor == PageFlavor::Content {
            link_urls.push(format!("http://{}/trap/0", host.name));
        }

        let (mime, body) = match page.flavor {
            PageFlavor::FrontPage => {
                let mut body = format!(
                    "<html><head><title>{} portal</title></head><body><h1>Welcome to {}</h1>\n",
                    host.name, host.name
                );
                body.push_str("<p>Your gateway to everything on this site.</p>\n<ul>\n");
                for l in &link_urls {
                    body.push_str(&format!("<li><a href=\"{l}\">section</a></li>\n"));
                }
                if host.spider_trap {
                    body.push_str("<li><a href=\"/trap/0\">archive</a></li>\n");
                }
                body.push_str("</ul></body></html>");
                (MimeType::Html, body.into_bytes())
            }
            PageFlavor::TooShort => (
                MimeType::Html,
                b"<html><body><p>Under construction.</p></body></html>".to_vec(),
            ),
            PageFlavor::NonEnglish => {
                let filler = if page_id.0 % 2 == 0 {
                    GERMAN_FILLER
                } else {
                    FRENCH_FILLER
                };
                let mut body = String::from("<html><body>");
                for _ in 0..4 {
                    body.push_str(&format!("<p>{filler}</p>\n"));
                }
                for l in link_urls.iter().take(3) {
                    body.push_str(&format!("<a href=\"{l}\">mehr</a>\n"));
                }
                body.push_str("</body></html>");
                (MimeType::Html, body.into_bytes())
            }
            PageFlavor::NonText => {
                // Binary payload. A third of these declare a textual type
                // and carry a textual prefix — the paper's mis-detected
                // "embedded presentation slides".
                let mut body: Vec<u8>;
                let declared;
                if page_id.0 % 3 == 0 {
                    body = b"<html><body>presentation slides follow".to_vec();
                    body.extend((0..8000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8));
                    declared = MimeType::Html;
                } else {
                    body = b"%PDF-1.4\n".to_vec();
                    body.extend((0..8000u32).map(|i| (i.wrapping_mul(40503) >> 7) as u8));
                    declared = MimeType::Pdf;
                }
                (declared, body)
            }
            PageFlavor::Content => {
                let generator = if page.relevant {
                    &self.relevant_gen
                } else {
                    &self.irrelevant_gen
                };
                let doc = generator.document(page_id.0 as u64);
                let paragraphs: Vec<String> =
                    doc.body.split("\n\n").map(str::to_string).collect();
                let mut rng = {
                    use rand::SeedableRng;
                    rand::rngs::StdRng::seed_from_u64(
                        self.graph.config().seed ^ (page_id.0 as u64).wrapping_mul(0x9E3779B9),
                    )
                };
                let page_html = websift_corpus::wrap_page(
                    &doc.title,
                    &paragraphs,
                    &link_urls,
                    &HtmlConfig::default(),
                    &mut rng,
                );
                (MimeType::Html, page_html.html.into_bytes())
            }
        };
        Ok(self.respond(url, mime, body))
    }

    /// Gold relevance of a URL's content (evaluation only).
    pub fn gold_relevant(&self, url: &Url) -> Option<bool> {
        self.graph.page_at(url).map(|p| self.graph.page(p).relevant)
    }

    /// Gold net text of a content page (evaluation of boilerplate
    /// detection): regenerates the underlying document body.
    pub fn gold_net_text(&self, url: &Url) -> Option<String> {
        Some(self.gold_document(url)?.body)
    }

    /// The full generated document behind a content page (used by the
    /// simulated search engines to build their indexes, and by evaluation).
    pub fn gold_document(&self, url: &Url) -> Option<websift_corpus::Document> {
        let page_id = self.graph.page_at(url)?;
        let page = self.graph.page(page_id);
        if page.flavor != PageFlavor::Content {
            return None;
        }
        let generator = if page.relevant {
            &self.relevant_gen
        } else {
            &self.irrelevant_gen
        };
        Some(generator.document(page_id.0 as u64))
    }

    fn respond(&self, url: &Url, declared_mime: MimeType, body: Vec<u8>) -> FetchResponse {
        // Deterministic pseudo-latency: base + size-proportional.
        let h = url.path().len() as u64 * 7 + url.host().len() as u64 * 13;
        let latency_ms = 30 + h % 120 + (body.len() as u64 / 20_000);
        FetchResponse {
            url: url.clone(),
            declared_mime,
            body,
            latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WebGraphConfig;

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()))
    }

    #[test]
    fn fetch_front_page() {
        let w = web();
        let url = w.graph().url_of(PageId(0));
        let resp = w.fetch(&url).unwrap();
        assert_eq!(resp.declared_mime, MimeType::Html);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("Welcome"));
        assert_eq!(w.fetch_count(), 1);
    }

    #[test]
    fn fetch_is_deterministic() {
        let w = web();
        // find a content page
        let pid = (0..w.graph().num_pages() as u32)
            .find(|&i| w.graph().page(PageId(i)).flavor == PageFlavor::Content)
            .unwrap();
        let url = w.graph().url_of(PageId(pid));
        let a = w.fetch(&url).unwrap();
        let b = w.fetch(&url).unwrap();
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn robots_rules_served_and_parsed() {
        let w = web();
        let host = &w.graph().hosts()[10];
        let rules = w.robots(&host.name).unwrap();
        assert_eq!(rules.crawl_delay_ms, host.crawl_delay_ms);
        let url = Url::new(&host.name, "/robots.txt");
        let resp = w.fetch(&url).unwrap();
        assert!(String::from_utf8(resp.body).unwrap().contains("Crawl-delay"));
        if let Some(d) = &host.disallow_prefix {
            assert!(!rules.allows(&format!("{d}/x")));
        }
        assert!(rules.allows("/p5.html"));
    }

    #[test]
    fn unknown_host_and_missing_page() {
        let w = web();
        assert!(matches!(
            w.fetch(&Url::new("nonexistent.example", "/")),
            Err(FetchError::HostNotFound(_))
        ));
        let host = &w.graph().hosts()[3];
        assert!(matches!(
            w.fetch(&Url::new(&host.name, "/p999999.html")),
            Err(FetchError::NotFound(_))
        ));
    }

    #[test]
    fn spider_trap_pages_are_unbounded() {
        let w = SimulatedWeb::new(WebGraph::generate(WebGraphConfig {
            spider_trap_fraction: 1.0,
            ..WebGraphConfig::tiny()
        }));
        let trap_host = w
            .graph()
            .hosts()
            .iter()
            .find(|h| h.spider_trap)
            .unwrap()
            .name
            .clone();
        let resp = w.fetch(&Url::new(&trap_host, "/trap/7")).unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("/trap/8"));
        assert!(text.contains("/trap/11"));
    }

    #[test]
    fn content_pages_embed_their_links() {
        let w = web();
        let pid = (0..w.graph().num_pages() as u32)
            .map(PageId)
            .find(|&i| {
                w.graph().page(i).flavor == PageFlavor::Content && !w.graph().links(i).is_empty()
            })
            .unwrap();
        let url = w.graph().url_of(pid);
        let body = String::from_utf8(w.fetch(&url).unwrap().body).unwrap();
        let expect = w.graph().url_of(PageId(w.graph().links(pid)[0])).to_string();
        assert!(body.contains(&expect), "missing link {expect}");
    }

    #[test]
    fn non_text_pages_have_binary_payloads() {
        let w = web();
        let pid = (0..w.graph().num_pages() as u32)
            .map(PageId)
            .find(|&i| w.graph().page(i).flavor == PageFlavor::NonText)
            .expect("tiny graph should have a NonText page");
        let resp = w.fetch(&w.graph().url_of(pid)).unwrap();
        assert!(resp.body.len() > 4000);
    }

    #[test]
    fn gold_accessors() {
        let w = web();
        let pid = (0..w.graph().num_pages() as u32)
            .map(PageId)
            .find(|&i| w.graph().page(i).relevant)
            .unwrap();
        let url = w.graph().url_of(pid);
        assert_eq!(w.gold_relevant(&url), Some(true));
        let net = w.gold_net_text(&url).unwrap();
        assert!(!net.is_empty());
        assert!(!net.contains('<'));
    }
}
