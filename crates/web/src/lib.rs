//! Web substrate (synthetic web graph, simulated fetching, PageRank).

pub mod graph;
pub mod mime;
pub mod pagerank;
pub mod server;
pub mod url;

pub use graph::{PageId, WebGraph, WebGraphConfig};
pub use mime::{sniff_mime, MimeType};
pub use pagerank::pagerank;
pub use server::{FetchError, FetchResponse, SimulatedWeb};
pub use url::Url;
