//! Criterion benches of the crawler-side components: boilerplate
//! extraction, Naive-Bayes classification, language identification, HTML
//! link extraction, and simulated fetching — the per-page costs behind the
//! paper's 3-4 docs/s download rate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use websift_corpus::{wrap_page, CorpusKind, Generator, HtmlConfig};
use websift_crawler::{train_focus_classifier, BoilerplateDetector};
use websift_text::LanguageId;
use websift_web::{Url, WebGraph, WebGraphConfig, SimulatedWeb};

fn sample_page() -> (String, String) {
    let generator = Generator::new(CorpusKind::RelevantWeb, 55);
    let doc = generator.document(3);
    let paragraphs: Vec<String> = doc.body.split("\n\n").map(str::to_string).collect();
    let mut rng = StdRng::seed_from_u64(8);
    let page = wrap_page(&doc.title, &paragraphs, &[], &HtmlConfig::default(), &mut rng);
    (page.html, doc.body)
}

fn bench_page_processing(c: &mut Criterion) {
    let (html, body) = sample_page();
    let detector = BoilerplateDetector::default();
    let classifier = train_focus_classifier(100, 4.0, 9);
    let langid = LanguageId::new();
    let base = Url::parse("http://x.example/p.html").unwrap();

    let mut group = c.benchmark_group("page_processing");
    group.sample_size(30);
    group.bench_function("boilerplate_extract", |b| {
        b.iter(|| black_box(detector.extract(black_box(&html))))
    });
    group.bench_function("naive_bayes_classify", |b| {
        b.iter(|| black_box(classifier.predict(black_box(&body))))
    });
    group.bench_function("language_identify", |b| {
        b.iter(|| black_box(langid.detect(black_box(&body))))
    });
    group.bench_function("extract_links", |b| {
        b.iter(|| black_box(websift_crawler::parser::extract_links(&html, &base)).len())
    });
    group.bench_function("mime_sniff", |b| {
        b.iter(|| black_box(websift_web::sniff_mime("/p.html", html.as_bytes())))
    });
    group.finish();
}

fn bench_simulated_fetch(c: &mut Criterion) {
    let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()));
    let url = web.graph().url_of(websift_web::PageId(5));
    let mut group = c.benchmark_group("simulated_web");
    group.sample_size(20);
    group.bench_function("fetch_page", |b| {
        b.iter(|| black_box(web.fetch(black_box(&url))).is_ok())
    });
    group.finish();
}

criterion_group!(benches, bench_page_processing, bench_simulated_fetch);
criterion_main!(benches);
