//! Criterion benches of the data-flow engine itself: operator dispatch,
//! DoP scaling of a real flow (the wall-clock complement of Figs. 4/5),
//! Meteor compilation, and the logical optimizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use websift_flow::packages::{base, ie};
use websift_flow::{
    compile, optimize, ExecutionConfig, Executor, LogicalPlan, Operator, OperatorRegistry,
    Package, Record,
};

fn docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i);
            r.set(
                "text",
                format!(
                    "Document {i} reports that the treatment does not change the outcome. \
                     It improves the response in most patients (P < 0.01). \
                     The study confirms the result."
                ),
            );
            r
        })
        .collect()
}

fn linguistic_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("docs");
    let s = plan.add(src, ie::annotate_sentences()).expect("static plan");
    let n = plan.add(s, ie::annotate_negation()).expect("static plan");
    let p = plan.add(n, ie::annotate_pronouns()).expect("static plan");
    let q = plan.add(p, ie::annotate_parentheses()).expect("static plan");
    plan.sink(q, "out").expect("static plan");
    plan
}

fn bench_executor_dop(c: &mut Criterion) {
    let plan = linguistic_plan();
    let input = docs(400);
    let mut group = c.benchmark_group("executor_dop");
    group.sample_size(10);
    for dop in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(dop), &dop, |b, &dop| {
            b.iter(|| {
                let mut inputs = HashMap::new();
                inputs.insert("docs".to_string(), input.clone());
                let out = Executor::new(ExecutionConfig::local(dop))
                    .run(&plan, inputs)
                    .unwrap();
                black_box(out.sinks["out"].len())
            })
        });
    }
    group.finish();
}

fn bench_operator_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_dispatch");
    group.sample_size(30);
    let input = docs(2000);
    let filter = base::filter_min_length(10);
    group.bench_function("filter_2000_records", |b| {
        b.iter(|| black_box(filter.apply(input.clone())).len())
    });
    let count = base::count_by("id");
    group.bench_function("reduce_2000_records", |b| {
        b.iter(|| black_box(count.apply(input.clone())).len())
    });
    group.finish();
}

fn bench_meteor_and_optimizer(c: &mut Criterion) {
    let mut registry = OperatorRegistry::new();
    registry.register("base.identity", || {
        Operator::map("identity", Package::Base, |r| r)
    });
    registry.register("base.keep", || {
        Operator::filter("keep", Package::Base, |_| true).with_reads(&["text"])
    });
    let script = "
        $a = read 'docs';
        $b = apply base.identity $a;
        $c = apply base.keep $b;
        $d = apply base.identity $c;
        write $d 'out';
    ";
    let mut group = c.benchmark_group("frontend");
    group.bench_function("meteor_compile", |b| {
        b.iter(|| black_box(compile(black_box(script), &registry).unwrap()).len())
    });
    group.bench_function("optimize_plan", |b| {
        b.iter(|| {
            let mut plan = compile(script, &registry).unwrap();
            black_box(optimize(&mut plan)).len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_dop,
    bench_operator_dispatch,
    bench_meteor_and_optimizer
);
criterion_main!(benches);
