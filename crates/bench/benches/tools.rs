//! Criterion benches behind Fig. 3: per-tool runtime as a function of
//! input length — POS tagging (linear), dictionary NER (linear, fast),
//! CRF NER without context features (linear, slow), and CRF NER with
//! sentence-context features (quadratic, slowest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use websift_corpus::{CorpusKind, Generator, Lexicon, LexiconScale};
use websift_flow::packages::resources::labeled_to_example;
use websift_flow::{IeConfig, IeResources};
use websift_ner::crf::{CrfConfig, CrfTagger};
use websift_ner::EntityType;
use websift_text::PosTagger;

fn sample_text(chars: usize) -> String {
    let generator = Generator::new(CorpusKind::RelevantWeb, 77);
    let mut pool = String::new();
    for doc in generator.documents(10) {
        pool.push_str(&doc.body.replace('\n', " "));
        pool.push(' ');
        if pool.len() > chars + 64 {
            break;
        }
    }
    let mut end = chars.min(pool.len());
    while !pool.is_char_boundary(end) {
        end -= 1;
    }
    pool[..end].to_string()
}

fn bench_fig3(c: &mut Criterion) {
    let lexicon = Arc::new(Lexicon::generate(LexiconScale::tiny()));
    let resources = IeResources::standard(
        &lexicon,
        IeConfig {
            crf_training_sentences: 80,
            crf_epochs: 3,
            ..IeConfig::default()
        },
    );
    let heavy = {
        let generator = Generator::with_lexicon(CorpusKind::Medline, 9, lexicon.clone());
        let examples: Vec<_> = generator
            .labeled_sentences(60)
            .iter()
            .map(|ls| labeled_to_example(ls, EntityType::Gene))
            .collect();
        CrfTagger::train(
            EntityType::Gene,
            &examples,
            CrfConfig {
                dim: 1 << 14,
                epochs: 2,
                context_features: true,
                ..CrfConfig::default()
            },
        )
    };
    let pos = PosTagger::pretrained();

    let mut group = c.benchmark_group("fig3_tools");
    group.sample_size(20);
    for chars in [128usize, 512, 2048] {
        let text = sample_text(chars);
        let tokens = websift_text::tokenize::token_strings(&text);
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        group.bench_with_input(BenchmarkId::new("pos_hmm", chars), &chars, |b, _| {
            b.iter(|| black_box(pos.tag(black_box(&refs))))
        });
        let dict = &resources.dict[&EntityType::Gene];
        group.bench_with_input(BenchmarkId::new("ner_dict", chars), &chars, |b, _| {
            b.iter(|| black_box(dict.tag(black_box(&text))))
        });
        let ml = &resources.crf[&EntityType::Gene];
        group.bench_with_input(BenchmarkId::new("ner_crf", chars), &chars, |b, _| {
            b.iter(|| black_box(ml.tag(black_box(&text))))
        });
        group.bench_with_input(BenchmarkId::new("ner_crf_context", chars), &chars, |b, _| {
            b.iter(|| black_box(heavy.tag(black_box(&text))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
