//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. Aho-Corasick automaton vs naive per-term scanning for dictionary NER;
//! 2. filter ordering in the pre-selection chain (cheap-first vs
//!    expensive-first);
//! 3. optimizer on/off for a filter-behind-annotator plan;
//! 4. CRF context features on/off (quality-for-speed trade);
//! 5. text-kernel prefilters on hit-dense vs hit-sparse haystacks — the
//!    SIMD-class skipping (SWAR byte tables) only pays on sparse text,
//!    so both regimes are pinned: tokenizer byte scan, regexlite
//!    prefiltered search, and the Aho-Corasick start-byte prefilter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use websift_corpus::{CorpusKind, Generator, Lexicon, LexiconScale};
use websift_flow::packages::resources::labeled_to_example;
use websift_flow::{
    optimize, CostModel, ExecutionConfig, Executor, LogicalPlan, Operator, Package, Record,
};
use websift_ner::crf::{CrfConfig, CrfTagger};
use websift_ner::{AhoCorasick, EntityType};

fn corpus_text(chars: usize) -> String {
    let generator = Generator::new(CorpusKind::RelevantWeb, 21);
    let mut pool = String::new();
    for doc in generator.documents(8) {
        pool.push_str(&doc.body);
        pool.push(' ');
        if pool.len() > chars {
            break;
        }
    }
    pool.truncate(pool.char_indices().take_while(|&(i, _)| i < chars).count());
    pool
}

/// Ablation 1: automaton vs naive multi-pattern scan.
fn bench_dictionary_matching(c: &mut Criterion) {
    let lexicon = Lexicon::generate(LexiconScale::tiny());
    let patterns: Vec<String> = lexicon.genes().iter().map(|g| g.to_lowercase()).collect();
    let text = corpus_text(20_000).to_lowercase();
    let automaton = AhoCorasick::new(&patterns, false);

    let mut group = c.benchmark_group("ablation_dict_matching");
    group.sample_size(20);
    group.bench_function("aho_corasick", |b| {
        b.iter(|| black_box(automaton.find_all(black_box(&text))).len())
    });
    group.bench_function("naive_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &patterns {
                let mut at = 0usize;
                while let Some(pos) = text[at..].find(p.as_str()) {
                    hits += 1;
                    at += pos + 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

/// Ablation 2+3: filter ordering / optimizer on-off on an executor plan.
fn bench_filter_ordering(c: &mut Criterion) {
    let docs: Vec<Record> = (0..600)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i);
            r.set("text", format!("document {i} {}", "tokens ".repeat(i % 50)));
            r
        })
        .collect();

    let expensive_map = || {
        Operator::map("expensive-annotate", Package::Ie, |mut r| {
            // deliberately costly UDF
            let n = r.text().map(|t| t.split_whitespace().count()).unwrap_or(0);
            let mut acc = 0u64;
            for k in 0..n * 50 {
                acc = acc.wrapping_mul(31).wrapping_add(k as u64);
            }
            r.set("annotated", acc as i64);
            r
        })
        .with_reads(&["text"])
        .with_writes(&["annotated"])
        .with_cost(CostModel {
            us_per_char: 5.0,
            ..CostModel::default()
        })
    };
    let selective_filter = || {
        Operator::filter("keep-short", Package::Base, |r| {
            r.text().map(|t| t.len() < 120).unwrap_or(false)
        })
        .with_reads(&["text"])
    };

    let build = |filter_first: bool| {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let (a, b) = if filter_first {
            let f = plan.add(src, selective_filter()).expect("static plan");
            let m = plan.add(f, expensive_map()).expect("static plan");
            (f, m)
        } else {
            let m = plan.add(src, expensive_map()).expect("static plan");
            let f = plan.add(m, selective_filter()).expect("static plan");
            (m, f)
        };
        let _ = a;
        plan.sink(b, "out").expect("static plan");
        plan
    };

    let run = |plan: &LogicalPlan, input: &[Record]| {
        let mut inputs = HashMap::new();
        inputs.insert("docs".to_string(), input.to_vec());
        Executor::new(ExecutionConfig::local(4))
            .run(plan, inputs)
            .unwrap()
            .sinks["out"]
            .len()
    };

    let mut group = c.benchmark_group("ablation_filter_order");
    group.sample_size(10);
    group.bench_function("annotate_then_filter", |b| {
        let plan = build(false);
        b.iter(|| black_box(run(&plan, &docs)))
    });
    group.bench_function("filter_then_annotate", |b| {
        let plan = build(true);
        b.iter(|| black_box(run(&plan, &docs)))
    });
    group.bench_function("optimizer_rewritten", |b| {
        let mut plan = build(false);
        let rewrites = optimize(&mut plan);
        assert!(!rewrites.is_empty(), "optimizer should pull the filter forward");
        b.iter(|| black_box(run(&plan, &docs)))
    });
    group.finish();
}

/// Ablation 4: CRF with and without sentence-context features.
fn bench_crf_features(c: &mut Criterion) {
    let lexicon = Arc::new(Lexicon::generate(LexiconScale::tiny()));
    let generator = Generator::with_lexicon(CorpusKind::Medline, 4, lexicon);
    let examples: Vec<_> = generator
        .labeled_sentences(60)
        .iter()
        .map(|ls| labeled_to_example(ls, EntityType::Gene))
        .collect();
    let light = CrfTagger::train(
        EntityType::Gene,
        &examples,
        CrfConfig {
            dim: 1 << 14,
            epochs: 2,
            context_features: false,
            ..CrfConfig::default()
        },
    );
    let heavy = CrfTagger::train(
        EntityType::Gene,
        &examples,
        CrfConfig {
            dim: 1 << 14,
            epochs: 2,
            context_features: true,
            ..CrfConfig::default()
        },
    );
    let text = corpus_text(800);

    let mut group = c.benchmark_group("ablation_crf_features");
    group.sample_size(20);
    group.bench_function("without_context", |b| {
        b.iter(|| black_box(light.tag(black_box(&text))).len())
    });
    group.bench_function("with_context", |b| {
        b.iter(|| black_box(heavy.tag(black_box(&text))).len())
    });
    group.finish();
}

/// A haystack where the needle terms actually occur every few words
/// (hit-dense) — prefilters can barely skip, so this regime measures
/// their overhead.
fn dense_haystack(terms: &[&str], words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i % 4 == 0 {
            s.push_str(terms[i / 4 % terms.len()]);
        } else {
            s.push_str("filler");
        }
        s.push(' ');
    }
    s
}

/// A haystack that never contains the needles' start bytes beyond plain
/// lowercase filler (hit-sparse) — the regime the SWAR skipping exists
/// for.
fn sparse_haystack(words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        s.push_str(["lorem", "ipsum", "dolor", "sit"][i % 4]);
        s.push(' ');
    }
    s
}

/// Ablation 5a: the tokenizer byte scan. Dense = corpus-like mixed text
/// with digits, hyphens, and punctuation; sparse = plain lowercase words
/// (the single-byte fast path end to end).
fn bench_tokenizer(c: &mut Criterion) {
    let dense = corpus_text(20_000);
    let sparse = sparse_haystack(3_300);

    let mut group = c.benchmark_group("ablation_tokenizer");
    group.sample_size(30);
    group.bench_function("corpus_text", |b| {
        b.iter(|| black_box(websift_text::tokenize(black_box(&dense))).len())
    });
    group.bench_function("plain_ascii_words", |b| {
        b.iter(|| black_box(websift_text::tokenize(black_box(&sparse))).len())
    });
    group.finish();
}

/// Ablation 5b: regexlite's prefiltered search on a gene-symbol-style
/// pattern. On the sparse haystack the SWAR start-byte skip dominates;
/// on the dense one every candidate reaches the NFA.
fn bench_regexlite_prefilter(c: &mut Criterion) {
    let re = websift_text::Regex::new(r"\b[A-Z][A-Z0-9]+-?[0-9]+\b").expect("bench pattern");
    let dense = dense_haystack(&["BRCA1", "GAD-67", "TP53"], 3_300);
    let sparse = sparse_haystack(3_300);
    assert!(!re.find_iter(&dense).is_empty());
    assert!(re.find_iter(&sparse).is_empty());

    let mut group = c.benchmark_group("ablation_regexlite_prefilter");
    group.sample_size(30);
    group.bench_function("hit_dense", |b| {
        b.iter(|| black_box(re.find_iter(black_box(&dense))).len())
    });
    group.bench_function("hit_sparse", |b| {
        b.iter(|| black_box(re.find_iter(black_box(&sparse))).len())
    });
    group.finish();
}

/// Ablation 5c: the Aho-Corasick start-byte prefilter. Sparse text never
/// leaves the root state, so the scan is one SWAR table sweep; dense
/// text pays the full automaton walk.
fn bench_ac_prefilter(c: &mut Criterion) {
    let lexicon = Lexicon::generate(LexiconScale::tiny());
    let patterns: Vec<String> = lexicon.genes().iter().map(|g| g.to_lowercase()).collect();
    let automaton = AhoCorasick::new(&patterns, false);
    let terms: Vec<&str> = patterns.iter().take(8).map(String::as_str).collect();
    let dense = dense_haystack(&terms, 3_300);
    let sparse = sparse_haystack(3_300);
    assert!(!automaton.find_all(&dense).is_empty());

    let mut group = c.benchmark_group("ablation_ac_prefilter");
    group.sample_size(30);
    group.bench_function("hit_dense", |b| {
        b.iter(|| black_box(automaton.find_all(black_box(&dense))).len())
    });
    group.bench_function("hit_sparse", |b| {
        b.iter(|| black_box(automaton.find_all(black_box(&sparse))).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dictionary_matching,
    bench_filter_ordering,
    bench_crf_features,
    bench_tokenizer,
    bench_regexlite_prefilter,
    bench_ac_prefilter
);
criterion_main!(benches);
