//! Result-table rendering shared by the experiment binaries.

use serde::Serialize;
use websift_observe::json::{array, str_array, ObjectWriter};

/// One experiment's outcome: an identifier matching the paper (e.g.
/// "Table 4"), plus measured rows and free-form notes comparing against the
/// paper's reported values.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl ExperimentResult {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> ExperimentResult {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the result as a GitHub-flavoured markdown table with notes.
    pub fn render(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&fmt_table(&self.headers, &self.rows));
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }

    /// Renders the result as a JSON object (`{id, title, headers, rows,
    /// notes}`). The vendored `serde` is an inert stub, so this goes
    /// through `websift-observe`'s deterministic writer.
    pub fn to_json(&self) -> String {
        ObjectWriter::new()
            .str("id", &self.id)
            .str("title", &self.title)
            .raw("headers", &str_array(self.headers.iter().map(String::as_str)))
            .raw(
                "rows",
                &array(
                    self.rows
                        .iter()
                        .map(|row| str_array(row.iter().map(String::as_str))),
                ),
            )
            .raw("notes", &str_array(self.notes.iter().map(String::as_str)))
            .finish()
    }
}

/// Renders a slice of results as a JSON array.
pub fn results_to_json(results: &[ExperimentResult]) -> String {
    array(results.iter().map(ExperimentResult::to_json))
}

/// The host's logical core count, stamped into the wall-clock bench JSON
/// payloads (`BENCH_THROUGHPUT.json`, `BENCH_SERVE.json`) so measured
/// QPS/throughput numbers carry the hardware they were taken on. The
/// value is bench metadata only — it never sizes a thread pool here and
/// never reaches simulated seconds or any deterministic surface.
pub fn host_logical_cores() -> u64 {
    // lint:allow(nondet_parallelism): stamped into bench metadata JSON only; never feeds simulated output or digests
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0)
}

/// True when the process was invoked with `--json` — the experiment
/// binaries switch from markdown tables to machine-readable output.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints `results` in the format selected by the command line: markdown
/// tables by default, one consolidated JSON array under `--json`.
pub fn emit(results: &[ExperimentResult]) {
    if json_mode() {
        println!("{}", results_to_json(results));
    } else {
        for r in results {
            println!("{}", r.render());
        }
    }
}

/// Formats a markdown table with column alignment.
pub fn fmt_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        let mut padded = row.clone();
        padded.resize(ncols, String::new());
        out.push_str(&fmt_row(&padded, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table_with_notes() {
        let mut r = ExperimentResult::new("Table X", "demo", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        r.note("paper reports 3");
        let s = r.render();
        assert!(s.contains("## Table X"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("> paper reports 3"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut r = ExperimentResult::new("T", "t", &["a"]);
        r.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn table_alignment_pads_cells() {
        let t = fmt_table(
            &["col".to_string(), "x".to_string()],
            &[vec!["longvalue".to_string(), "1".to_string()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
