//! Regenerates Fig. 6 and §4.3.1: linguistic distributions + MWW tests.
use websift_bench::experiments::content_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(8);
    let results = content_exps::run_all_corpora(&ctx, 8);
    report::emit(&content_exps::fig6(&results));
}
