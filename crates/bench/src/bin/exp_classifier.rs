//! Regenerates §4.1's classifier quality numbers (10-fold CV + sample).
use websift_bench::experiments::crawl_exps;
use websift_bench::report;

fn main() {
    let web = crawl_exps::standard_web();
    report::emit(&[crawl_exps::classifier(&web)]);
}
