//! Regenerates Fig. 7: entity incidence per corpus.
use websift_bench::experiments::content_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(9);
    let results = content_exps::run_all_corpora(&ctx, 8);
    report::emit(&[content_exps::fig7(&results)]);
}
