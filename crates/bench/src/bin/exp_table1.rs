//! Regenerates Table 1 (seed keyword categories).
use websift_bench::experiments::crawl_exps;
use websift_bench::report;
use websift_corpus::{Lexicon, LexiconScale};

fn main() {
    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    report::emit(&[crawl_exps::table1(&lexicon)]);
}
