//! Regenerates §4.2's war story: the three failure modes and mitigations.
use websift_bench::experiments::scaling_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(6);
    report::emit(&[scaling_exps::warstory(&ctx)]);
}
