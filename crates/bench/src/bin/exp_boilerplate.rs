//! Regenerates §4.1's boilerplate-detection quality numbers.
use websift_bench::experiments::crawl_exps;
use websift_bench::report;

fn main() {
    let web = crawl_exps::standard_web();
    report::emit(&[crawl_exps::boilerplate(&web)]);
}
