//! Regenerates §4.1's boilerplate-detection quality numbers.
use websift_bench::experiments::crawl_exps;

fn main() {
    let web = crawl_exps::standard_web();
    println!("{}", crawl_exps::boilerplate(&web).render());
}
