//! Regenerates Table 4 (+ the §4.3.2 TLA filter).
use websift_bench::experiments::content_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(10);
    let results = content_exps::run_all_corpora(&ctx, 8);
    report::emit(&content_exps::table4(&results));
}
