//! Scale-out of the sharded physical runtime: records/sec on a
//! spec-built pipeline at shard counts {1, 2, 4, 8}, in-process thread
//! workers vs real `shard_worker` OS processes, digest-gated against the
//! unsharded engine.
//!
//! Flags:
//! - `--quick` — smaller corpus and a {1, 2} shard sweep (CI smoke);
//! - `--json`  — emit the `BENCH_SHUFFLE.json` payload instead of the
//!   markdown table;
//! - `--check` — exit non-zero unless every cell's deterministic digest
//!   equals the unsharded baseline's (the sharding-is-physical-only
//!   gate);
//! - `--docs N` / `--shards A,B,C` — override corpus size / shard sweep
//!   for targeted probes of a single cell.
use websift_bench::experiments::shuffle_exps::{shuffle_at, shuffle_json, SHUFFLE_SHARDS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let quick = has("--quick");
    let json = has("--json");
    let check = has("--check");

    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let docs: usize = value_of("--docs")
        .map(|v| v.parse().expect("--docs takes an integer"))
        .unwrap_or(if quick { 120 } else { 600 });
    let shards: Vec<usize> = match value_of("--shards") {
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("--shards takes a comma-separated list"))
            .collect(),
        None if quick => vec![1, 2],
        None => SHUFFLE_SHARDS.to_vec(),
    };

    let report = shuffle_at(docs, &shards);

    if json {
        println!("{}", shuffle_json(&report));
    } else {
        println!("{}", report.result.render());
    }

    if check {
        if !report.digests_identical {
            eprintln!(
                "exp_shuffle --check FAILED: a sharded run's deterministic digest diverged \
                 from the unsharded baseline ({:016x})",
                report.baseline_digest
            );
            std::process::exit(1);
        }
        eprintln!(
            "exp_shuffle check ok: digests identical across shard counts {:?} \
             (baseline {:016x}); process workers {}",
            report.shards,
            report.baseline_digest,
            if report.worker_bin.is_some() { "measured" } else { "skipped (binary not found)" }
        );
    }
}
