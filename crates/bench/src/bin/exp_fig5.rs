//! Regenerates Fig. 5: scale-out of the linguistic and entity flows.
use websift_bench::experiments::scaling_exps;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(5);
    println!("{}", scaling_exps::fig5(&ctx).render());
}
