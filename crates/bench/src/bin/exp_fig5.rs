//! Regenerates Fig. 5: scale-out of the linguistic and entity flows.
use websift_bench::experiments::scaling_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(5);
    report::emit(&[scaling_exps::fig5(&ctx)]);
}
