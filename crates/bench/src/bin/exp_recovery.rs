//! Resilience experiment: goodput, recovery overhead, and the
//! kill-and-resume determinism check for crawler and flow engine at
//! fault rates {0 %, 1 %, 5 %, 20 %}.
use websift_bench::experiments::recovery_exps;

fn main() {
    // Injected worker panics are caught and retried by the executor;
    // keep their backtraces out of the report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));

    let mut results = recovery_exps::crawl_recovery();
    results.push(recovery_exps::flow_recovery());
    websift_bench::report::emit(&results);
}
