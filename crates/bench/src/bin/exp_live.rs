//! Live incremental-execution bench: per-round delta-pass cost vs batch
//! full recompute, with the three-way store-digest identity check.
//!
//! Flags:
//! - `--quick` — smaller crawl and a {1, 2} DoP grid (CI smoke);
//! - `--json`  — emit the `BENCH_LIVE.json` payload instead of the
//!   markdown table;
//! - `--check` — exit non-zero unless (a) the incremental session, (b) a
//!   batch full recompute, and (c) a killed-and-resumed session agree on
//!   every store digest, deterministic surfaces are DoP-invariant, and
//!   the delta pass beats the recompute per new document from round 2 on;
//! - `--pages N` — override the crawl page budget for targeted probes.
use websift_bench::experiments::live_exps::{live_at, live_json, LiveReport, LIVE_DOPS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let quick = has("--quick");
    let json = has("--json");
    let check = has("--check");

    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let pages: usize = value_of("--pages")
        .map(|v| v.parse().expect("--pages takes an integer"))
        .unwrap_or(if quick { 60 } else { 150 });
    let dops: Vec<usize> = if quick { vec![1, 2] } else { LIVE_DOPS.to_vec() };

    let report: LiveReport = live_at(pages, &dops);

    if json {
        println!("{}", live_json(&report));
    } else {
        println!("{}", report.result.render());
    }

    if check {
        if !report.digests_agree {
            eprintln!(
                "exp_live --check FAILED: the incremental store diverged from a batch \
                 full recompute at some round boundary (incremental != batch digest)"
            );
            std::process::exit(1);
        }
        if !report.resume_agrees {
            eprintln!(
                "exp_live --check FAILED: a session resumed from the round-{} watermark \
                 did not replay byte-identically to the uninterrupted run",
                report.resume_round
            );
            std::process::exit(1);
        }
        if !report.dop_invariant {
            eprintln!(
                "exp_live --check FAILED: store digest, retained-state bytes, or reduce \
                 output varied across the DoP grid {dops:?}"
            );
            std::process::exit(1);
        }
        if !report.incremental_wins {
            eprintln!(
                "exp_live --check FAILED: the delta pass did not beat a batch full \
                 recompute per new document from round 2 onward (simulated seconds)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "exp_live check ok: {} rounds x DoP {dops:?}, digests identical across \
             incremental / batch recompute / kill-and-resume (round {}), delta pass \
             beats recompute per new document from round 2 on; {} docs / {} postings",
            report.rounds, report.resume_round, report.total_documents, report.store_postings
        );
    }
}
