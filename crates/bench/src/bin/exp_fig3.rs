//! Regenerates Fig. 3: tool runtimes vs input length.
use websift_bench::experiments::scaling_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(3);
    let mut results = scaling_exps::fig3(&ctx);
    results.push(scaling_exps::runtime_shares(&ctx));
    report::emit(&results);
}
