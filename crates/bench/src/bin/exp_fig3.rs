//! Regenerates Fig. 3: tool runtimes vs input length.
use websift_bench::experiments::scaling_exps;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(3);
    for result in scaling_exps::fig3(&ctx) {
        println!("{}", result.render());
    }
    println!("{}", scaling_exps::runtime_shares(&ctx).render());
}
