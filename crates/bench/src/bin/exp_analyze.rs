//! Static-analysis pre-flight report: the §4.2 failure modes as
//! diagnostics, produced without executing a single record. Output is
//! byte-deterministic; `ci.sh` runs `--json` twice and diffs.
use websift_bench::experiments::analyze_exps;
use websift_bench::report;

fn main() {
    report::emit(&[analyze_exps::known_bad()]);
}
