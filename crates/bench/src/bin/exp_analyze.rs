//! Static-analysis pre-flight report: the §4.2 failure modes as
//! diagnostics plus the fusion/combining explain, produced without
//! executing a single record (the explain's differential note runs one
//! in-process flow to verify the prediction). Output is
//! byte-deterministic; `ci.sh` runs `--json` twice and diffs.
//!
//! `--quick --check` runs the CI smoke instead of the report: renders
//! the explain artifact twice in-process and compares bytes, then
//! checks the predicted stage decisions against the executor's actual
//! ones, exiting non-zero on any drift.
use websift_bench::experiments::analyze_exps;
use websift_bench::report;

fn main() {
    if std::env::args().any(|a| a == "--check") {
        let first = analyze_exps::explain_json();
        let second = analyze_exps::explain_json();
        if first.is_empty() || first != second {
            eprintln!("exp_analyze check: explain artifact is not byte-stable");
            std::process::exit(1);
        }
        if !analyze_exps::explain_matches_execution() {
            eprintln!(
                "exp_analyze check: predicted stage decisions diverge from the executor"
            );
            std::process::exit(1);
        }
        println!("exp_analyze check: explain byte-stable and matches executor decisions");
        return;
    }
    report::emit(&[analyze_exps::known_bad(), analyze_exps::explain()]);
}
