//! Regenerates §5's precision-vs-yield trade-off (classifier threshold sweep).
use websift_bench::experiments::crawl_exps;
use websift_corpus::{Lexicon, LexiconScale, SearchCategory};
use websift_crawler::{default_engines, generate_seeds};

fn main() {
    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    let web = crawl_exps::standard_web();
    let queries: Vec<String> = lexicon
        .search_terms(SearchCategory::Disease, 150)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Gene, 150))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds = generate_seeds(&web, &mut default_engines(&web), &queries);
    websift_bench::report::emit(&[crawl_exps::tradeoff(&web, &seeds.urls, 2_500)]);
}
