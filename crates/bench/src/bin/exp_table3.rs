//! Regenerates Table 3: corpus summary statistics.
use websift_bench::experiments::content_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(7);
    report::emit(&[content_exps::table3(&ctx)]);
}
