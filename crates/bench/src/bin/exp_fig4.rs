//! Regenerates Fig. 4: scale-up of the linguistic and entity flows.
use websift_bench::experiments::scaling_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(4);
    report::emit(&[scaling_exps::fig4(&ctx)]);
}
