//! Serving-layer load bench: QPS and p50/p99 latency of the
//! admission-controlled query engine at 1/8/64/512 simulated clients,
//! per shard count.
//!
//! Flags:
//! - `--quick` — smaller store and a {1, 64} client sweep (CI smoke);
//! - `--json`  — emit the `BENCH_SERVE.json` payload instead of the
//!   markdown table;
//! - `--check` — exit non-zero unless same-seed responses are
//!   byte-identical across shard counts and across snapshot/resume
//!   (digest equality; the serving determinism gate);
//! - `--docs N` / `--queries N` — override store size / queries per
//!   client for targeted probes.
use websift_bench::experiments::serve_exps::{
    serve_at, serve_json, ServeReport, SERVE_CLIENTS, SERVE_SHARDS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let quick = has("--quick");
    let json = has("--json");
    let check = has("--check");

    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let docs: usize = value_of("--docs")
        .map(|v| v.parse().expect("--docs takes an integer"))
        .unwrap_or(if quick { 24 } else { 96 });
    let queries: usize = value_of("--queries")
        .map(|v| v.parse().expect("--queries takes an integer"))
        .unwrap_or(if quick { 6 } else { 16 });
    let clients: Vec<usize> =
        if quick { vec![1, 64] } else { SERVE_CLIENTS.to_vec() };

    let report: ServeReport = serve_at(docs, queries, 42, &SERVE_SHARDS, &clients);

    if json {
        println!("{}", serve_json(&report));
    } else {
        println!("{}", report.result.render());
    }

    if check {
        if !report.digests_agree {
            eprintln!(
                "exp_serve --check FAILED: responses differ across shard counts \
                 {SERVE_SHARDS:?} (the store is not shard-count invariant)"
            );
            std::process::exit(1);
        }
        if !report.snapshot_agrees {
            eprintln!(
                "exp_serve --check FAILED: a serial replay on a snapshot-restored store \
                 produced different responses (snapshot/resume is not byte-identical)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "exp_serve check ok: {} cells, digests identical across {SERVE_SHARDS:?} shards \
             and across snapshot/resume; admission capacity {}; {} keys / {} postings",
            report.points.len(),
            report.admission_capacity,
            report.store_keys,
            report.store_postings
        );
    }
}
