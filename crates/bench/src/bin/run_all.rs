//! Runs every experiment in sequence, printing the full paper-vs-measured
//! report (this is what EXPERIMENTS.md is generated from):
//!
//! ```text
//! cargo run --release -p websift-bench --bin run_all | tee EXPERIMENTS.md
//! ```
use websift_bench::experiments::{content_exps, crawl_exps, recovery_exps, scaling_exps};
use websift_corpus::{Lexicon, LexiconScale, SearchCategory};
use websift_crawler::{default_engines, generate_seeds, train_focus_classifier, CrawlConfig, FocusedCrawler};
use websift_pipeline::ExperimentContext;

fn main() {
    println!("# websift experiment report\n");
    println!("Every table and figure of the paper's evaluation, regenerated on the");
    println!("simulated substrates. Absolute numbers are at reduced scale; the");
    println!("reproduction targets are the *shapes* noted per experiment.\n");

    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    eprintln!("[1/16] Table 1");
    println!("{}", crawl_exps::table1(&lexicon).render());

    let web = crawl_exps::standard_web();
    eprintln!("[2/16] crawl experiments");
    for r in crawl_exps::crawl(&web, &lexicon, 40_000) {
        println!("{}", r.render());
    }
    eprintln!("[3/16] classifier quality");
    println!("{}", crawl_exps::classifier(&web).render());
    eprintln!("[4/16] boilerplate quality");
    println!("{}", crawl_exps::boilerplate(&web).render());

    eprintln!("[5/16] Table 2 (PageRank)");
    let queries: Vec<String> = lexicon
        .search_terms(SearchCategory::General, 30)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Disease, 200))
        .chain(lexicon.search_terms(SearchCategory::Gene, 200))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds = generate_seeds(&web, &mut default_engines(&web), &queries);
    let classifier = train_focus_classifier(300, crawl_exps::HIGH_PRECISION_THRESHOLD, 77);
    let mut crawler = FocusedCrawler::new(
        &web,
        classifier,
        CrawlConfig { max_pages: 6000, threads: 8, ..CrawlConfig::default() },
    );
    let _ = crawler.crawl(seeds.urls.clone());
    println!("{}", crawl_exps::table2(&mut crawler, 30).render());

    eprintln!("[6/16] §5 trade-off");
    println!("{}", crawl_exps::tradeoff(&web, &seeds.urls, 2_500).render());

    let ctx = ExperimentContext::standard(42);
    eprintln!("[7/16] Fig 3");
    for r in scaling_exps::fig3(&ctx) {
        println!("{}", r.render());
    }
    eprintln!("[8/16] runtime shares");
    println!("{}", scaling_exps::runtime_shares(&ctx).render());
    eprintln!("[9/16] Fig 4");
    println!("{}", scaling_exps::fig4(&ctx).render());
    eprintln!("[10/16] Fig 5");
    println!("{}", scaling_exps::fig5(&ctx).render());
    eprintln!("[11/16] war story");
    println!("{}", scaling_exps::warstory(&ctx).render());

    eprintln!("[12/16] Table 3");
    println!("{}", content_exps::table3(&ctx).render());
    eprintln!("[13/16] running analysis flows over all corpora");
    let results = content_exps::run_all_corpora(&ctx, 8);
    for r in content_exps::fig6(&results) {
        println!("{}", r.render());
    }
    eprintln!("[14/16] Fig 7 / Table 4");
    println!("{}", content_exps::fig7(&results).render());
    for r in content_exps::table4(&results) {
        println!("{}", r.render());
    }
    eprintln!("[15/16] Fig 8 / JSD");
    for r in content_exps::fig8(&results) {
        println!("{}", r.render());
    }

    eprintln!("[16/16] fault injection + recovery");
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));
    for r in recovery_exps::crawl_recovery() {
        println!("{}", r.render());
    }
    println!("{}", recovery_exps::flow_recovery().render());
    eprintln!("done.");
}
