//! Runs every experiment in sequence, printing the full paper-vs-measured
//! report (this is what EXPERIMENTS.md is generated from):
//!
//! ```text
//! cargo run --release -p websift-bench --bin run_all | tee EXPERIMENTS.md
//! ```
//!
//! Besides the markdown report, every result is collected and written to
//! `BENCH_RESULTS.json` so the perf trajectory is machine-readable.
use websift_bench::experiments::{
    analyze_exps, content_exps, crawl_exps, live_exps, profile_exps, recovery_exps,
    scaling_exps, serve_exps, shuffle_exps, throughput_exps,
};
use websift_bench::report::results_to_json;
use websift_bench::ExperimentResult;
use websift_corpus::{Lexicon, LexiconScale, SearchCategory};
use websift_crawler::{
    default_engines, generate_seeds, train_focus_classifier, CrawlConfig, FocusedCrawler,
};
use websift_pipeline::ExperimentContext;

fn main() {
    println!("# websift experiment report\n");
    println!("Every table and figure of the paper's evaluation, regenerated on the");
    println!("simulated substrates. Absolute numbers are at reduced scale; the");
    println!("reproduction targets are the *shapes* noted per experiment.\n");

    let mut collected: Vec<ExperimentResult> = Vec::new();
    let mut out = |r: ExperimentResult| {
        println!("{}", r.render());
        collected.push(r);
    };

    // The wall-clock sweeps run first, on a fresh heap: the combined
    // fold and the fused pipeline are allocation-heavy, and measuring
    // them after 18 experiment suites have churned the allocator
    // understates the ratios the standalone `exp_throughput` binary
    // reports from the same code. Their tables are still printed at the
    // usual place near the end of the report.
    eprintln!("[1/22] wall-clock throughput (fused vs unfused vs pre-fusion; combined vs uncombined)");
    let throughput = throughput_exps::throughput(480);
    let combining = throughput_exps::combining(480);
    let batches =
        throughput_exps::batch_grid_at(480, &[1, throughput_exps::ACCEPTANCE_DOP]);

    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    eprintln!("[2/22] Table 1");
    out(crawl_exps::table1(&lexicon));

    let web = crawl_exps::standard_web();
    eprintln!("[3/22] crawl experiments");
    for r in crawl_exps::crawl(&web, &lexicon, 40_000) {
        out(r);
    }
    eprintln!("[4/22] classifier quality");
    out(crawl_exps::classifier(&web));
    eprintln!("[5/22] boilerplate quality");
    out(crawl_exps::boilerplate(&web));

    eprintln!("[6/22] Table 2 (PageRank)");
    let queries: Vec<String> = lexicon
        .search_terms(SearchCategory::General, 30)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Disease, 200))
        .chain(lexicon.search_terms(SearchCategory::Gene, 200))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds = generate_seeds(&web, &mut default_engines(&web), &queries);
    let classifier = train_focus_classifier(300, crawl_exps::HIGH_PRECISION_THRESHOLD, 77);
    let mut crawler = FocusedCrawler::new(
        &web,
        classifier,
        CrawlConfig { max_pages: 6000, threads: 8, ..CrawlConfig::default() },
    );
    let _ = crawler.crawl(seeds.urls.clone());
    out(crawl_exps::table2(&mut crawler, 30));

    eprintln!("[7/22] §5 trade-off");
    out(crawl_exps::tradeoff(&web, &seeds.urls, 2_500));

    let ctx = ExperimentContext::standard(42);
    eprintln!("[8/22] Fig 3");
    for r in scaling_exps::fig3(&ctx) {
        out(r);
    }
    eprintln!("[9/22] runtime shares");
    out(scaling_exps::runtime_shares(&ctx));
    eprintln!("[10/22] cost decomposition (profiler)");
    out(profile_exps::cost_decomposition(&ctx, 40).result);
    eprintln!("[11/22] Fig 4");
    out(scaling_exps::fig4(&ctx));
    eprintln!("[12/22] Fig 5");
    out(scaling_exps::fig5(&ctx));
    eprintln!("[13/22] war story");
    out(scaling_exps::warstory(&ctx));
    eprintln!("[14/22] static analysis pre-flight");
    out(analyze_exps::known_bad());

    eprintln!("[15/22] Table 3");
    out(content_exps::table3(&ctx));
    eprintln!("[16/22] running analysis flows over all corpora");
    let results = content_exps::run_all_corpora(&ctx, 8);
    for r in content_exps::fig6(&results) {
        out(r);
    }
    eprintln!("[17/22] Fig 7 / Table 4");
    out(content_exps::fig7(&results));
    for r in content_exps::table4(&results) {
        out(r);
    }
    eprintln!("[18/22] Fig 8 / JSD");
    for r in content_exps::fig8(&results) {
        out(r);
    }

    eprintln!("[19/22] fault injection + recovery");
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));
    for r in recovery_exps::crawl_recovery() {
        out(r);
    }
    out(recovery_exps::flow_recovery());

    eprintln!("[20/22] serving layer (QPS/latency under admission-controlled load)");
    let serve = serve_exps::serve(96, 16, 42);
    out(serve.result.clone());
    match std::fs::write("BENCH_SERVE.json", serve_exps::serve_json(&serve) + "\n") {
        Ok(()) => eprintln!(
            "wrote BENCH_SERVE.json ({} cells; digests {} across shards, snapshot replay {})",
            serve.points.len(),
            if serve.digests_agree { "agree" } else { "DISAGREE" },
            if serve.snapshot_agrees { "matches" } else { "MISMATCHES" },
        ),
        Err(e) => eprintln!("could not write BENCH_SERVE.json: {e}"),
    }

    eprintln!("[21/22] live incremental execution (delta pass vs batch recompute)");
    let live = live_exps::live(150);
    out(live.result.clone());
    match std::fs::write("BENCH_LIVE.json", live_exps::live_json(&live) + "\n") {
        Ok(()) => eprintln!(
            "wrote BENCH_LIVE.json ({} rounds x DoP {:?}; digests {} across incremental / \
             recompute / resume, delta pass {} recompute per new doc from round 2)",
            live.rounds,
            live.dops,
            if live.digests_agree && live.resume_agrees { "agree" } else { "DISAGREE" },
            if live.incremental_wins { "beats" } else { "LOSES TO" },
        ),
        Err(e) => eprintln!("could not write BENCH_LIVE.json: {e}"),
    }

    eprintln!("[22/22] sharded shuffle scale-out (worker threads and processes, digest-gated)");
    let shuffle = shuffle_exps::shuffle_at(600, &shuffle_exps::SHUFFLE_SHARDS);
    out(shuffle.result.clone());
    match std::fs::write("BENCH_SHUFFLE.json", shuffle_exps::shuffle_json(&shuffle) + "\n") {
        Ok(()) => eprintln!(
            "wrote BENCH_SHUFFLE.json ({} cells; digests {} across shard counts {:?}; \
             process workers {})",
            shuffle.points.len(),
            if shuffle.digests_identical { "identical" } else { "DIVERGED" },
            shuffle.shards,
            if shuffle.worker_bin.is_some() { "measured" } else { "skipped" },
        ),
        Err(e) => eprintln!("could not write BENCH_SHUFFLE.json: {e}"),
    }

    let throughput_json =
        throughput_exps::throughput_json(&throughput, &combining, &batches);
    out(throughput.result.clone());
    out(combining.result.clone());
    out(batches.result.clone());
    match std::fs::write("BENCH_THROUGHPUT.json", throughput_json + "\n") {
        Ok(()) => eprintln!(
            "wrote BENCH_THROUGHPUT.json (fused {:.2}x pre-fusion baseline, combining \
             {:.2}x uncombined, shuffle shrink {:.1}x at DoP {}, default batch {:.2}x \
             record-at-a-time at DoP 1)",
            throughput.fused_vs_baseline,
            combining.combined_vs_uncombined,
            combining.shuffle_reduction(),
            throughput_exps::ACCEPTANCE_DOP,
            batches.batched_vs_record_at_dop1
        ),
        Err(e) => eprintln!("could not write BENCH_THROUGHPUT.json: {e}"),
    }

    match std::fs::write("BENCH_RESULTS.json", results_to_json(&collected) + "\n") {
        Ok(()) => eprintln!("wrote BENCH_RESULTS.json ({} results)", collected.len()),
        Err(e) => eprintln!("could not write BENCH_RESULTS.json: {e}"),
    }
    eprintln!("done.");
}
