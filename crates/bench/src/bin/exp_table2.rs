//! Regenerates Table 2: top domains of the crawl by PageRank.
use websift_bench::experiments::crawl_exps;
use websift_corpus::{Lexicon, LexiconScale, SearchCategory};
use websift_crawler::{default_engines, generate_seeds, train_focus_classifier, CrawlConfig, FocusedCrawler};

fn main() {
    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    let web = crawl_exps::standard_web();
    let queries: Vec<String> = lexicon
        .search_terms(SearchCategory::General, 30)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Disease, 200))
        .chain(lexicon.search_terms(SearchCategory::Gene, 200))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds = generate_seeds(&web, &mut default_engines(&web), &queries);
    let classifier = train_focus_classifier(300, crawl_exps::HIGH_PRECISION_THRESHOLD, 77);
    let mut crawler = FocusedCrawler::new(&web, classifier, CrawlConfig { max_pages: 6000, threads: 8, ..CrawlConfig::default() });
    let _ = crawler.crawl(seeds.urls);
    websift_bench::report::emit(&[crawl_exps::table2(&mut crawler, 30)]);
}
