//! The §5 "consolidated process" extension experiment: does feeding IE
//! results back into the crawl-time classifier improve the crawl?
//!
//! Compares three configurations over the same seeds and web:
//! plain high-precision classifier, the same classifier with entity-density
//! log-odds feedback, and feedback plus incremental self-training.

use std::sync::Arc;
use websift_bench::experiments::crawl_exps;
use websift_bench::ExperimentResult;
use websift_corpus::{Lexicon, LexiconScale, SearchCategory};
use websift_crawler::feedback::IeFeedback;
use websift_crawler::{
    default_engines, generate_seeds, train_focus_classifier, CrawlConfig, FocusedCrawler,
};
use websift_ner::{Dictionary, DictionaryTagger, EntityType};

fn main() {
    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    let web = crawl_exps::standard_web();
    let queries: Vec<String> = lexicon
        .search_terms(SearchCategory::Disease, 200)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Gene, 250))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds = generate_seeds(&web, &mut default_engines(&web), &queries);

    let taggers: Vec<Arc<DictionaryTagger>> = vec![
        Arc::new(DictionaryTagger::new(&Dictionary::new(
            EntityType::Gene,
            lexicon.genes().to_vec(),
        ))),
        Arc::new(DictionaryTagger::new(&Dictionary::new(
            EntityType::Disease,
            lexicon.diseases().to_vec(),
        ))),
        Arc::new(DictionaryTagger::new(&Dictionary::new(
            EntityType::Drug,
            lexicon.drugs().to_vec(),
        ))),
    ];

    let config = CrawlConfig {
        max_pages: 12_000,
        threads: 8,
        ..CrawlConfig::default()
    };
    let classifier = || train_focus_classifier(300, crawl_exps::HIGH_PRECISION_THRESHOLD, 77);

    let mut result = ExperimentResult::new(
        "§5 consolidated",
        "IE feedback into the crawl-time classifier (paper: future work)",
        &["configuration", "relevant pages", "harvest rate", "precision vs gold", "recall proxy"],
    );
    let mut row = |name: &str, crawler: FocusedCrawler<'_>, seeds: Vec<websift_web::Url>| {
        let mut crawler = crawler;
        let report = crawler.crawl(seeds);
        let gold_true = report
            .relevant
            .iter()
            .filter(|p| p.gold_relevant == Some(true))
            .count();
        let missed_relevant = report
            .irrelevant
            .iter()
            .filter(|p| p.gold_relevant == Some(true))
            .count();
        let precision = gold_true as f64 / report.relevant.len().max(1) as f64;
        let recall = gold_true as f64 / (gold_true + missed_relevant).max(1) as f64;
        result.row(&[
            name.to_string(),
            report.relevant.len().to_string(),
            format!("{:.3}", report.harvest_rate()),
            format!("{precision:.3}"),
            format!("{recall:.3}"),
        ]);
    };

    row(
        "baseline (bag-of-words only)",
        FocusedCrawler::new(&web, classifier(), config),
        seeds.urls.clone(),
    );
    let mut no_self_training = IeFeedback::new(taggers.clone());
    no_self_training.self_training_margin = None;
    row(
        "+ entity-density feedback",
        FocusedCrawler::new(&web, classifier(), config).with_ie_feedback(no_self_training),
        seeds.urls.clone(),
    );
    row(
        "+ feedback + self-training",
        FocusedCrawler::new(&web, classifier(), config)
            .with_ie_feedback(IeFeedback::new(taggers)),
        seeds.urls,
    );
    result.note("the paper's §5 proposal, implemented: dictionary entity density adjusts the classifier's log-odds at crawl time; confident verdicts retrain the incremental Naive Bayes");
    websift_bench::report::emit(&[result]);
}
