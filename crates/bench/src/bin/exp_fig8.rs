//! Regenerates Fig. 8 (annotation overlap) and the §4.3.2 JSD analysis.
use websift_bench::experiments::content_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::standard(11);
    let results = content_exps::run_all_corpora(&ctx, 8);
    report::emit(&content_exps::fig8(&results));
}
