//! Regenerates §4.1's crawl statistics (harvest rate, filter reductions,
//! throughput, frontier behaviour) and §2.2's two seed-generation runs.
use websift_bench::experiments::crawl_exps;
use websift_bench::report;
use websift_corpus::{Lexicon, LexiconScale};

fn main() {
    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    let web = crawl_exps::standard_web();
    report::emit(&crawl_exps::crawl(&web, &lexicon, 40_000));
}
