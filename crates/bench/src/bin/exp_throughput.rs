//! Wall-clock throughput of the fused executor: records/sec on the
//! Fig-4/5 linguistic pipeline, fused vs unfused vs a pre-fusion
//! baseline emulation, at DoP {1, 4, 8, 16} — plus the
//! partial-aggregation sweep (combined vs uncombined) over the
//! Reduce-terminated token-frequency pipeline.
//!
//! Flags:
//! - `--quick` — smaller corpus and a {1, 8} DoP sweep (CI smoke);
//! - `--json`  — emit the `BENCH_THROUGHPUT.json` payload instead of
//!   the markdown tables;
//! - `--check` — exit non-zero unless (a) fused throughput holds up
//!   against unfused at the acceptance DoP (the fusion-must-not-regress
//!   gate), (b) combining holds up against uncombined at DoP 1 (the
//!   combining-never-loses gate), and (c) the default batch size holds
//!   up against record-at-a-time at DoP 1 (the batched-dispatch-must-
//!   not-lose gate);
//! - `--docs N` / `--dops A,B,C` — override corpus size / DoP sweep for
//!   targeted probes of a single cell;
//! - `--per-op` — print wall seconds per pipeline operator instead of
//!   running the sweep (where does fused time go?).
use websift_bench::experiments::throughput_exps::{
    batch_grid_at, combining_at, per_op_breakdown, throughput_at, BatchGridReport,
    CombiningReport, ThroughputReport, ACCEPTANCE_DOP, THROUGHPUT_DOPS,
};
use websift_bench::experiments::throughput_exps::throughput_json;

/// Tolerance on the fused/unfused ratio in `--check`: wall-clock medians
/// on shared CI hardware jitter a few percent; a real fusion regression
/// shows up far below this.
const CHECK_TOLERANCE: f64 = 0.95;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let quick = has("--quick");
    let json = has("--json");
    let check = has("--check");

    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let docs: usize = value_of("--docs")
        .map(|v| v.parse().expect("--docs takes an integer"))
        .unwrap_or(if quick { 96 } else { 480 });
    let dops: Vec<usize> = match value_of("--dops") {
        Some(v) => v
            .split(',')
            .map(|d| d.trim().parse().expect("--dops takes a comma-separated list"))
            .collect(),
        None if quick => vec![1, 8],
        None => THROUGHPUT_DOPS.to_vec(),
    };

    if has("--per-op") {
        let breakdown = per_op_breakdown(docs);
        let total: f64 = breakdown.iter().map(|(_, s, _)| s).sum();
        for (name, secs, records) in &breakdown {
            println!("{name:32} {secs:8.3}s  {:5.1}%  -> {records} records", 100.0 * secs / total);
        }
        return;
    }

    let report: ThroughputReport = throughput_at(docs, &dops);
    let combining: CombiningReport = combining_at(docs, &dops);
    // The batch grid only needs the gate cell (DoP 1) plus the
    // acceptance DoP when the sweep measures it.
    let batch_dops: Vec<usize> = {
        let mut v = vec![1usize];
        if dops.contains(&ACCEPTANCE_DOP) {
            v.push(ACCEPTANCE_DOP);
        }
        v
    };
    let batches: BatchGridReport = batch_grid_at(docs, &batch_dops);

    if json {
        println!("{}", throughput_json(&report, &combining, &batches));
    } else {
        println!("{}", report.result.render());
        println!();
        println!("{}", combining.result.render());
        println!(
            "shuffle-bytes reduction: {:.1}x ({} -> {} bytes)",
            combining.shuffle_reduction(),
            combining.shuffle_bytes_uncombined,
            combining.shuffle_bytes_combined
        );
        println!();
        println!("{}", batches.result.render());
    }

    if check {
        if report.fused_vs_unfused < CHECK_TOLERANCE {
            eprintln!(
                "exp_throughput --check FAILED: fused is {:.2}x unfused (< {CHECK_TOLERANCE})",
                report.fused_vs_unfused
            );
            std::process::exit(1);
        }
        // Combining must never lose to uncombined, even with no
        // parallelism to hide the fold: at DoP 1 the partial maps still
        // shrink the shuffle roundtrip.
        let dop1 = combining.ratio_at(1).unwrap_or(combining.combined_vs_uncombined);
        if dop1 < CHECK_TOLERANCE {
            eprintln!(
                "exp_throughput --check FAILED: combining is {dop1:.2}x uncombined at DoP 1 \
                 (< {CHECK_TOLERANCE})"
            );
            std::process::exit(1);
        }
        // Batched dispatch must not lose to record-at-a-time even with
        // no parallelism: per-batch overhead amortizes, it never adds.
        if batches.batched_vs_record_at_dop1 < CHECK_TOLERANCE {
            eprintln!(
                "exp_throughput --check FAILED: default batch is \
                 {:.2}x record-at-a-time at DoP 1 (< {CHECK_TOLERANCE})",
                batches.batched_vs_record_at_dop1
            );
            std::process::exit(1);
        }
        eprintln!(
            "exp_throughput check ok: fused {:.2}x unfused, {:.2}x pre-fusion baseline; \
             combining {:.2}x uncombined at the acceptance DoP ({dop1:.2}x at DoP 1), \
             shuffle shrink {:.1}x; default batch {:.2}x record-at-a-time at DoP 1",
            report.fused_vs_unfused,
            report.fused_vs_baseline,
            combining.combined_vs_uncombined,
            combining.shuffle_reduction(),
            batches.batched_vs_record_at_dop1
        );
    }
}
