//! Regenerates the Fig-8 cost split (startup vs per-record operator cost)
//! from live profiler instrumentation, and exports the observability
//! artifacts of the run.
//!
//! Modes:
//! - default: decomposition table + observer summary + folded stacks;
//! - `--folded`: folded-stack (flamegraph) lines only — what the ci.sh
//!   smoke target parses;
//! - `--json`: the decomposition as a JSON array (machine-readable).
use websift_bench::experiments::profile_exps;
use websift_bench::report;
use websift_pipeline::ExperimentContext;

fn main() {
    let folded_only = std::env::args().any(|a| a == "--folded");
    // The smoke/CI path keeps the corpus tiny; the full run profiles the
    // standard benchmark context.
    let (ctx, docs) = if folded_only || std::env::args().any(|a| a == "--tiny") {
        (ExperimentContext::tiny(12), 6)
    } else {
        (ExperimentContext::standard(12), 40)
    };
    let run = profile_exps::cost_decomposition(&ctx, docs);

    if folded_only {
        print!("{}", run.folded);
        return;
    }
    if report::json_mode() {
        report::emit(&[run.result]);
        return;
    }
    println!("{}", run.result.render());
    println!("{}", run.summary);
    println!("### folded stacks (flamegraph format)\n\n```\n{}```", run.folded);
}
