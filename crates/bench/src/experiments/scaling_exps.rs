//! Performance and scalability experiments: Fig. 3 (tool runtimes vs input
//! length), Fig. 4 (scale-up), Fig. 5 (scale-out), and the §4.2 war story.

use crate::report::ExperimentResult;
use std::collections::HashMap;
use std::time::Instant;
use websift_corpus::{CorpusKind, Generator};
use websift_flow::cluster::{admit, ClusterSpec, SchedulingError};
use websift_flow::{
    ExecutionConfig, ExecutionError, Executor, FlowResilience, IeResources, LogicalPlan,
};
use websift_observe::Observer;
use websift_ner::crf::{CrfConfig, CrfTagger};
use websift_ner::EntityType;
use websift_pipeline::{documents_to_records, paper, ExperimentContext};
use websift_text::PosTagger;

/// Builds test sentences of roughly the requested character lengths from
/// relevant-web-like vocabulary.
fn sentences_of_lengths(lengths: &[usize]) -> Vec<(usize, String)> {
    let generator = Generator::new(CorpusKind::RelevantWeb, 333);
    // pull a long pool of sentence text to slice from
    let mut pool = String::new();
    for doc in generator.documents(30) {
        pool.push_str(&doc.body.replace('\n', " "));
        pool.push(' ');
        if pool.len() > 400_000 {
            break;
        }
    }
    lengths
        .iter()
        .map(|&len| {
            let mut end = len.min(pool.len());
            while !pool.is_char_boundary(end) {
                end -= 1;
            }
            (len, pool[..end].to_string())
        })
        .collect()
}

fn time_us(mut f: impl FnMut()) -> f64 {
    // warm up once, then time enough repetitions for ~10ms.
    f();
    // lint:allow(wall_clock): Fig-3 microbenchmarks time real tool invocations
    let start = Instant::now();
    let mut reps = 0u32;
    while start.elapsed().as_millis() < 10 || reps < 3 {
        f();
        reps += 1;
        if reps >= 200 {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

/// Fig. 3: runtime of POS tagging (a) and entity annotation (b) as a
/// function of input length — dictionary vs ML differing by orders of
/// magnitude, ML-with-context growing superlinearly.
pub fn fig3(ctx: &ExperimentContext) -> Vec<ExperimentResult> {
    let lengths = [64usize, 128, 256, 512, 1024, 2048, 4096];
    let samples = sentences_of_lengths(&lengths);
    let pos = PosTagger::pretrained();

    let mut fig3a = ExperimentResult::new(
        "Fig 3a",
        "POS tagging runtime vs sentence length",
        &["chars", "tokens", "us per call", "status"],
    );
    let capped = pos.clone().with_max_tokens(350);
    for (len, text) in &samples {
        let tokens = websift_text::tokenize::token_strings(text);
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        match capped.tag(&refs) {
            Ok(_) => {
                let us = time_us(|| {
                    let _ = capped.tag(&refs);
                });
                fig3a.row(&[len.to_string(), refs.len().to_string(), format!("{us:.1}"), "ok".into()]);
            }
            Err(e) => {
                fig3a.row(&[len.to_string(), refs.len().to_string(), "-".into(), format!("{e}")]);
            }
        }
    }
    fig3a.note("linear growth with a hard failure on very long sentences — the MedPost behaviour of Fig. 3a");

    // a context-featured CRF for the superlinear ML curve
    let heavy_crf = {
        let gen = Generator::with_lexicon(CorpusKind::Medline, 9, std::sync::Arc::new(ctx.lexicon.as_ref().clone()));
        let sentences = gen.labeled_sentences(80);
        let examples: Vec<_> = sentences
            .iter()
            .map(|ls| websift_flow::packages::resources::labeled_to_example(ls, EntityType::Gene))
            .collect();
        CrfTagger::train(
            EntityType::Gene,
            &examples,
            CrfConfig {
                dim: 1 << 15,
                epochs: 2,
                context_features: true,
                ..CrfConfig::default()
            },
        )
    };
    let dict = &ctx.resources.dict[&EntityType::Gene];
    let ml = &ctx.resources.crf[&EntityType::Gene];

    let mut fig3b = ExperimentResult::new(
        "Fig 3b",
        "Entity annotation runtime vs input length (us per call)",
        &["chars", "dictionary", "ML", "ML+context", "ML/dict ratio"],
    );
    for (len, text) in &samples {
        let dict_us = time_us(|| {
            let _ = dict.tag(text);
        });
        let ml_us = time_us(|| {
            let _ = ml.tag(text);
        });
        let heavy_us = time_us(|| {
            let _ = heavy_crf.tag(text);
        });
        fig3b.row(&[
            len.to_string(),
            format!("{dict_us:.1}"),
            format!("{ml_us:.1}"),
            format!("{heavy_us:.1}"),
            format!("{:.0}x", heavy_us / dict_us.max(0.01)),
        ]);
    }
    fig3b.note("paper: dictionary- and ML-based methods differ in runtime by up to three orders of magnitude; the context-featured CRF grows superlinearly (quadratic feature extraction)");
    vec![fig3a, fig3b]
}

/// The scale-out/scale-up entity flow: preprocessing + POS + the gene
/// dictionary and CRF taggers (one dictionary fits one 24 GB node; see
/// EXPERIMENTS.md for the interpretation).
fn scaling_entity_flow(resources: &IeResources) -> LogicalPlan {
    websift_pipeline::entity_flow_for(
        resources,
        EntityType::Gene,
        websift_pipeline::MethodSelection::Both,
    )
}

fn scaling_linguistic_flow() -> LogicalPlan {
    websift_pipeline::linguistic_flow("docs")
}

fn run_simulated(
    plan: &LogicalPlan,
    records: Vec<websift_flow::Record>,
    dop: usize,
    work_scale: f64,
) -> Result<f64, ExecutionError> {
    let config = ExecutionConfig {
        dop,
        cluster: ClusterSpec::paper_cluster(),
        admission: false,
        // annotations shipped to HDFS grow with the input; scale their
        // volume with the work so the network term is paper-sized too
        byte_scale: work_scale / 20.0,
        chunk_rounds: None,
        work_scale,
        analyze: true,
        ..ExecutionConfig::local(dop)
    };
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records);
    Executor::new(config)
        .run(plan, inputs)
        .map(|o| o.metrics.simulated_secs)
}

/// Work-scale factor: our ~1:10000 sample stands in for the paper's 20 GB.
const WORK_SCALE: f64 = 8_000.0;

/// Relevant-web generator with moderated document-length variance: the
/// scaling experiments measure engine behaviour, and the corpus's extreme
/// per-document variance would otherwise swamp the curves with sampling
/// noise (the paper's 20 GB sample is large enough to average it out).
fn scaling_generator(ctx: &ExperimentContext, seed: u64) -> Generator {
    let mut profile = websift_corpus::CorpusProfile::for_kind(CorpusKind::RelevantWeb);
    profile.doc_sentences_sigma = 0.35;
    Generator::with_lexicon(
        CorpusKind::RelevantWeb,
        seed,
        std::sync::Arc::new(ctx.lexicon.as_ref().clone()),
    )
    .with_profile(profile)
}

/// Fig. 4: scale-up — input size grows with the DoP; ideal is a flat line.
pub fn fig4(ctx: &ExperimentContext) -> ExperimentResult {
    let base_docs = 6usize;
    let entity_plan = scaling_entity_flow(&ctx.resources);
    let linguistic_plan = scaling_linguistic_flow();
    let generator = scaling_generator(ctx, 404);

    let mut result = ExperimentResult::new(
        "Fig 4",
        "Scale-up (DoP grows with input size); simulated seconds",
        &["DoP / input", "entity extraction", "linguistic analysis"],
    );
    for dop in [1usize, 2, 4, 8, 12, 16, 20, 24, 28] {
        let docs = generator.documents(base_docs * dop);
        let records = documents_to_records(&docs);
        let entity = run_simulated(&entity_plan, records.clone(), dop, WORK_SCALE).unwrap();
        let ling = run_simulated(&linguistic_plan, records, dop, WORK_SCALE).unwrap();
        result.row(&[
            format!("{dop}/{dop}"),
            format!("{entity:.0}"),
            format!("{ling:.0}"),
        ]);
    }
    result.note("paper: linguistic flow exhibits an almost ideal scale-up, entity flow scales sub-linearly for large DoPs/inputs");
    result
}

/// Fig. 5: scale-out — fixed input, DoP swept to 156; entity flow bounded
/// to 4..=28 (time / memory), linguistic flow unrestricted.
pub fn fig5(ctx: &ExperimentContext) -> ExperimentResult {
    let entity_plan = scaling_entity_flow(&ctx.resources);
    let linguistic_plan = scaling_linguistic_flow();
    let generator = scaling_generator(ctx, 505);
    let docs = generator.documents(96);
    let records = documents_to_records(&docs);
    let cluster = ClusterSpec::paper_cluster();

    // Infeasibility budget: the paper could not run the entity flow below
    // DoP 4 "due to the excessive runtimes of the ML-based taggers".
    let budget_secs = 12.0 * 3600.0;

    let mut result = ExperimentResult::new(
        "Fig 5",
        "Scale-out at fixed input; simulated seconds",
        &["DoP", "entity extraction", "linguistic analysis"],
    );
    let mut entity_at: HashMap<usize, f64> = HashMap::new();
    let mut ling_at: HashMap<usize, f64> = HashMap::new();
    for dop in [1usize, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156] {
        let entity_cell = match admit(&entity_plan, dop, &cluster) {
            Err(SchedulingError::InsufficientMemory { .. }) => "infeasible: memory".to_string(),
            Err(e) => format!("infeasible: {e}"),
            Ok(_) => {
                let secs =
                    run_simulated(&entity_plan, records.clone(), dop, WORK_SCALE).unwrap();
                if secs > budget_secs {
                    format!("infeasible: {:.0}h simulated", secs / 3600.0)
                } else {
                    entity_at.insert(dop, secs);
                    format!("{secs:.0}")
                }
            }
        };
        let ling_secs = run_simulated(&linguistic_plan, records.clone(), dop, WORK_SCALE).unwrap();
        ling_at.insert(dop, ling_secs);
        result.row(&[dop.to_string(), entity_cell, format!("{ling_secs:.0}")]);
    }

    // saturation summary
    if let (Some(&e4), Some(&e16)) = (entity_at.get(&4), entity_at.get(&16)) {
        result.note(format!(
            "entity flow decrease DoP 4 -> 16: {:.0}% (paper: {:.0}% until DoP {}; startup of the gene dictionary floors the curve)",
            (1.0 - e16 / e4) * 100.0,
            paper::ENTITY_TIME_DECREASE * 100.0,
            paper::ENTITY_SATURATION_DOP,
        ));
    }
    if let (Some(&l1), Some(&l12)) = (ling_at.get(&1), ling_at.get(&12)) {
        result.note(format!(
            "linguistic flow decrease DoP 1 -> 12: {:.0}% (paper: {:.0}% until DoP {})",
            (1.0 - l12 / l1) * 100.0,
            paper::LINGUISTIC_TIME_DECREASE * 100.0,
            paper::LINGUISTIC_SATURATION_DOP,
        ));
    }
    result
}

/// §4.2 "Processing the entire crawl — a war story": the three failures
/// and their mitigations, reproduced as typed errors.
pub fn warstory(ctx: &ExperimentContext) -> ExperimentResult {
    let cluster = ClusterSpec::paper_cluster();
    let mut result = ExperimentResult::new(
        "§4.2 war story",
        "Failures of the full flow and their mitigations",
        &["step", "outcome"],
    );

    // 1. full flow: library conflict (OpenNLP 1.4 vs 1.5). First the
    // static analyzer catches it pre-flight (no execution at all) ...
    let full = websift_pipeline::full_analysis_plan(&ctx.resources);
    let gb = full
        .operators()
        .map(|op| op.cost.memory_bytes)
        .sum::<u64>() as f64
        / (1u64 << 30) as f64;
    let preflight = websift_flow::analyze_plan(
        &full,
        &websift_flow::AnalyzeOptions::default().with_admission(cluster.clone(), 28),
    );
    for d in preflight.iter().filter(|d| d.severity == websift_analyze::Severity::Error) {
        result.row(&["full Fig-2 flow, static analyzer".into(), format!("PRE-FLIGHT {d}")]);
    }
    // ... then, with the analyzer bypassed (the paper's fly-blind path),
    // the simulated scheduler hits the same conflict at runtime.
    let blind = ExecutionConfig {
        dop: 28,
        cluster: cluster.clone(),
        admission: true,
        byte_scale: 1.0,
        chunk_rounds: None,
        work_scale: 1.0,
        analyze: false,
        ..ExecutionConfig::local(28)
    };
    match Executor::new(blind).run(&full, HashMap::new()) {
        Err(ExecutionError::Scheduling(e)) => result.row(&[
            "full Fig-2 flow, analyzer bypassed, DoP 28".into(),
            format!("RUNTIME REJECTED: {e}"),
        ]),
        other => result.row(&[
            "full Fig-2 flow, analyzer bypassed, DoP 28".into(),
            format!("unexpected: {other:?}"),
        ]),
    };
    match admit(&full, 28, &cluster) {
        Err(e) => result.row(&["full Fig-2 flow, DoP 28".into(), format!("REJECTED: {e}")]),
        Ok(_) => result.row(&["full Fig-2 flow, DoP 28".into(), "unexpectedly admitted".into()]),
    };
    result.row(&[
        "full-flow memory per worker".into(),
        format!("{gb:.1} GB (paper: ~{:.0} GB; nodes have 24 GB)", paper::FULL_FLOW_GB_PER_WORKER),
    ]);

    // 2. disease ML standalone (version-conflict mitigation)
    let disease = websift_pipeline::entity_flow_for(
        &ctx.resources,
        EntityType::Disease,
        websift_pipeline::MethodSelection::MlOnly,
    );
    result.row(&[
        "disease ML in its own flow".into(),
        match admit(&disease, 28, &cluster) {
            Ok(p) => format!("ADMITTED ({:.1} GB/worker)", p.memory_per_worker as f64 / (1u64 << 30) as f64),
            Err(e) => format!("rejected: {e}"),
        },
    ]);

    // 3. gene dictionary on the big-memory server
    let gene = websift_pipeline::entity_flow_for(
        &ctx.resources,
        EntityType::Gene,
        websift_pipeline::MethodSelection::DictionaryOnly,
    );
    result.row(&[
        "gene recognition on 1 TB server, 40 threads".into(),
        match admit(&gene, 40, &ClusterSpec::big_memory_node()) {
            Ok(_) => "ADMITTED".into(),
            Err(e) => format!("rejected: {e}"),
        },
    ]);

    // 4. network overload from annotation growth, then chunking
    let docs = Generator::with_lexicon(
        CorpusKind::RelevantWeb,
        66,
        std::sync::Arc::new(ctx.lexicon.as_ref().clone()),
    )
    .documents(40);
    let records = documents_to_records(&docs);
    let ling = scaling_linguistic_flow();
    // byte_scale calibrated so the sample's annotations represent ~1.6 TB
    let byte_scale = 1.6e12 / (records.iter().map(|r| r.approx_bytes()).sum::<u64>() as f64 * 3.0);
    let overloaded = ExecutionConfig {
        dop: 28,
        cluster: cluster.clone(),
        admission: false,
        byte_scale,
        chunk_rounds: None,
        work_scale: 1.0,
        analyze: true,
        ..ExecutionConfig::local(28)
    };
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records.clone());
    match Executor::new(overloaded).run(&ling, inputs) {
        Err(ExecutionError::NetworkOverload { intermediate_bytes, capacity_bytes }) => {
            result.row(&[
                "paper-scale intermediates over 1 Gb switch".into(),
                format!(
                    "NETWORK OVERLOAD: {:.2} TB in flight vs {:.0} GB tolerable (paper: {:.1} TB total intermediates)",
                    intermediate_bytes as f64 / 1e12,
                    capacity_bytes as f64 / 1e9,
                    paper::INTERMEDIATE_TOTAL_TB,
                ),
            ]);
        }
        other => {
            result.row(&[
                "paper-scale intermediates over 1 Gb switch".into(),
                format!("unexpected: {other:?}"),
            ]);
        }
    }
    let chunked = ExecutionConfig {
        dop: 28,
        cluster,
        admission: false,
        byte_scale,
        chunk_rounds: Some(32), // "chunks of 50 GB"
        work_scale: 1.0,
        analyze: true,
        ..ExecutionConfig::local(28)
    };
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records);
    result.row(&[
        "same, split into 50 GB chunks".into(),
        match Executor::new(chunked).run(&ling, inputs) {
            Ok(out) => format!("OK ({:.0} simulated s)", out.metrics.simulated_secs),
            Err(e) => format!("failed: {e}"),
        },
    ]);
    result.note("all three paper failures (memory admission, library conflict, network overload) and all three mitigations (flow splitting, big-memory node, data chunking) reproduce as typed outcomes");
    result.note("each failure is reported twice: PRE-FLIGHT rows come from the static analyzer (WS002/WS007) before any record moves — the paper paid cluster hours to learn the same — and RUNTIME REJECTED shows the identical verdict from the scheduler with the analyzer deliberately bypassed (ExecutionConfig.analyze = false)");
    result
}

/// §4.2: share of single-thread runtime per component (entity extraction
/// ~70 %, POS ~12 %). Runs observed: the wall-time share comes from the
/// per-op views (registry-derived), the simulated share from the
/// profiler's per-operator `work` scopes.
pub fn runtime_shares(ctx: &ExperimentContext) -> ExperimentResult {
    let docs = Generator::with_lexicon(
        CorpusKind::Medline,
        77,
        std::sync::Arc::new(ctx.lexicon.as_ref().clone()),
    )
    .documents(60);
    let records = documents_to_records(&docs);
    let plan = websift_pipeline::full_analysis_plan(&ctx.resources);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records);
    let obs = Observer::new();
    let out = Executor::new(ExecutionConfig::local(1))
        .run_observed(&plan, inputs, &FlowResilience::default(), &obs)
        .unwrap()
        .output
        .unwrap();

    let wall_total: f64 = out.metrics.per_op.iter().map(|m| m.wall_ms).sum();
    let wall_share = |pred: fn(&str) -> bool| -> f64 {
        out.metrics
            .per_op
            .iter()
            .filter(|m| pred(&m.name))
            .map(|m| m.wall_ms)
            .sum::<f64>()
            / wall_total
    };
    // startup-excluded per-record work off the logical clock
    let work: Vec<(String, f64)> = obs
        .profiler()
        .scopes()
        .into_iter()
        .filter(|s| {
            matches!(s.path.as_slice(),
                [a, b, c] if a == "flow" && b.starts_with("op:") && c == "work")
        })
        .map(|s| (s.path[1].clone(), s.self_secs))
        .collect();
    let sim_total: f64 = work.iter().map(|(_, s)| s).sum();
    let sim_share = |pred: fn(&str) -> bool| -> f64 {
        work.iter().filter(|(n, _)| pred(n)).map(|(_, s)| s).sum::<f64>() / sim_total
    };

    let mut result = ExperimentResult::new(
        "§4.2 shares",
        "Single-thread runtime share by component",
        &["component", "wall share", "simulated share", "paper share"],
    );
    for (component, pred) in [
        ("entity extraction", (|n: &str| n.contains("annotate_entities")) as fn(&str) -> bool),
        ("part-of-speech tagging", |n: &str| n.contains("annotate_pos")),
    ] {
        let paper_share = if component == "entity extraction" {
            paper::ENTITY_RUNTIME_SHARE
        } else {
            paper::POS_RUNTIME_SHARE
        };
        result.row(&[
            component.into(),
            format!("{:.0}%", wall_share(pred) * 100.0),
            format!("{:.0}%", sim_share(pred) * 100.0),
            format!("{:.0}%", paper_share * 100.0),
        ]);
    }
    result.note("our default CRF taggers run without sentence-context features (see Fig 3b's ML+context column for the heavy configuration), so the measured wall share is lower than the paper's 70%");
    result.note("the simulated share uses the profiler's startup-excluded work scopes, where the paper-scale CRF per-character cost dominates");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_samples_cover_lengths() {
        let samples = sentences_of_lengths(&[64, 512]);
        assert_eq!(samples.len(), 2);
        assert!(samples[1].1.len() >= 500);
    }
}
