//! Static-analysis experiments: the three §4.2 failure modes caught
//! pre-flight by [`websift_flow::analyze_plan`], without spending a
//! second of (simulated) cluster time — plus the fusion/combining
//! explain report, which predicts the executor's physical stage
//! decisions and cost envelopes statically and verifies the prediction
//! differentially against an actual run.
//!
//! Each row is one diagnostic (or one predicted stage); the output is
//! deterministic byte for byte, which `ci.sh` checks by running
//! `exp_analyze --json` twice and comparing, and by the
//! `exp_analyze --quick --check` smoke that re-renders the explain
//! artifact in-process and fails on any drift.

use std::collections::HashMap;

use crate::report::{self, ExperimentResult};
use websift_analyze::Diagnostic;
use websift_flow::packages::{base, dc, ie};
use websift_flow::{
    analyze_plan, analyze_script, explain_plan, field_flow, plan_stages, AnalyzeOptions,
    ClusterSpec, CostModel, ExecutionConfig, Executor, LogicalPlan, NodeOp, Operator,
    OperatorRegistry, Package, Record,
};

/// §4.2 failure 1 as a Meteor script: negation spans requested before
/// sentence spans exist.
const USE_BEFORE_DEF: &str = "\
$pages = read 'crawl';
$neg = apply ie.annotate_negation $pages;
$sents = apply ie.annotate_sentences $neg;
write $neg 'negation';
write $sents 'sentences';";

fn ie_registry() -> OperatorRegistry {
    let mut reg = OperatorRegistry::new();
    reg.register("ie.annotate_sentences", ie::annotate_sentences);
    reg.register("ie.annotate_negation", ie::annotate_negation);
    reg
}

/// §4.2 failure 2: OpenNLP 1.5 annotator + 1.4 ML entity tagger in one
/// flow (the class-loader war story).
fn version_conflict_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let sents = plan.add(src, ie::annotate_sentences()).expect("static plan");
    let disease = plan
        .add(
            sents,
            Operator::map("ie.annotate_entities_ml[disease]", Package::Ie, |r| r)
                .with_reads(&["text", "sentences"])
                .with_writes(&["entities"])
                .with_library("opennlp", 14),
        )
        .expect("static plan");
    plan.sink(disease, "entities").expect("static plan");
    plan
}

/// §4.2 failure 3: 60 GB of model state per worker against 24 GB nodes.
fn over_memory_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let mut prev = src;
    for (i, gb) in [20u64, 20, 20].iter().enumerate() {
        prev = plan
            .add(
                prev,
                Operator::map(&format!("ie.fat_model_{i}"), Package::Ie, |r| r)
                    .with_reads(&["text"])
                    .with_writes(&[&format!("fat{i}")])
                    .with_cost(CostModel {
                        memory_bytes: gb << 30,
                        ..CostModel::default()
                    }),
            )
            .expect("static plan");
    }
    plan.sink(prev, "out").expect("static plan");
    plan
}

fn push_rows(result: &mut ExperimentResult, plan: &str, diags: &[Diagnostic]) {
    for d in diags {
        let location = match (d.line, d.node) {
            (Some(line), _) => format!("line {line}"),
            (None, Some(node)) => format!("node {node}"),
            (None, None) => "-".to_string(),
        };
        result.row(&[
            plan.to_string(),
            d.code.clone(),
            d.severity.to_string(),
            location,
            d.message.clone(),
        ]);
    }
}

/// Runs the analyzer over the three known-bad plans and tabulates every
/// diagnostic.
pub fn known_bad() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "Static analysis",
        "§4.2 failure modes caught pre-flight",
        &["plan", "code", "severity", "location", "message"],
    );

    let admitted = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);

    let script_diags = analyze_script(USE_BEFORE_DEF, &ie_registry(), &AnalyzeOptions::default())
        .expect("known-bad script still parses");
    push_rows(&mut result, "use-before-def script", &script_diags);
    push_rows(
        &mut result,
        "version-conflict flow",
        &analyze_plan(&version_conflict_plan(), &admitted),
    );
    push_rows(
        &mut result,
        "over-memory flow",
        &analyze_plan(&over_memory_plan(), &admitted),
    );

    result.note(
        "every diagnostic above is produced from operator annotations alone — \
         no records were processed; the paper hit all three at runtime on the cluster",
    );
    result.note(
        "the same verdicts gate execution: Executor::run rejects plans with \
         error-severity diagnostics unless `ExecutionConfig.analyze` is off",
    );
    result
}

/// The representative extraction flow for the explain report: cleaning,
/// sentence and negation annotation, then a combinable per-corpus count
/// — a fused pipeline ending in a combined reduce.
fn extraction_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let clean = plan.add(src, dc::normalize_whitespace()).expect("static plan");
    let sents = plan.add(clean, ie::annotate_sentences()).expect("static plan");
    let neg = plan.add(sents, ie::annotate_negation()).expect("static plan");
    let count = plan.add(neg, base::count_by("corpus")).expect("static plan");
    plan.sink(count, "corpus_counts").expect("static plan");
    plan
}

/// Options used for every explain rendering, so the bench table, the
/// JSON artifact, and the `--check` smoke all agree.
fn explain_opts() -> AnalyzeOptions {
    AnalyzeOptions::default().with_source_estimate(10_000, 2_048)
}

/// The raw explain report for the representative flow — the
/// byte-deterministic artifact `--check` renders twice and diffs.
pub fn explain_json() -> String {
    explain_plan(&extraction_plan(), &explain_opts(), true, true)
}

/// Differential smoke: the statically predicted stage decisions must be
/// the decisions the executor actually makes for the same plan.
pub fn explain_matches_execution() -> bool {
    let plan = extraction_plan();
    let predicted = plan_stages(&plan, true, true);
    let records: Vec<Record> = (0..16)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set("corpus", if i % 2 == 0 { "web" } else { "pubmed" });
            r.set("text", format!("Document {i}. It has two sentences."));
            r
        })
        .collect();
    let inputs = HashMap::from([("crawl".to_string(), records)]);
    Executor::new(ExecutionConfig::local(4))
        .run(&plan, inputs)
        .map(|out| out.stages == predicted)
        .unwrap_or(false)
}

/// One row per predicted stage of `plan`.
fn stage_rows(result: &mut ExperimentResult, plan_name: &str, plan: &LogicalPlan) {
    let flow = field_flow(plan, &explain_opts());
    for (i, stage) in plan_stages(plan, true, true).iter().enumerate() {
        let members: Vec<usize> = (stage.first..stage.first + stage.len).collect();
        let mut ops = Vec::new();
        let mut memory = 0u64;
        for &id in &members {
            if let NodeOp::Op(op) = &plan.nodes()[id].op {
                ops.push(op.name.clone());
                memory += op.cost.memory_bytes;
            }
        }
        let kind = if stage.combined_reduce {
            "fused+combining"
        } else if stage.len > 1 {
            "fused"
        } else {
            "single"
        };
        let out = flow.after(members[members.len() - 1]).envelope.records;
        result.row(&[
            plan_name.to_string(),
            i.to_string(),
            ops.join(" + "),
            kind.to_string(),
            format!("{:.0}..{:.0}", out.lo, out.hi),
            format!("{:.1} GB", memory as f64 / (1u64 << 30) as f64),
        ]);
    }
}

/// Static fusion/combining explain: one row per predicted pipeline
/// stage, with the differential verdict against the executor as a note.
pub fn explain() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "Fusion explain",
        "statically predicted fusion chains, combining decisions, and cost envelopes",
        &["plan", "stage", "operators", "kind", "records out", "stage memory"],
    );
    stage_rows(&mut result, "extraction flow", &extraction_plan());
    stage_rows(&mut result, "over-memory flow", &over_memory_plan());
    result.note(if explain_matches_execution() {
        "differential check: predicted stage boundaries and combining decisions equal \
         the executor's actual decisions for the extraction flow at DoP 4"
    } else {
        "DIFFERENTIAL MISMATCH: the static prediction disagrees with the executor \
         (run `exp_analyze --quick --check` for a failing exit code)"
    });
    result.note(
        "record envelopes are absolute (seeded with 10000 source records of 2048 bytes); \
         the explain JSON artifact is byte-deterministic and diffed by ci.sh",
    );
    // The one number that is *meant* to be wall time: what the analysis
    // itself costs. Non-JSON mode only, so `--json` stays byte-stable.
    if !report::json_mode() {
        let plan = extraction_plan();
        // lint:allow(wall_clock): reports the real wall cost of the static analysis itself; non-JSON mode only, never reaches --json bytes or digests
        let t0 = std::time::Instant::now();
        const REPS: u32 = 100;
        for _ in 0..REPS {
            let _ = analyze_plan(&plan, &explain_opts());
            let _ = explain_plan(&plan, &explain_opts(), true, true);
        }
        let per_pass = t0.elapsed().as_secs_f64() * 1e6 / f64::from(REPS);
        result.note(format!(
            "analysis wall cost: {per_pass:.0} us per analyze+explain pass \
             (mean of {REPS}; the paper's failures each burned cluster-hours)"
        ));
    }
    result
}
