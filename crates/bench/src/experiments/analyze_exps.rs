//! Static-analysis experiments: the three §4.2 failure modes caught
//! pre-flight by [`websift_flow::analyze_plan`], without spending a
//! second of (simulated) cluster time.
//!
//! Each row is one diagnostic; the output is deterministic byte for byte,
//! which `ci.sh` checks by running `exp_analyze --json` twice and
//! comparing.

use crate::report::ExperimentResult;
use websift_analyze::Diagnostic;
use websift_flow::packages::ie;
use websift_flow::{
    analyze_plan, analyze_script, AnalyzeOptions, ClusterSpec, CostModel, LogicalPlan, Operator,
    OperatorRegistry, Package,
};

/// §4.2 failure 1 as a Meteor script: negation spans requested before
/// sentence spans exist.
const USE_BEFORE_DEF: &str = "\
$pages = read 'crawl';
$neg = apply ie.annotate_negation $pages;
$sents = apply ie.annotate_sentences $neg;
write $neg 'negation';
write $sents 'sentences';";

fn ie_registry() -> OperatorRegistry {
    let mut reg = OperatorRegistry::new();
    reg.register("ie.annotate_sentences", ie::annotate_sentences);
    reg.register("ie.annotate_negation", ie::annotate_negation);
    reg
}

/// §4.2 failure 2: OpenNLP 1.5 annotator + 1.4 ML entity tagger in one
/// flow (the class-loader war story).
fn version_conflict_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let sents = plan.add(src, ie::annotate_sentences()).expect("static plan");
    let disease = plan
        .add(
            sents,
            Operator::map("ie.annotate_entities_ml[disease]", Package::Ie, |r| r)
                .with_reads(&["text", "sentences"])
                .with_writes(&["entities"])
                .with_library("opennlp", 14),
        )
        .expect("static plan");
    plan.sink(disease, "entities").expect("static plan");
    plan
}

/// §4.2 failure 3: 60 GB of model state per worker against 24 GB nodes.
fn over_memory_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let mut prev = src;
    for (i, gb) in [20u64, 20, 20].iter().enumerate() {
        prev = plan
            .add(
                prev,
                Operator::map(&format!("ie.fat_model_{i}"), Package::Ie, |r| r)
                    .with_reads(&["text"])
                    .with_writes(&[&format!("fat{i}")])
                    .with_cost(CostModel {
                        memory_bytes: gb << 30,
                        ..CostModel::default()
                    }),
            )
            .expect("static plan");
    }
    plan.sink(prev, "out").expect("static plan");
    plan
}

fn push_rows(result: &mut ExperimentResult, plan: &str, diags: &[Diagnostic]) {
    for d in diags {
        let location = match (d.line, d.node) {
            (Some(line), _) => format!("line {line}"),
            (None, Some(node)) => format!("node {node}"),
            (None, None) => "-".to_string(),
        };
        result.row(&[
            plan.to_string(),
            d.code.clone(),
            d.severity.to_string(),
            location,
            d.message.clone(),
        ]);
    }
}

/// Runs the analyzer over the three known-bad plans and tabulates every
/// diagnostic.
pub fn known_bad() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "Static analysis",
        "§4.2 failure modes caught pre-flight",
        &["plan", "code", "severity", "location", "message"],
    );

    let admitted = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);

    let script_diags = analyze_script(USE_BEFORE_DEF, &ie_registry(), &AnalyzeOptions::default())
        .expect("known-bad script still parses");
    push_rows(&mut result, "use-before-def script", &script_diags);
    push_rows(
        &mut result,
        "version-conflict flow",
        &analyze_plan(&version_conflict_plan(), &admitted),
    );
    push_rows(
        &mut result,
        "over-memory flow",
        &analyze_plan(&over_memory_plan(), &admitted),
    );

    result.note(
        "every diagnostic above is produced from operator annotations alone — \
         no records were processed; the paper hit all three at runtime on the cluster",
    );
    result.note(
        "the same verdicts gate execution: Executor::run rejects plans with \
         error-severity diagnostics unless `ExecutionConfig.analyze` is off",
    );
    result
}
