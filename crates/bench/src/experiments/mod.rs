//! The experiment suite: one function per paper table/figure, each
//! returning [`ExperimentResult`]s for paper-vs-measured reporting.
//!
//! | function | reproduces |
//! |---|---|
//! | [`crawl_exps::table1`] | Table 1 (seed keyword categories) |
//! | [`crawl_exps::crawl`] | §4.1 crawl statistics (harvest rate, filters, throughput, seeds) |
//! | [`crawl_exps::classifier`] | §4.1 classifier quality (10-fold CV + crawl sample) |
//! | [`crawl_exps::boilerplate`] | §4.1 boilerplate detection quality |
//! | [`crawl_exps::table2`] | Table 2 (top domains by PageRank) |
//! | [`crawl_exps::tradeoff`] | §5 precision-vs-yield classifier trade-off |
//! | [`scaling_exps::fig3`] | Fig. 3 (tool runtime vs input length) |
//! | [`scaling_exps::fig4`] | Fig. 4 (scale-up) |
//! | [`scaling_exps::fig5`] | Fig. 5 (scale-out) |
//! | [`scaling_exps::warstory`] | §4.2 "war story" failures and mitigations |
//! | [`content_exps::table3`] | Table 3 (corpus summary) |
//! | [`content_exps::fig6`] | Fig. 6 + §4.3.1 (linguistic distributions, MWW tests) |
//! | [`content_exps::fig7`] | Fig. 7 (entity incidence per corpus) |
//! | [`content_exps::table4`] | Table 4 (+ TLA filtering) |
//! | [`content_exps::fig8`] | Fig. 8 (annotation overlap, JSD) |
//! | [`profile_exps::cost_decomposition`] | Fig. 8 cost split (startup vs per-record, live from the profiler) |
//! | [`throughput_exps::throughput`] | wall-clock records/sec of the fused vs unfused vs pre-fusion executor |
//! | [`shuffle_exps::shuffle_at`] | scale-out records/sec across worker-shard counts (threads and real processes), digest-gated |
//! | [`serve_exps::serve`] | serving-layer QPS + latency under admission-controlled concurrent clients |
//! | [`live_exps::live`] | incremental delta pass vs batch full recompute, per crawl round and DoP |
//! | [`recovery_exps::crawl_recovery`] | crawl goodput + checkpoint overhead under injected faults |
//! | [`recovery_exps::flow_recovery`] | flow partition/node-loss recovery + kill-and-resume check |
//! | [`analyze_exps::known_bad`] | §4.2 failure modes caught pre-flight by the static analyzer |

pub mod analyze_exps;
pub mod content_exps;
pub mod crawl_exps;
pub mod live_exps;
pub mod profile_exps;
pub mod recovery_exps;
pub mod scaling_exps;
pub mod serve_exps;
pub mod shuffle_exps;
pub mod throughput_exps;
